//! Per-connection session state: the active transaction, session-local
//! knob settings, and named prepared statements.
//!
//! The dispatcher classifies statements on their *normalized* shape
//! (reusing [`aimdb_engine::normalize`], the same normalizer that feeds
//! the fingerprint store), so `BEGIN`, ` begin ;` and `Begin` all hit the
//! transaction path. Everything else goes to the engine — inside the
//! session's MVCC transaction when one is open, autocommit otherwise.
//!
//! `SET knob = v` is session-scoped: the value is validated and clamped
//! against the global [`Knobs`](aimdb_engine::Knobs) spec but stored in a
//! per-session overlay, so one connection's experiment never leaks into
//! another's `SHOW` (or into the tuner's actuation path, which writes
//! the global knobs).
//!
//! Prepared statements reuse the fingerprint machinery: `Parse` stores
//! the template and its fingerprint; `Execute` substitutes parameters
//! *as SQL literals* into the `?` holes, which the normalizer folds
//! right back to `?` — so a bound statement fingerprints identically to
//! its template and the statement store aggregates them as one shape.
//! (NULL and booleans bind as keywords, not literals, so those
//! parameters change the shape; integer, float, and text parameters —
//! the hot path — are shape-preserving.)

use std::collections::{BTreeMap, HashMap};

use aimdb_common::{AimError, Result, Value};
use aimdb_engine::{fingerprint, normalize, Database, Knobs, QueryResult, TxnHandle};

use crate::protocol::value_to_sql_literal;

/// A parsed prepared statement.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The SQL template, possibly holding `?` parameter holes.
    pub sql: String,
    /// Fingerprint of the normalized template.
    pub fingerprint: u64,
}

/// One client connection's server-side state.
pub struct Session {
    id: u64,
    txn: Option<TxnHandle>,
    knob_overlay: BTreeMap<&'static str, i64>,
    prepared: HashMap<String, Prepared>,
    /// Statements dispatched through this session.
    pub statements: u64,
}

impl Session {
    pub fn new(id: u64) -> Session {
        Session {
            id,
            txn: None,
            knob_overlay: BTreeMap::new(),
            prepared: HashMap::new(),
            statements: 0,
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Execute one statement in this session's context.
    pub fn dispatch(&mut self, db: &Database, sql: &str) -> Result<QueryResult> {
        self.statements += 1;
        let shape = normalize(sql);
        if shape == "begin" || shape.starts_with("begin ") || shape.starts_with("begin;") {
            if self.txn.is_some() {
                return Err(AimError::NestedTxn(format!(
                    "session {} already has an open transaction",
                    self.id
                )));
            }
            let h = db.begin_txn()?;
            self.txn = Some(h);
            return Ok(QueryResult::Text("BEGIN".into()));
        }
        if shape == "commit" || shape.starts_with("commit;") {
            let h = self.txn.take().ok_or_else(|| {
                AimError::Execution(format!(
                    "session {}: COMMIT with no open transaction",
                    self.id
                ))
            })?;
            db.commit_txn(&h)?;
            return Ok(QueryResult::Text("COMMIT".into()));
        }
        if shape == "rollback" || shape.starts_with("rollback;") {
            let h = self.txn.take().ok_or_else(|| {
                AimError::Execution(format!(
                    "session {}: ROLLBACK with no open transaction",
                    self.id
                ))
            })?;
            db.rollback_txn(&h)?;
            return Ok(QueryResult::Text("ROLLBACK".into()));
        }
        if shape.starts_with("set ") {
            return self.set_knob(sql);
        }
        if shape.starts_with("show ") {
            return self.show_knob(db, sql);
        }
        match &self.txn {
            Some(h) => db.execute_in(h, sql),
            None => db.execute(sql),
        }
    }

    /// `SET <knob> = <int>` — session-local overlay, global knobs untouched.
    fn set_knob(&mut self, sql: &str) -> Result<QueryResult> {
        let (name, value) = parse_set(sql)?;
        let spec = Knobs::spec(&name).ok_or_else(|| AimError::NotFound(format!("knob {name}")))?;
        let v = value.clamp(spec.min, spec.max);
        self.knob_overlay.insert(spec.name, v);
        Ok(QueryResult::Text(format!("SET {} = {v}", spec.name)))
    }

    /// `SHOW <knob>` — session overlay wins over the global value.
    fn show_knob(&self, db: &Database, sql: &str) -> Result<QueryResult> {
        let name = sql
            .trim()
            .trim_end_matches(';')
            .split_whitespace()
            .nth(1)
            .ok_or_else(|| AimError::Parse("SHOW requires a knob name".into()))?
            .to_string();
        let spec = Knobs::spec(&name).ok_or_else(|| AimError::NotFound(format!("knob {name}")))?;
        let v = match self.knob_overlay.get(spec.name) {
            Some(v) => *v,
            None => db.knobs.get(spec.name)?,
        };
        Ok(QueryResult::Text(format!("{} = {v}", spec.name)))
    }

    /// Session-effective value of a knob, for tests and introspection.
    pub fn effective_knob(&self, db: &Database, name: &str) -> Result<i64> {
        let spec = Knobs::spec(name).ok_or_else(|| AimError::NotFound(format!("knob {name}")))?;
        match self.knob_overlay.get(spec.name) {
            Some(v) => Ok(*v),
            None => db.knobs.get(spec.name),
        }
    }

    /// Store a named prepared statement (Parse). Re-preparing a name
    /// replaces the previous template.
    pub fn prepare(&mut self, name: &str, sql: &str) -> Result<&Prepared> {
        if sql.trim().is_empty() {
            return Err(AimError::Parse("prepare: empty statement".into()));
        }
        let fp = fingerprint(sql);
        self.prepared.insert(
            name.to_string(),
            Prepared {
                sql: sql.to_string(),
                fingerprint: fp,
            },
        );
        Ok(&self.prepared[name])
    }

    /// Bind parameters into a prepared template and execute it (Execute).
    pub fn execute_prepared(
        &mut self,
        db: &Database,
        name: &str,
        params: &[Value],
    ) -> Result<QueryResult> {
        let template = self
            .prepared
            .get(name)
            .ok_or_else(|| AimError::NotFound(format!("prepared statement {name}")))?
            .sql
            .clone();
        let bound = bind_params(&template, params)?;
        self.dispatch(db, &bound)
    }

    /// The prepared statement registered under `name`, if any.
    pub fn prepared(&self, name: &str) -> Option<&Prepared> {
        self.prepared.get(name)
    }

    /// Roll back any open transaction — called when the connection drops,
    /// so an abandoned `BEGIN` can never pin the vacuum horizon.
    pub fn close(&mut self, db: &Database) -> Result<()> {
        if let Some(h) = self.txn.take() {
            db.rollback_txn(&h)?;
        }
        Ok(())
    }
}

/// Parse `SET <name> = <int>` (case-insensitive, optional `;`).
fn parse_set(sql: &str) -> Result<(String, i64)> {
    let body = sql.trim().trim_end_matches(';');
    let rest = body
        .get(3..)
        .ok_or_else(|| AimError::Parse("SET requires a knob and value".into()))?;
    let mut parts = rest.splitn(2, '=');
    let name = parts
        .next()
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .ok_or_else(|| AimError::Parse("SET requires a knob name".into()))?;
    let value = parts
        .next()
        .map(str::trim)
        .ok_or_else(|| AimError::Parse("SET requires '= <value>'".into()))?;
    let v: i64 = value
        .parse()
        .map_err(|_| AimError::Parse(format!("SET {name}: '{value}' is not an integer")))?;
    Ok((name.to_string(), v))
}

/// Substitute `?` holes (outside string literals) with SQL-rendered
/// parameter values, left to right. Errors on arity mismatch.
pub fn bind_params(template: &str, params: &[Value]) -> Result<String> {
    let mut out = String::with_capacity(template.len() + params.len() * 8);
    let mut next = 0;
    let mut in_string = false;
    let mut chars = template.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if c == '\'' {
                // '' is an escaped quote, stay inside the literal
                if chars.peek() == Some(&'\'') {
                    if let Some(q) = chars.next() {
                        out.push(q);
                    }
                } else {
                    in_string = false;
                }
            }
            continue;
        }
        match c {
            '\'' => {
                in_string = true;
                out.push(c);
            }
            '?' => {
                let v = params.get(next).ok_or_else(|| {
                    AimError::InvalidInput(format!(
                        "bind: template has more than {} parameter holes",
                        params.len()
                    ))
                })?;
                out.push_str(&value_to_sql_literal(v));
                next += 1;
            }
            _ => out.push(c),
        }
    }
    if next != params.len() {
        return Err(AimError::InvalidInput(format!(
            "bind: {} parameters for {next} holes",
            params.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_kv() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE kv (k INT, v TEXT)")
            .expect("create");
        db.execute("INSERT INTO kv VALUES (1, 'one'), (2, 'two')")
            .expect("seed");
        db
    }

    #[test]
    fn begin_commit_roundtrip_and_nested_begin_rejected() {
        let db = db_with_kv();
        let mut s = Session::new(1);
        s.dispatch(&db, "BEGIN").expect("begin");
        assert!(s.in_txn());
        let e = s.dispatch(&db, "begin;").expect_err("nested");
        assert_eq!(e.category(), "nested_txn");
        s.dispatch(&db, "INSERT INTO kv VALUES (3, 'three')")
            .expect("insert");
        s.dispatch(&db, "COMMIT").expect("commit");
        assert!(!s.in_txn());
        let r = db.execute("SELECT k FROM kv WHERE k = 3").expect("select");
        assert_eq!(r.rows().len(), 1);
    }

    #[test]
    fn rollback_discards_and_close_rolls_back() {
        let db = db_with_kv();
        let mut s = Session::new(1);
        s.dispatch(&db, "BEGIN").expect("begin");
        s.dispatch(&db, "DELETE FROM kv WHERE k = 1")
            .expect("delete");
        s.dispatch(&db, "ROLLBACK").expect("rollback");
        assert_eq!(db.execute("SELECT k FROM kv").expect("q").rows().len(), 2);

        let mut s2 = Session::new(2);
        s2.dispatch(&db, "BEGIN").expect("begin");
        s2.dispatch(&db, "DELETE FROM kv").expect("delete");
        assert_eq!(db.active_txn_count(), 1);
        s2.close(&db).expect("close");
        assert_eq!(db.active_txn_count(), 0, "close released the snapshot");
        assert_eq!(db.execute("SELECT k FROM kv").expect("q").rows().len(), 2);
    }

    #[test]
    fn commit_without_txn_is_a_structured_error() {
        let db = db_with_kv();
        let mut s = Session::new(1);
        assert_eq!(
            s.dispatch(&db, "COMMIT").expect_err("commit").category(),
            "execution"
        );
        assert_eq!(
            s.dispatch(&db, "ROLLBACK")
                .expect_err("rollback")
                .category(),
            "execution"
        );
    }

    #[test]
    fn set_is_session_scoped_and_clamped() {
        let db = db_with_kv();
        let mut a = Session::new(1);
        let b = Session::new(2);
        a.dispatch(&db, "SET work_mem_kb = 128").expect("set");
        assert_eq!(a.effective_knob(&db, "work_mem_kb").expect("a"), 128);
        // the global knob and other sessions are untouched
        assert_eq!(db.knobs.get("work_mem_kb").expect("global"), 4096);
        assert_eq!(b.effective_knob(&db, "work_mem_kb").expect("b"), 4096);
        // clamped into the legal range
        a.dispatch(&db, "SET work_mem_kb = 999999999").expect("set");
        assert_eq!(a.effective_knob(&db, "work_mem_kb").expect("a"), 65536);
        // unknown knobs are not_found
        assert_eq!(
            a.dispatch(&db, "SET no_such_knob = 1")
                .expect_err("unknown")
                .category(),
            "not_found"
        );
        let _ = b;
    }

    #[test]
    fn show_prefers_the_overlay() {
        let db = db_with_kv();
        let mut s = Session::new(1);
        let r = s.dispatch(&db, "SHOW work_mem_kb").expect("show");
        assert_eq!(r, QueryResult::Text("work_mem_kb = 4096".into()));
        s.dispatch(&db, "SET work_mem_kb = 256").expect("set");
        let r = s.dispatch(&db, "SHOW work_mem_kb;").expect("show");
        assert_eq!(r, QueryResult::Text("work_mem_kb = 256".into()));
    }

    #[test]
    fn prepared_binding_preserves_the_fingerprint() {
        let db = db_with_kv();
        let mut s = Session::new(1);
        let template = "SELECT v FROM kv WHERE k = ?";
        let fp = s.prepare("get", template).expect("prepare").fingerprint;
        assert_eq!(fp, fingerprint("SELECT v FROM kv WHERE k = 42"));
        let bound = bind_params(template, &[Value::Int(2)]).expect("bind");
        assert_eq!(
            fingerprint(&bound),
            fp,
            "bound statement shares the template shape"
        );
        let r = s
            .execute_prepared(&db, "get", &[Value::Int(2)])
            .expect("execute");
        assert_eq!(r.rows().len(), 1);
        assert_eq!(r.rows()[0].values()[0], Value::Text("two".into()));
    }

    #[test]
    fn bind_respects_strings_and_arity() {
        let b = bind_params(
            "INSERT INTO kv VALUES (?, 'lit?eral'), (?, ?)",
            &[Value::Int(1), Value::Int(2), Value::Text("o'brien".into())],
        )
        .expect("bind");
        assert_eq!(b, "INSERT INTO kv VALUES (1, 'lit?eral'), (2, 'o''brien')");
        assert!(bind_params("SELECT ?", &[]).is_err(), "missing param");
        assert!(
            bind_params("SELECT 1", &[Value::Int(1)]).is_err(),
            "extra param"
        );
    }

    #[test]
    fn execute_unknown_prepared_is_not_found() {
        let db = db_with_kv();
        let mut s = Session::new(1);
        let e = s.execute_prepared(&db, "nope", &[]).expect_err("unknown");
        assert_eq!(e.category(), "not_found");
    }
}
