//! The admission gate: bounded sessions and a bounded statement slot
//! pool with queue-then-shed semantics.
//!
//! Split in two layers so policy is testable without threads:
//!
//! - [`AdmissionCore`] is a pure state machine. Time comes in as
//!   `now_secs` arguments, so a [`ManualClock`](aimdb_common::ManualClock)
//!   unit suite can pin admit/queue/reject transitions at exact
//!   thresholds.
//! - [`AdmissionGate`] wraps the core in a rank-0 mutex
//!   ([`LockRank::ServerAdmission`] — never held across an engine call)
//!   plus a condvar, and turns `Queued` into a real blocking wait.
//!
//! Limits live in the engine's knob system (`max_connections`,
//! `admission_max_statements`, `admission_queue_timeout_ms`), so both a
//! DBA's `SET` and the ai4db [`AdmissionTuner`](aimdb_ai4db::admission)
//! actuate the gate through the same audited path. The server refreshes
//! the gate from the knobs on every control tick.

use std::sync::Arc;

use aimdb_common::{Clock, LockRank};
use parking_lot::{Condvar, Mutex};

/// Snapshot of the gate's knob-derived limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Concurrent sessions allowed (`max_connections`).
    pub max_sessions: usize,
    /// Statements inside the engine at once (`admission_max_statements`).
    pub max_statements: usize,
    /// How long a statement may queue before shedding
    /// (`admission_queue_timeout_ms`).
    pub queue_timeout_ms: u64,
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        AdmissionLimits {
            max_sessions: 100,
            max_statements: 64,
            queue_timeout_ms: 100,
        }
    }
}

/// Outcome of offering a statement to the core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StatementGate {
    /// A slot was free; the statement holds it until `finish_statement`.
    Admitted,
    /// All slots busy: the caller may wait until `deadline_secs`.
    Queued { deadline_secs: f64 },
    /// The queue timeout is zero: shed immediately.
    Rejected,
}

/// Outcome of re-offering a queued statement after a wakeup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retry {
    Admitted,
    /// Still full, deadline not reached: keep waiting.
    Wait,
    /// Deadline passed while slots stayed full: shed.
    TimedOut,
}

/// Monotonic counters the bench report and control loop read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Statements that got a slot (immediately or after queuing).
    pub admitted: u64,
    /// Statements shed at the gate (timeout or zero-timeout reject).
    pub rejected: u64,
    /// Statements that had to queue before their outcome.
    pub queued: u64,
    /// Sessions refused because `max_connections` was reached.
    pub sessions_rejected: u64,
    /// Sessions currently open.
    pub sessions_open: usize,
    /// Statement slots currently held.
    pub statements_inflight: usize,
}

/// Pure admission state machine; the caller supplies time.
#[derive(Debug)]
pub struct AdmissionCore {
    limits: AdmissionLimits,
    sessions: usize,
    inflight: usize,
    stats: AdmissionStats,
}

impl AdmissionCore {
    pub fn new(limits: AdmissionLimits) -> AdmissionCore {
        AdmissionCore {
            limits,
            sessions: 0,
            inflight: 0,
            stats: AdmissionStats::default(),
        }
    }

    pub fn limits(&self) -> AdmissionLimits {
        self.limits
    }

    /// Replace the limits. Already-admitted work is never revoked; a
    /// lowered statement limit takes effect as slots drain.
    pub fn set_limits(&mut self, limits: AdmissionLimits) {
        self.limits = limits;
    }

    /// Offer a new session. `true` admits (caller must later call
    /// [`AdmissionCore::release_session`]).
    pub fn try_session(&mut self) -> bool {
        if self.sessions < self.limits.max_sessions {
            self.sessions += 1;
            true
        } else {
            self.stats.sessions_rejected += 1;
            false
        }
    }

    pub fn release_session(&mut self) {
        self.sessions = self.sessions.saturating_sub(1);
    }

    /// Offer a statement at time `now_secs`.
    pub fn try_statement(&mut self, now_secs: f64) -> StatementGate {
        if self.inflight < self.limits.max_statements {
            self.inflight += 1;
            self.stats.admitted += 1;
            return StatementGate::Admitted;
        }
        if self.limits.queue_timeout_ms == 0 {
            self.stats.rejected += 1;
            return StatementGate::Rejected;
        }
        self.stats.queued += 1;
        StatementGate::Queued {
            deadline_secs: now_secs + self.limits.queue_timeout_ms as f64 / 1000.0,
        }
    }

    /// Re-offer a queued statement after a wakeup (or timeout poll).
    pub fn retry_statement(&mut self, now_secs: f64, deadline_secs: f64) -> Retry {
        if self.inflight < self.limits.max_statements {
            self.inflight += 1;
            self.stats.admitted += 1;
            return Retry::Admitted;
        }
        if now_secs >= deadline_secs {
            self.stats.rejected += 1;
            return Retry::TimedOut;
        }
        Retry::Wait
    }

    /// Return a statement slot.
    pub fn finish_statement(&mut self) {
        self.inflight = self.inflight.saturating_sub(1);
    }

    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            sessions_open: self.sessions,
            statements_inflight: self.inflight,
            ..self.stats
        }
    }
}

/// Thread-safe gate: the core under a rank-0 mutex, a condvar for queued
/// statements, and a clock for deadlines.
pub struct AdmissionGate {
    core: Mutex<AdmissionCore>,
    slot_freed: Condvar,
    clock: Arc<dyn Clock>,
}

/// RAII statement slot: returned by a successful
/// [`AdmissionGate::admit_statement`], releases the slot (and wakes one
/// queued statement) on drop.
pub struct StatementPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for StatementPermit<'_> {
    fn drop(&mut self) {
        self.gate.core.lock().finish_statement();
        self.gate.slot_freed.notify_one();
    }
}

impl AdmissionGate {
    pub fn new(limits: AdmissionLimits, clock: Arc<dyn Clock>) -> AdmissionGate {
        AdmissionGate {
            core: Mutex::with_rank(AdmissionCore::new(limits), LockRank::ServerAdmission),
            slot_freed: Condvar::new(),
            clock,
        }
    }

    pub fn limits(&self) -> AdmissionLimits {
        self.core.lock().limits()
    }

    pub fn set_limits(&self, limits: AdmissionLimits) {
        self.core.lock().set_limits(limits);
        // a raised statement limit frees slots from the waiters' view
        self.slot_freed.notify_all();
    }

    /// Offer a new session (on accept). `true` admits.
    pub fn admit_session(&self) -> bool {
        self.core.lock().try_session()
    }

    /// Release a session slot (on disconnect).
    pub fn release_session(&self) {
        self.core.lock().release_session();
    }

    /// Offer a statement, blocking in the queue up to the configured
    /// timeout. `Some(permit)` admits — the permit's drop releases the
    /// slot. `None` means the statement was shed.
    pub fn admit_statement(&self) -> Option<StatementPermit<'_>> {
        let mut core = self.core.lock();
        let deadline = match core.try_statement(self.clock.now_secs()) {
            StatementGate::Admitted => return Some(StatementPermit { gate: self }),
            StatementGate::Rejected => return None,
            StatementGate::Queued { deadline_secs } => deadline_secs,
        };
        loop {
            let now = self.clock.now_secs();
            let remaining = deadline - now;
            if remaining > 0.0 {
                // cap each park so limit raises and clock advances are
                // observed even without a notify
                let park = remaining.min(0.01);
                self.slot_freed
                    .wait_for(&mut core, std::time::Duration::from_secs_f64(park));
            }
            match core.retry_statement(self.clock.now_secs(), deadline) {
                Retry::Admitted => return Some(StatementPermit { gate: self }),
                Retry::TimedOut => return None,
                Retry::Wait => {}
            }
        }
    }

    pub fn stats(&self) -> AdmissionStats {
        self.core.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimdb_common::ManualClock;

    fn limits(sessions: usize, statements: usize, timeout_ms: u64) -> AdmissionLimits {
        AdmissionLimits {
            max_sessions: sessions,
            max_statements: statements,
            queue_timeout_ms: timeout_ms,
        }
    }

    #[test]
    fn sessions_admit_to_the_limit_then_reject() {
        let mut core = AdmissionCore::new(limits(2, 8, 100));
        assert!(core.try_session());
        assert!(core.try_session());
        assert!(!core.try_session(), "third session is over the limit");
        assert_eq!(core.stats().sessions_rejected, 1);
        core.release_session();
        assert!(core.try_session(), "released slot is reusable");
        assert_eq!(core.stats().sessions_open, 2);
    }

    #[test]
    fn statements_admit_queue_and_time_out_at_exact_thresholds() {
        let mut core = AdmissionCore::new(limits(8, 2, 100));
        assert_eq!(core.try_statement(0.0), StatementGate::Admitted);
        assert_eq!(core.try_statement(0.0), StatementGate::Admitted);
        // full: third queues with a deadline exactly timeout_ms away
        let StatementGate::Queued { deadline_secs } = core.try_statement(1.0) else {
            panic!("expected queue");
        };
        assert!((deadline_secs - 1.1).abs() < 1e-9);
        // a hair before the deadline: still waiting
        assert_eq!(core.retry_statement(1.0999, deadline_secs), Retry::Wait);
        // exactly at the deadline: shed
        assert_eq!(core.retry_statement(1.1, deadline_secs), Retry::TimedOut);
        let s = core.stats();
        assert_eq!((s.admitted, s.queued, s.rejected), (2, 1, 1));
    }

    #[test]
    fn queued_statement_admits_when_a_slot_frees() {
        let mut core = AdmissionCore::new(limits(8, 1, 100));
        assert_eq!(core.try_statement(0.0), StatementGate::Admitted);
        let StatementGate::Queued { deadline_secs } = core.try_statement(0.0) else {
            panic!("expected queue");
        };
        core.finish_statement();
        assert_eq!(core.retry_statement(0.05, deadline_secs), Retry::Admitted);
        assert_eq!(core.stats().statements_inflight, 1);
    }

    #[test]
    fn zero_timeout_sheds_immediately() {
        let mut core = AdmissionCore::new(limits(8, 1, 0));
        assert_eq!(core.try_statement(0.0), StatementGate::Admitted);
        assert_eq!(core.try_statement(0.0), StatementGate::Rejected);
        assert_eq!(core.stats().rejected, 1);
    }

    #[test]
    fn raising_the_limit_admits_previously_queued_work() {
        let mut core = AdmissionCore::new(limits(8, 1, 1000));
        assert_eq!(core.try_statement(0.0), StatementGate::Admitted);
        let StatementGate::Queued { deadline_secs } = core.try_statement(0.0) else {
            panic!("expected queue");
        };
        core.set_limits(limits(8, 2, 1000));
        assert_eq!(core.retry_statement(0.1, deadline_secs), Retry::Admitted);
    }

    #[test]
    fn lowering_the_limit_never_revokes_inflight_work() {
        let mut core = AdmissionCore::new(limits(8, 4, 100));
        for _ in 0..4 {
            assert_eq!(core.try_statement(0.0), StatementGate::Admitted);
        }
        core.set_limits(limits(8, 1, 100));
        assert_eq!(
            core.stats().statements_inflight,
            4,
            "slots drain, not revoked"
        );
        // as they drain, only one slot is refillable
        core.finish_statement();
        core.finish_statement();
        core.finish_statement();
        core.finish_statement();
        assert_eq!(core.try_statement(1.0), StatementGate::Admitted);
        assert!(matches!(
            core.try_statement(1.0),
            StatementGate::Queued { .. }
        ));
    }

    #[test]
    fn gate_permit_drop_frees_the_slot() {
        let clock = Arc::new(ManualClock::new());
        let gate = AdmissionGate::new(limits(8, 1, 0), clock);
        let permit = gate.admit_statement().expect("first admits");
        assert!(gate.admit_statement().is_none(), "zero timeout sheds");
        drop(permit);
        assert!(gate.admit_statement().is_some(), "freed slot admits");
        let s = gate.stats();
        assert_eq!((s.admitted, s.rejected), (2, 1));
    }

    #[test]
    fn gate_queue_times_out_on_the_injected_clock() {
        // a manual clock that never advances would wait forever if the
        // deadline logic consulted wall time; with remaining capped at
        // 10ms per park, advance the clock from another thread
        let clock = Arc::new(ManualClock::new());
        let gate = Arc::new(AdmissionGate::new(
            limits(8, 1, 50),
            Arc::clone(&clock) as _,
        ));
        let _held = gate.admit_statement().expect("first admits");
        let g = Arc::clone(&gate);
        let ticker = std::thread::spawn(move || {
            for _ in 0..10 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                clock.advance_secs(0.01);
            }
        });
        let shed = gate.admit_statement();
        assert!(
            shed.is_none(),
            "statement shed when the manual deadline passed"
        );
        ticker.join().expect("ticker join");
        assert_eq!(g.stats().rejected, 1);
    }
}
