//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! ## Frame grammar
//!
//! ```text
//! frame      := kind:u8 len:u32le payload:[u8; len]        len <= 1 MiB
//!
//! client →
//!   Hello    0x01   magic:"aimw" version:u16le
//!   Query    0x02   sql:utf8
//!   Parse    0x03   name:utf8 0x00 sql:utf8       (sql may hold ? params)
//!   Execute  0x04   name:utf8 0x00 nparams:u16le value*
//!   Close    0x05   (empty)                       graceful goodbye
//!
//! server →
//!   HelloOk  0x81   version:u16le session_id:u64le
//!   Result   0x82   result                        (see below)
//!   Error    0x83   retryable:u8 category:utf8 0x00 message:utf8
//!   Bye      0x84   (empty)                       sent before close
//!   Rejected 0x85   scope:u8 reason:utf8          admission shed
//!                   (scope 0 = session, 1 = statement)
//!
//! result     := 0x00 schema nrows:u32le row*      rows
//!             | 0x01 affected:u64le               DML count
//!             | 0x02 text:utf8                    informational
//! schema     := ncols:u16le column*
//! column     := name:utf8 0x00 dtype:u8 nullable:u8
//!               (dtype 1 = INT, 2 = FLOAT, 3 = TEXT, 4 = BOOL)
//! row        := nvals:u32le value*
//! value      := 0x00                              NULL
//!             | 0x01 i64le | 0x02 f64-bits-le
//!             | 0x03 len:u32le utf8 | 0x04 bool:u8
//! ```
//!
//! Everything is deterministic: encoding the same [`QueryResult`] yields
//! the same bytes, which is what lets the load generator assert
//! bit-identical results between in-process and over-the-wire execution.
//!
//! This module is pure parsing/serialization over `Read`/`Write` — no
//! sockets, no sessions — so the fuzz suite can drive it byte-by-byte.
//! Malformed input maps to [`AimError::InvalidInput`] (frame-level) or
//! [`AimError::Parse`] (payload-level); oversized lengths are rejected
//! before any allocation of that size happens.

use std::io::{Read, Write};

use aimdb_common::{AimError, Column, DataType, Result, Row, Schema, Value};
use aimdb_engine::QueryResult;

/// Protocol version spoken by this build.
pub const PROTOCOL_VERSION: u16 = 1;
/// Handshake magic — first bytes a client must send.
pub const MAGIC: &[u8; 4] = b"aimw";
/// Hard cap on a frame payload; larger lengths are a protocol error
/// (and are rejected *before* allocating).
pub const MAX_FRAME: usize = 1 << 20;

/// Frame type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    Hello = 0x01,
    Query = 0x02,
    Parse = 0x03,
    Execute = 0x04,
    Close = 0x05,
    HelloOk = 0x81,
    Result = 0x82,
    Error = 0x83,
    Bye = 0x84,
    Rejected = 0x85,
}

impl FrameKind {
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::Hello,
            0x02 => FrameKind::Query,
            0x03 => FrameKind::Parse,
            0x04 => FrameKind::Execute,
            0x05 => FrameKind::Close,
            0x81 => FrameKind::HelloOk,
            0x82 => FrameKind::Result,
            0x83 => FrameKind::Error,
            0x84 => FrameKind::Bye,
            0x85 => FrameKind::Rejected,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub kind: FrameKind,
    pub payload: Vec<u8>,
}

impl Frame {
    pub fn new(kind: FrameKind, payload: Vec<u8>) -> Frame {
        Frame { kind, payload }
    }
}

fn io_err(op: &str, e: &std::io::Error) -> AimError {
    AimError::Storage(format!("wire {op}: {e}"))
}

/// Write one frame. The header and payload go out in a single `write_all`
/// so a concurrent reader never observes a torn header.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    let mut buf = Vec::with_capacity(5 + frame.payload.len());
    buf.push(frame.kind as u8);
    buf.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&frame.payload);
    w.write_all(&buf).map_err(|e| io_err("write", &e))?;
    w.flush().map_err(|e| io_err("flush", &e))
}

/// Read exactly `n` bytes, mapping EOF mid-object to a structured error.
/// Returns `Ok(None)` on clean EOF at an object boundary when
/// `at_boundary` is set.
fn read_exact_opt(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Ok(false);
                }
                return Err(AimError::InvalidInput(format!(
                    "wire: EOF after {filled} of {} bytes",
                    buf.len()
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("read", &e)),
        }
    }
    Ok(true)
}

/// Read one frame. `Ok(None)` means the peer closed cleanly at a frame
/// boundary. Unknown frame kinds and oversized lengths are
/// [`AimError::InvalidInput`]; short reads inside a frame likewise.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>> {
    let mut header = [0u8; 5];
    if !read_exact_opt(r, &mut header, true)? {
        return Ok(None);
    }
    let kind = FrameKind::from_u8(header[0]).ok_or_else(|| {
        AimError::InvalidInput(format!("wire: unknown frame kind {:#04x}", header[0]))
    })?;
    let len = u32::from_le_bytes([header[1], header[2], header[3], header[4]]) as usize;
    if len > MAX_FRAME {
        return Err(AimError::InvalidInput(format!(
            "wire: frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_opt(r, &mut payload, false)?;
    Ok(Some(Frame { kind, payload }))
}

// ---------------------------------------------------------------- payloads

/// Encode the Hello payload.
pub fn encode_hello() -> Vec<u8> {
    let mut out = Vec::with_capacity(6);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out
}

/// Validate a Hello payload, returning the client's protocol version.
pub fn decode_hello(payload: &[u8]) -> Result<u16> {
    if payload.len() != 6 || &payload[..4] != MAGIC {
        return Err(AimError::Parse("hello: bad magic".into()));
    }
    Ok(u16::from_le_bytes([payload[4], payload[5]]))
}

/// Encode the HelloOk payload.
pub fn encode_hello_ok(session_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&session_id.to_le_bytes());
    out
}

/// Decode a HelloOk payload into `(version, session_id)`.
pub fn decode_hello_ok(payload: &[u8]) -> Result<(u16, u64)> {
    if payload.len() != 10 {
        return Err(AimError::Parse("hello_ok: bad length".into()));
    }
    let version = u16::from_le_bytes([payload[0], payload[1]]);
    let mut id = [0u8; 8];
    id.copy_from_slice(&payload[2..]);
    Ok((version, u64::from_le_bytes(id)))
}

/// Encode a Parse payload (`name NUL sql`).
pub fn encode_parse(name: &str, sql: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(name.len() + 1 + sql.len());
    out.extend_from_slice(name.as_bytes());
    out.push(0);
    out.extend_from_slice(sql.as_bytes());
    out
}

/// Decode a Parse payload into `(name, sql)`.
pub fn decode_parse(payload: &[u8]) -> Result<(String, String)> {
    let nul = payload
        .iter()
        .position(|&b| b == 0)
        .ok_or_else(|| AimError::Parse("parse: missing name terminator".into()))?;
    let name = utf8(&payload[..nul], "statement name")?;
    let sql = utf8(&payload[nul + 1..], "sql")?;
    if name.is_empty() {
        return Err(AimError::Parse("parse: empty statement name".into()));
    }
    Ok((name, sql))
}

/// Encode an Execute payload (`name NUL nparams value*`).
pub fn encode_execute(name: &str, params: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(name.len() + 3 + params.len() * 9);
    out.extend_from_slice(name.as_bytes());
    out.push(0);
    out.extend_from_slice(&(params.len() as u16).to_le_bytes());
    for v in params {
        encode_value(&mut out, v);
    }
    out
}

/// Decode an Execute payload into `(name, params)`.
pub fn decode_execute(payload: &[u8]) -> Result<(String, Vec<Value>)> {
    let nul = payload
        .iter()
        .position(|&b| b == 0)
        .ok_or_else(|| AimError::Parse("execute: missing name terminator".into()))?;
    let name = utf8(&payload[..nul], "statement name")?;
    let rest = &payload[nul + 1..];
    if rest.len() < 2 {
        return Err(AimError::Parse("execute: missing parameter count".into()));
    }
    let n = u16::from_le_bytes([rest[0], rest[1]]) as usize;
    let mut at = 2;
    let mut params = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let (v, used) = decode_value(&rest[at..])?;
        params.push(v);
        at += used;
    }
    if at != rest.len() {
        return Err(AimError::Parse(format!(
            "execute: {} trailing bytes after parameters",
            rest.len() - at
        )));
    }
    Ok((name, params))
}

/// Encode an Error payload from an [`AimError`].
pub fn encode_error(e: &AimError) -> Vec<u8> {
    let category = e.category();
    let msg = e.to_string();
    let mut out = Vec::with_capacity(2 + category.len() + msg.len());
    out.push(u8::from(e.is_retryable()));
    out.extend_from_slice(category.as_bytes());
    out.push(0);
    out.extend_from_slice(msg.as_bytes());
    out
}

/// A decoded server error frame: the [`AimError::category`] tag, the
/// rendered message, and whether the statement is retryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub retryable: bool,
    pub category: String,
    pub message: String,
}

impl WireError {
    /// Reconstruct the nearest [`AimError`] variant from the category
    /// tag, so client-side retry logic (`is_retryable`) keeps working
    /// across the wire.
    pub fn to_aim(&self) -> AimError {
        let m = self.message.clone();
        match self.category.as_str() {
            "parse" => AimError::Parse(m),
            "not_found" => AimError::NotFound(m),
            "already_exists" => AimError::AlreadyExists(m),
            "type_mismatch" => AimError::TypeMismatch(m),
            "plan" => AimError::Plan(m),
            "storage" => AimError::Storage(m),
            "txn_aborted" => AimError::TxnAborted(m),
            "write_conflict" => AimError::WriteConflict(m),
            "nested_txn" => AimError::NestedTxn(m),
            "model" => AimError::Model(m),
            "invalid_input" => AimError::InvalidInput(m),
            "lock_order" => AimError::LockOrder(m),
            _ => AimError::Execution(m),
        }
    }
}

/// Decode an Error payload.
pub fn decode_error(payload: &[u8]) -> Result<WireError> {
    if payload.len() < 2 {
        return Err(AimError::Parse("error frame: too short".into()));
    }
    let retryable = payload[0] != 0;
    let rest = &payload[1..];
    let nul = rest
        .iter()
        .position(|&b| b == 0)
        .ok_or_else(|| AimError::Parse("error frame: missing category terminator".into()))?;
    Ok(WireError {
        retryable,
        category: utf8(&rest[..nul], "category")?,
        message: utf8(&rest[nul + 1..], "message")?,
    })
}

/// Encode a Rejected payload. `statement_scope` distinguishes a shed
/// statement (connection stays up) from a refused session.
pub fn encode_rejected(statement_scope: bool, reason: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + reason.len());
    out.push(u8::from(statement_scope));
    out.extend_from_slice(reason.as_bytes());
    out
}

/// Decode a Rejected payload into `(statement_scope, reason)`.
pub fn decode_rejected(payload: &[u8]) -> Result<(bool, String)> {
    if payload.is_empty() {
        return Err(AimError::Parse("rejected frame: empty".into()));
    }
    Ok((payload[0] != 0, utf8(&payload[1..], "reason")?))
}

// ---------------------------------------------------------------- results

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Bool => 4,
    }
}

fn dtype_from_tag(b: u8) -> Result<DataType> {
    Ok(match b {
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Bool,
        other => return Err(AimError::Parse(format!("schema: unknown dtype {other}"))),
    })
}

/// Deterministically encode a [`QueryResult`].
pub fn encode_result(r: &QueryResult) -> Vec<u8> {
    let mut out = Vec::new();
    match r {
        QueryResult::Rows { schema, rows } => {
            out.push(0x00);
            out.extend_from_slice(&(schema.len() as u16).to_le_bytes());
            for col in schema.columns() {
                out.extend_from_slice(col.name.as_bytes());
                out.push(0);
                out.push(dtype_tag(col.data_type));
                out.push(u8::from(col.nullable));
            }
            out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for row in rows {
                let values = row.values();
                out.extend_from_slice(&(values.len() as u32).to_le_bytes());
                for v in values {
                    encode_value(&mut out, v);
                }
            }
        }
        QueryResult::Affected(n) => {
            out.push(0x01);
            out.extend_from_slice(&(*n as u64).to_le_bytes());
        }
        QueryResult::Text(t) => {
            out.push(0x02);
            out.extend_from_slice(t.as_bytes());
        }
    }
    out
}

/// Decode a Result payload back into a [`QueryResult`].
pub fn decode_result(payload: &[u8]) -> Result<QueryResult> {
    let Some((&tag, rest)) = payload.split_first() else {
        return Err(AimError::Parse("result: empty payload".into()));
    };
    match tag {
        0x00 => {
            if rest.len() < 2 {
                return Err(AimError::Parse("result: missing column count".into()));
            }
            let ncols = u16::from_le_bytes([rest[0], rest[1]]) as usize;
            let mut at = 2;
            let mut columns = Vec::with_capacity(ncols.min(256));
            for _ in 0..ncols {
                let nul = rest[at..]
                    .iter()
                    .position(|&b| b == 0)
                    .ok_or_else(|| AimError::Parse("schema: unterminated column name".into()))?;
                let name = utf8(&rest[at..at + nul], "column name")?;
                at += nul + 1;
                if rest.len() < at + 2 {
                    return Err(AimError::Parse("schema: truncated column meta".into()));
                }
                let data_type = dtype_from_tag(rest[at])?;
                let nullable = rest[at + 1] != 0;
                at += 2;
                let col = Column::new(name, data_type);
                columns.push(if nullable { col } else { col.not_null() });
            }
            let schema = Schema::new(columns);
            if rest.len() < at + 4 {
                return Err(AimError::Parse("result: missing row count".into()));
            }
            let nrows =
                u32::from_le_bytes([rest[at], rest[at + 1], rest[at + 2], rest[at + 3]]) as usize;
            at += 4;
            let mut rows = Vec::with_capacity(nrows.min(1024));
            for _ in 0..nrows {
                if rest.len() < at + 4 {
                    return Err(AimError::Parse("result: truncated row header".into()));
                }
                let nvals = u32::from_le_bytes([rest[at], rest[at + 1], rest[at + 2], rest[at + 3]])
                    as usize;
                at += 4;
                let mut values = Vec::with_capacity(nvals.min(256));
                for _ in 0..nvals {
                    let (v, used) = decode_value(&rest[at..])?;
                    values.push(v);
                    at += used;
                }
                rows.push(Row::new(values));
            }
            if at != rest.len() {
                return Err(AimError::Parse("result: trailing bytes after rows".into()));
            }
            Ok(QueryResult::Rows { schema, rows })
        }
        0x01 => {
            if rest.len() != 8 {
                return Err(AimError::Parse("result: bad affected length".into()));
            }
            let mut n = [0u8; 8];
            n.copy_from_slice(rest);
            Ok(QueryResult::Affected(u64::from_le_bytes(n) as usize))
        }
        0x02 => Ok(QueryResult::Text(utf8(rest, "text result")?)),
        other => Err(AimError::Parse(format!("result: unknown tag {other:#04x}"))),
    }
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0x00),
        Value::Int(i) => {
            out.push(0x01);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(0x02);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(t) => {
            out.push(0x03);
            out.extend_from_slice(&(t.len() as u32).to_le_bytes());
            out.extend_from_slice(t.as_bytes());
        }
        Value::Bool(b) => {
            out.push(0x04);
            out.push(u8::from(*b));
        }
    }
}

/// Decode one value, returning it and the bytes consumed.
fn decode_value(bytes: &[u8]) -> Result<(Value, usize)> {
    let Some((&tag, rest)) = bytes.split_first() else {
        return Err(AimError::Parse("value: truncated tag".into()));
    };
    match tag {
        0x00 => Ok((Value::Null, 1)),
        0x01 => {
            let b = fixed::<8>(rest, "int")?;
            Ok((Value::Int(i64::from_le_bytes(b)), 9))
        }
        0x02 => {
            let b = fixed::<8>(rest, "float")?;
            Ok((Value::Float(f64::from_bits(u64::from_le_bytes(b))), 9))
        }
        0x03 => {
            let b = fixed::<4>(rest, "text length")?;
            let len = u32::from_le_bytes(b) as usize;
            if len > MAX_FRAME {
                return Err(AimError::Parse(format!(
                    "value: text length {len} too large"
                )));
            }
            if rest.len() < 4 + len {
                return Err(AimError::Parse("value: truncated text".into()));
            }
            Ok((Value::Text(utf8(&rest[4..4 + len], "text value")?), 5 + len))
        }
        0x04 => {
            let b = fixed::<1>(rest, "bool")?;
            Ok((Value::Bool(b[0] != 0), 2))
        }
        other => Err(AimError::Parse(format!("value: unknown tag {other:#04x}"))),
    }
}

fn fixed<const N: usize>(bytes: &[u8], what: &str) -> Result<[u8; N]> {
    if bytes.len() < N {
        return Err(AimError::Parse(format!("value: truncated {what}")));
    }
    let mut out = [0u8; N];
    out.copy_from_slice(&bytes[..N]);
    Ok(out)
}

fn utf8(bytes: &[u8], what: &str) -> Result<String> {
    String::from_utf8(bytes.to_vec())
        .map_err(|_| AimError::Parse(format!("wire: {what} is not valid UTF-8")))
}

/// Render a [`Value`] as a SQL literal for parameter substitution.
/// Strings escape embedded quotes by doubling, matching the
/// fingerprint normalizer's understanding of string literals.
pub fn value_to_sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => {
            // keep a decimal point so the engine parses a float back
            if f.fract() == 0.0 && f.is_finite() {
                format!("{f:.1}")
            } else {
                format!("{f}")
            }
        }
        Value::Text(t) => format!("'{}'", t.replace('\'', "''")),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        let f = Frame::new(FrameKind::Query, b"SELECT 1".to_vec());
        write_frame(&mut buf, &f).expect("write");
        let got = read_frame(&mut buf.as_slice())
            .expect("read")
            .expect("frame");
        assert_eq!(got, f);
        // clean EOF at a boundary
        assert!(read_frame(&mut (&buf[..0])).expect("eof").is_none());
    }

    #[test]
    fn truncated_and_oversized_frames_are_structured_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Frame::new(FrameKind::Query, vec![1, 2, 3])).expect("write");
        // truncate inside the payload
        let e = read_frame(&mut (&buf[..6])).expect_err("truncated");
        assert_eq!(e.category(), "invalid_input");
        // oversized declared length
        let mut huge = vec![FrameKind::Query as u8];
        huge.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        let e = read_frame(&mut huge.as_slice()).expect_err("oversized");
        assert_eq!(e.category(), "invalid_input");
        // unknown kind
        let unk = [0x7fu8, 0, 0, 0, 0];
        let e = read_frame(&mut unk.as_slice()).expect_err("unknown kind");
        assert_eq!(e.category(), "invalid_input");
    }

    #[test]
    fn hello_roundtrip_and_bad_magic() {
        assert_eq!(
            decode_hello(&encode_hello()).expect("hello"),
            PROTOCOL_VERSION
        );
        assert!(decode_hello(b"nope12").is_err());
        let (v, sid) = decode_hello_ok(&encode_hello_ok(42)).expect("hello_ok");
        assert_eq!((v, sid), (PROTOCOL_VERSION, 42));
    }

    #[test]
    fn parse_execute_roundtrip() {
        let p = encode_parse("get_user", "SELECT v FROM kv WHERE k = ?");
        let (name, sql) = decode_parse(&p).expect("parse");
        assert_eq!(name, "get_user");
        assert_eq!(sql, "SELECT v FROM kv WHERE k = ?");
        let params = vec![
            Value::Int(-7),
            Value::Text("o'brien".into()),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        let e = encode_execute("get_user", &params);
        let (name, got) = decode_execute(&e).expect("execute");
        assert_eq!(name, "get_user");
        assert_eq!(got, params);
    }

    #[test]
    fn result_roundtrip_is_bit_identical() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("note", DataType::Text),
            Column::new("score", DataType::Float),
        ]);
        let r = QueryResult::Rows {
            schema,
            rows: vec![
                Row::new(vec![Value::Int(1), Value::Text("a".into()), Value::Null]),
                Row::new(vec![Value::Float(2.25), Value::Bool(false), Value::Int(-9)]),
            ],
        };
        let enc = encode_result(&r);
        let dec = decode_result(&enc).expect("decode");
        assert_eq!(encode_result(&dec), enc);
        let a = QueryResult::Affected(12);
        assert_eq!(
            encode_result(&decode_result(&encode_result(&a)).expect("affected")),
            encode_result(&a)
        );
        let t = QueryResult::Text("set x = 1".into());
        assert_eq!(
            encode_result(&decode_result(&encode_result(&t)).expect("text")),
            encode_result(&t)
        );
    }

    #[test]
    fn error_frame_carries_category_and_retryability() {
        let e = AimError::WriteConflict("row 5".into());
        let w = decode_error(&encode_error(&e)).expect("decode");
        assert!(w.retryable);
        assert_eq!(w.category, "write_conflict");
        assert!(w.message.contains("row 5"));
        let e = AimError::Parse("bad token".into());
        let w = decode_error(&encode_error(&e)).expect("decode");
        assert!(!w.retryable);
        assert_eq!(w.category, "parse");
    }

    #[test]
    fn sql_literals_escape() {
        assert_eq!(
            value_to_sql_literal(&Value::Text("o'brien".into())),
            "'o''brien'"
        );
        assert_eq!(value_to_sql_literal(&Value::Null), "NULL");
        assert_eq!(value_to_sql_literal(&Value::Int(-3)), "-3");
        assert_eq!(value_to_sql_literal(&Value::Float(2.0)), "2.0");
    }

    #[test]
    fn malformed_payloads_never_panic() {
        // decode_* over random-ish truncations must return Err, not panic
        let enc = encode_execute("s", &[Value::Int(1), Value::Text("abc".into())]);
        for cut in 0..enc.len() {
            let _ = decode_execute(&enc[..cut]);
        }
        let res = encode_result(&QueryResult::Rows {
            schema: Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Text)]),
            rows: vec![Row::new(vec![Value::Int(1), Value::Text("abc".into())])],
        });
        for cut in 0..res.len() {
            let _ = decode_result(&res[..cut]);
        }
    }
}
