//! The threaded TCP server: accept loop, per-connection handler threads,
//! graceful drain, and the admission control loop.
//!
//! ## Thread structure
//!
//! - **accept thread** — nonblocking `accept` poll; offers each new
//!   connection to the admission gate (`max_connections`) and spawns a
//!   handler thread for admitted ones. Rejected connections get a
//!   `Rejected` frame and a clean close.
//! - **handler threads** (one per connection) — handshake, then a frame
//!   loop. Each statement takes a slot from the statement gate
//!   (`admission_max_statements`), which may queue it up to
//!   `admission_queue_timeout_ms` and then shed it with a `Rejected`
//!   frame; the connection itself stays up. Engine errors become `Error`
//!   frames carrying the [`AimError`] category and retryability — the
//!   connection survives those too.
//! - **control thread** — every tick, re-reads the gate limits from the
//!   knob system and (when the tuner is enabled) runs one
//!   [`AdmissionTuner`] observation over the live KPI vector, the
//!   wait-class share delta, and the gate's reject-rate delta. A Shrink
//!   or Grow actuates through `SET admission_max_statements` on the
//!   global knobs — the same audited path a DBA uses — which the next
//!   tick folds back into the gate. This closes the Baihe-style loop:
//!   monitor → tune → actuate → observe.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] flips a latch. The accept thread stops taking
//! connections; each handler notices the latch at its next frame poll —
//! *between* statements, never inside one — so in-flight statements run
//! to completion and their results are delivered, then a `Bye` frame is
//! sent and the connection closes. Dropped connections roll back any
//! open transaction, so no abandoned session can pin the MVCC vacuum
//! horizon.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use aimdb_ai4db::admission::{AdmissionAction, AdmissionTuner, WaitShares};
use aimdb_ai4db::monitor::live_kpi_vector;
use aimdb_common::{wait, AimError, LockRank, Result, Value, WaitSet, WallClock};
use aimdb_engine::{Database, Knobs, QueryResult};
use parking_lot::Mutex;

use crate::admission::{AdmissionGate, AdmissionLimits, AdmissionStats};
use crate::protocol::{self, Frame, FrameKind, MAX_FRAME};
use crate::session::Session;

/// How often handler threads surface from a blocked read to check the
/// shutdown latch.
const READ_POLL: Duration = Duration::from_millis(25);
/// Once a frame has started arriving, how long the rest may take. A
/// client that stalls mid-frame longer than this is treated as sending
/// a truncated frame (structured error, then disconnect).
const FRAME_REST_TIMEOUT: Duration = Duration::from_secs(5);
/// Accept-poll sleep when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Control-loop period in milliseconds.
    pub control_tick_ms: u64,
    /// Run the AIMD admission tuner (false = static knob-set limits).
    pub tuner_enabled: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            control_tick_ms: 25,
            tuner_enabled: true,
        }
    }
}

/// Counters of the tuner's actuations through the knob system.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunerStats {
    pub shrinks: u64,
    pub grows: u64,
}

/// State shared by the accept, control, and handler threads.
struct Shared {
    db: Arc<Database>,
    gate: AdmissionGate,
    shutdown: AtomicBool,
    next_session: AtomicU64,
    tuner_shrinks: AtomicU64,
    tuner_grows: AtomicU64,
    /// Handler join handles plus the wait-profile aggregate of finished
    /// connections, under one rank-1 mutex (acquired after the gate's
    /// rank-0 mutex is *released* — neither is ever held across the
    /// other, but the ranks document the accept-path order).
    registry: Mutex<Registry>,
}

#[derive(Default)]
struct Registry {
    handles: Vec<JoinHandle<()>>,
    /// Wait events attributed to wire statements, merged per connection
    /// as handlers finish.
    wire_waits: WaitSet,
}

fn limits_from_knobs(knobs: &Knobs) -> AdmissionLimits {
    let get = |name: &str, fallback: i64| knobs.get(name).unwrap_or(fallback);
    AdmissionLimits {
        max_sessions: get("max_connections", 100).max(1) as usize,
        max_statements: get("admission_max_statements", 64).max(1) as usize,
        queue_timeout_ms: get("admission_queue_timeout_ms", 100).max(0) as u64,
    }
}

/// A running server. Dropping it performs a graceful shutdown.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    control: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `db` per `config`.
    pub fn start(db: Arc<Database>, config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| AimError::Storage(format!("bind {}: {e}", config.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| AimError::Storage(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| AimError::Storage(format!("set_nonblocking: {e}")))?;

        let limits = limits_from_knobs(&db.knobs);
        let shared = Arc::new(Shared {
            db,
            gate: AdmissionGate::new(limits, Arc::new(WallClock::new())),
            shutdown: AtomicBool::new(false),
            next_session: AtomicU64::new(0),
            tuner_shrinks: AtomicU64::new(0),
            tuner_grows: AtomicU64::new(0),
            registry: Mutex::with_rank(Registry::default(), LockRank::ServerSessions),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("aimdb-accept".into())
                .spawn(move || accept_loop(&shared, listener))
                .map_err(|e| AimError::Storage(format!("spawn accept: {e}")))?
        };
        let control = {
            let shared = Arc::clone(&shared);
            let tick = Duration::from_millis(config.control_tick_ms.max(1));
            let tuner_enabled = config.tuner_enabled;
            std::thread::Builder::new()
                .name("aimdb-control".into())
                .spawn(move || control_loop(&shared, tick, tuner_enabled))
                .map_err(|e| AimError::Storage(format!("spawn control: {e}")))?
        };

        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            control: Some(control),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live admission counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.shared.gate.stats()
    }

    /// Current gate limits (knob-derived, possibly tuner-actuated).
    pub fn admission_limits(&self) -> AdmissionLimits {
        self.shared.gate.limits()
    }

    /// Tuner actuation counts so far.
    pub fn tuner_stats(&self) -> TunerStats {
        TunerStats {
            // ordering: Relaxed — monotone counters read for reporting only
            shrinks: self.shared.tuner_shrinks.load(Ordering::Relaxed),
            grows: self.shared.tuner_grows.load(Ordering::Relaxed),
        }
    }

    /// Wait profile attributed to wire statements of connections that
    /// have finished.
    pub fn wire_waits(&self) -> WaitSet {
        self.shared.registry.lock().wire_waits.clone()
    }

    /// Graceful shutdown: stop accepting, let every in-flight statement
    /// finish and its result ship, send `Bye`s, join all threads.
    pub fn shutdown(mut self) -> Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Result<()> {
        // ordering: SeqCst — the latch must be visible to every handler's
        // next poll; this is a one-way transition, cost is irrelevant
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            h.join()
                .map_err(|_| AimError::Execution("accept thread panicked".into()))?;
        }
        if let Some(h) = self.control.take() {
            h.join()
                .map_err(|_| AimError::Execution("control thread panicked".into()))?;
        }
        // handlers observe the latch at their next frame poll; drain them
        loop {
            let drained = {
                let mut reg = self.shared.registry.lock();
                std::mem::take(&mut reg.handles)
            };
            if drained.is_empty() {
                break;
            }
            for h in drained {
                h.join()
                    .map_err(|_| AimError::Execution("handler thread panicked".into()))?;
            }
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        // ordering: Relaxed — one-way latch polled in a loop; staleness of
        // a few iterations only delays shutdown by one poll interval
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.gate.admit_session() {
                    spawn_handler(shared, stream);
                } else {
                    // refuse politely: Rejected frame, then close
                    let mut stream = stream;
                    let _ = stream.set_nodelay(true);
                    let _ = protocol::write_frame(
                        &mut stream,
                        &Frame::new(
                            FrameKind::Rejected,
                            protocol::encode_rejected(false, "max_connections reached"),
                        ),
                    );
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                // transient accept failure (e.g. aborted connection):
                // back off briefly and keep serving
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn spawn_handler(shared: &Arc<Shared>, stream: TcpStream) {
    let shared2 = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("aimdb-conn".into())
        .spawn(move || {
            handle_connection(&shared2, stream);
            shared2.gate.release_session();
        });
    match spawned {
        Ok(handle) => shared.registry.lock().handles.push(handle),
        Err(_) => {
            // could not spawn: give the slot back; the client sees EOF
            shared.gate.release_session();
        }
    }
}

/// Read one frame, polling the shutdown latch between frames. Returns
/// `Ok(None)` on clean EOF *or* shutdown — both end the frame loop.
fn poll_frame(stream: &mut TcpStream, shared: &Shared) -> Result<Option<Frame>> {
    let mut first = [0u8; 1];
    loop {
        // ordering: Relaxed — one-way latch, see accept_loop
        if shared.shutdown.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(AimError::Storage(format!("wire read: {e}"))),
        }
    }
    // the frame has started: give the rest a generous fixed window
    let _ = stream.set_read_timeout(Some(FRAME_REST_TIMEOUT));
    let result = read_frame_rest(stream, first[0]);
    let _ = stream.set_read_timeout(Some(READ_POLL));
    result.map(Some)
}

/// Read the remainder of a frame whose kind byte is already in hand.
fn read_frame_rest(stream: &mut TcpStream, kind_byte: u8) -> Result<Frame> {
    let kind = FrameKind::from_u8(kind_byte).ok_or_else(|| {
        AimError::InvalidInput(format!("wire: unknown frame kind {kind_byte:#04x}"))
    })?;
    let mut len4 = [0u8; 4];
    read_exact_patient(stream, &mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > MAX_FRAME {
        return Err(AimError::InvalidInput(format!(
            "wire: frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut payload = vec![0u8; len];
    read_exact_patient(stream, &mut payload)?;
    Ok(Frame { kind, payload })
}

/// `read_exact` that retries `Interrupted` and maps everything else —
/// including a mid-frame stall past the rest-timeout — to a structured
/// error.
fn read_exact_patient(stream: &mut TcpStream, buf: &mut [u8]) -> Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(AimError::InvalidInput(format!(
                    "wire: EOF after {filled} of {} frame bytes",
                    buf.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(AimError::Storage(format!("wire read: {e}"))),
        }
    }
    Ok(())
}

fn send(stream: &mut TcpStream, kind: FrameKind, payload: Vec<u8>) -> Result<()> {
    protocol::write_frame(stream, &Frame::new(kind, payload))
}

fn send_error(stream: &mut TcpStream, e: &AimError) -> Result<()> {
    send(stream, FrameKind::Error, protocol::encode_error(e))
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));

    // handshake: the first frame must be a well-formed Hello
    let sid = match poll_frame(&mut stream, shared) {
        Ok(Some(f)) if f.kind == FrameKind::Hello => {
            match protocol::decode_hello(&f.payload) {
                Ok(_version) => {
                    // ordering: Relaxed — unique-id counter, no other state
                    // is published through it
                    let sid = shared.next_session.fetch_add(1, Ordering::Relaxed) + 1;
                    if send(
                        &mut stream,
                        FrameKind::HelloOk,
                        protocol::encode_hello_ok(sid),
                    )
                    .is_err()
                    {
                        return;
                    }
                    sid
                }
                Err(e) => {
                    let _ = send_error(&mut stream, &e);
                    return;
                }
            }
        }
        Ok(Some(_)) => {
            let _ = send_error(
                &mut stream,
                &AimError::InvalidInput("wire: expected Hello as the first frame".into()),
            );
            return;
        }
        Ok(None) => return,
        Err(e) => {
            let _ = send_error(&mut stream, &e);
            return;
        }
    };

    let mut session = Session::new(sid);
    let mut conn_waits = WaitSet::default();
    // discard waits this thread accumulated before the session started
    let _ = wait::take_thread();

    loop {
        let frame = match poll_frame(&mut stream, shared) {
            Ok(Some(f)) => f,
            Ok(None) => break, // clean EOF or shutdown drain
            Err(e) => {
                // malformed framing: structured error, then disconnect —
                // resynchronizing a byte stream after a bad length
                // prefix is guesswork
                let _ = send_error(&mut stream, &e);
                break;
            }
        };
        let survive = match frame.kind {
            FrameKind::Query => match std::str::from_utf8(&frame.payload) {
                Ok(sql) => {
                    let sql = sql.to_string();
                    run_statement(shared, &mut stream, &mut session, &mut conn_waits, &sql)
                }
                Err(_) => send_error(
                    &mut stream,
                    &AimError::Parse("wire: query is not valid UTF-8".into()),
                )
                .is_ok(),
            },
            FrameKind::Parse => match protocol::decode_parse(&frame.payload) {
                Ok((name, sql)) => match session.prepare(&name, &sql) {
                    Ok(p) => {
                        let ack =
                            QueryResult::Text(format!("PARSE {name} {:#018x}", p.fingerprint));
                        send(
                            &mut stream,
                            FrameKind::Result,
                            protocol::encode_result(&ack),
                        )
                        .is_ok()
                    }
                    Err(e) => send_error(&mut stream, &e).is_ok(),
                },
                Err(e) => send_error(&mut stream, &e).is_ok(),
            },
            FrameKind::Execute => match protocol::decode_execute(&frame.payload) {
                Ok((name, params)) => run_prepared(
                    shared,
                    &mut stream,
                    &mut session,
                    &mut conn_waits,
                    &name,
                    &params,
                ),
                Err(e) => send_error(&mut stream, &e).is_ok(),
            },
            FrameKind::Close => {
                let _ = send(&mut stream, FrameKind::Bye, Vec::new());
                false
            }
            FrameKind::Hello => send_error(
                &mut stream,
                &AimError::InvalidInput("wire: duplicate Hello".into()),
            )
            .is_ok(),
            // server→client kinds arriving from a client are protocol abuse
            FrameKind::HelloOk
            | FrameKind::Result
            | FrameKind::Error
            | FrameKind::Bye
            | FrameKind::Rejected => send_error(
                &mut stream,
                &AimError::InvalidInput(format!(
                    "wire: client sent server frame kind {:#04x}",
                    frame.kind as u8
                )),
            )
            .is_ok(),
        };
        if !survive {
            break;
        }
    }

    // shutdown drain path: tell a still-connected peer we are done
    // ordering: Relaxed — one-way latch, see accept_loop
    if shared.shutdown.load(Ordering::Relaxed) {
        let _ = send(&mut stream, FrameKind::Bye, Vec::new());
    }
    // an abandoned BEGIN must not pin the vacuum horizon
    let _ = session.close(&shared.db);
    conn_waits.merge(&wait::take_thread());
    shared.registry.lock().wire_waits.merge(&conn_waits);
}

/// Gate + execute + respond for a simple query. Returns whether the
/// connection should stay up.
fn run_statement(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    session: &mut Session,
    conn_waits: &mut WaitSet,
    sql: &str,
) -> bool {
    let Some(_permit) = shared.gate.admit_statement() else {
        return send(
            stream,
            FrameKind::Rejected,
            protocol::encode_rejected(true, "admission queue timeout"),
        )
        .is_ok();
    };
    let outcome = session.dispatch(&shared.db, sql);
    conn_waits.merge(&wait::take_thread());
    respond(stream, outcome)
}

fn run_prepared(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    session: &mut Session,
    conn_waits: &mut WaitSet,
    name: &str,
    params: &[Value],
) -> bool {
    let Some(_permit) = shared.gate.admit_statement() else {
        return send(
            stream,
            FrameKind::Rejected,
            protocol::encode_rejected(true, "admission queue timeout"),
        )
        .is_ok();
    };
    let outcome = session.execute_prepared(&shared.db, name, params);
    conn_waits.merge(&wait::take_thread());
    respond(stream, outcome)
}

fn respond(stream: &mut TcpStream, outcome: Result<QueryResult>) -> bool {
    match outcome {
        Ok(r) => send(stream, FrameKind::Result, protocol::encode_result(&r)).is_ok(),
        Err(e) => send_error(stream, &e).is_ok(),
    }
}

fn control_loop(shared: &Arc<Shared>, tick: Duration, tuner_enabled: bool) {
    let knobs = &shared.db.knobs;
    let max = Knobs::spec("admission_max_statements").map_or(4096, |s| s.max);
    let start = knobs.get("admission_max_statements").unwrap_or(64);
    let mut tuner = AdmissionTuner::new(1, max, start);
    let mut prev_waits = wait::global_totals();
    let mut prev_stats = shared.gate.stats();
    loop {
        // ordering: Relaxed — one-way latch, see accept_loop
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(tick);
        // fold knob state into the gate: both DBA SETs and the tuner's
        // own actuation from the previous tick land here
        shared.gate.set_limits(limits_from_knobs(knobs));
        if !tuner_enabled {
            continue;
        }
        let now_waits = wait::global_totals();
        let delta = now_waits.delta_since(&prev_waits);
        prev_waits = now_waits;
        let stats = shared.gate.stats();
        let offered =
            (stats.admitted - prev_stats.admitted) + (stats.rejected - prev_stats.rejected);
        let reject_rate = if offered > 0 {
            (stats.rejected - prev_stats.rejected) as f64 / offered as f64
        } else {
            0.0
        };
        prev_stats = stats;
        let kpi = live_kpi_vector(&shared.db.kpis());
        let shares = WaitShares::from_waits(&delta);
        match tuner.observe(&kpi, &shares, reject_rate) {
            AdmissionAction::Hold => {}
            action => {
                // actuate through the knob system so the change is
                // observable exactly like a DBA's SET
                let _ = knobs.set("admission_max_statements", &Value::Int(tuner.limit()));
                shared.gate.set_limits(limits_from_knobs(knobs));
                match action {
                    AdmissionAction::Shrink => {
                        // ordering: Relaxed — reporting counter only
                        shared.tuner_shrinks.fetch_add(1, Ordering::Relaxed);
                    }
                    AdmissionAction::Grow => {
                        // ordering: Relaxed — reporting counter only
                        shared.tuner_grows.fetch_add(1, Ordering::Relaxed);
                    }
                    AdmissionAction::Hold => {}
                }
            }
        }
    }
}
