//! Heap files: unordered collections of rows on slotted pages.

use parking_lot::Mutex;
use std::sync::Arc;

use aimdb_common::{AimError, Result, Row};

use crate::buffer::BufferPool;
use crate::codec::{decode_row, encode_row};
use crate::page::PageId;

/// Physical address of a row: page + slot. Stable across deletions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    pub page: PageId,
    pub slot: u16,
}

/// A heap file storing rows of one table. Pages are appended as needed;
/// inserts go to the last page with room (first-fit from the tail).
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pages: Mutex<Vec<PageId>>,
}

impl HeapFile {
    pub fn new(pool: Arc<BufferPool>) -> Self {
        HeapFile {
            pool,
            pages: Mutex::new(Vec::new()),
        }
    }

    /// Insert a row, returning its [`RowId`].
    pub fn insert(&self, row: &Row) -> Result<RowId> {
        let bytes = encode_row(row);
        let mut pages = self.pages.lock();
        if let Some(&last) = pages.last() {
            let slot = self.pool.with_page_mut(last, |p| Ok(p.insert(&bytes)))?;
            if let Some(slot) = slot {
                return Ok(RowId { page: last, slot });
            }
        }
        let page = self.pool.allocate()?;
        pages.push(page);
        let slot = self
            .pool
            .with_page_mut(page, |p| Ok(p.insert(&bytes)))?
            .ok_or_else(|| AimError::Storage("row too large for a fresh page".into()))?;
        Ok(RowId { page, slot })
    }

    /// Fetch one row by id; `None` if deleted.
    pub fn get(&self, id: RowId) -> Result<Option<Row>> {
        let page = self.pool.get(id.page)?;
        match page.get(id.slot) {
            Some(bytes) => Ok(Some(decode_row(bytes)?)),
            None => Ok(None),
        }
    }

    /// Delete a row (tombstone).
    pub fn delete(&self, id: RowId) -> Result<()> {
        self.pool.with_page_mut(id.page, |p| p.delete(id.slot))
    }

    /// Replace the row at `id`. The new version may land at a new RowId if
    /// it no longer fits in place; the returned id is authoritative.
    pub fn update(&self, id: RowId, row: &Row) -> Result<RowId> {
        self.delete(id)?;
        self.insert(row)
    }

    /// Materialize all live rows with their ids, in page order.
    pub fn scan(&self) -> Result<Vec<(RowId, Row)>> {
        let pages: Vec<PageId> = self.pages.lock().clone();
        let mut out = Vec::new();
        for pid in pages {
            let page = self.pool.get(pid)?;
            for (slot, bytes) in page.iter() {
                out.push((RowId { page: pid, slot }, decode_row(bytes)?));
            }
        }
        Ok(out)
    }

    /// Number of live rows (scans all pages).
    pub fn len(&self) -> Result<usize> {
        let pages: Vec<PageId> = self.pages.lock().clone();
        let mut n = 0;
        for pid in pages {
            n += self.pool.get(pid)?.live_count();
        }
        Ok(n)
    }

    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    pub fn num_pages(&self) -> usize {
        self.pages.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use aimdb_common::Value;

    fn heap() -> HeapFile {
        let disk = Arc::new(Disk::new());
        let pool = Arc::new(BufferPool::new(disk, 16));
        HeapFile::new(pool)
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::Text(format!("row-{i}"))])
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let id = h.insert(&row(1)).unwrap();
        assert_eq!(h.get(id).unwrap().unwrap(), row(1));
    }

    #[test]
    fn scan_returns_all_in_order() {
        let h = heap();
        for i in 0..500 {
            h.insert(&row(i)).unwrap();
        }
        let rows = h.scan().unwrap();
        assert_eq!(rows.len(), 500);
        assert!(h.num_pages() > 1, "should have spilled to multiple pages");
        assert_eq!(rows[0].1, row(0));
        assert_eq!(rows[499].1, row(499));
    }

    #[test]
    fn delete_hides_row() {
        let h = heap();
        let a = h.insert(&row(1)).unwrap();
        let b = h.insert(&row(2)).unwrap();
        h.delete(a).unwrap();
        assert!(h.get(a).unwrap().is_none());
        assert_eq!(h.get(b).unwrap().unwrap(), row(2));
        assert_eq!(h.len().unwrap(), 1);
    }

    #[test]
    fn update_moves_row() {
        let h = heap();
        let a = h.insert(&row(1)).unwrap();
        let a2 = h.update(a, &row(99)).unwrap();
        assert!(h.get(a).unwrap().is_none());
        assert_eq!(h.get(a2).unwrap().unwrap(), row(99));
    }

    #[test]
    fn empty_heap() {
        let h = heap();
        assert!(h.is_empty().unwrap());
        assert_eq!(h.scan().unwrap().len(), 0);
    }
}
