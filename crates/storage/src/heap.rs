//! Heap files: unordered collections of rows on slotted pages.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use aimdb_common::{AimError, ColVec, LockRank, Result, Row};

use crate::buffer::BufferPool;
use crate::codec::{decode_row, decode_row_into, encode_row};
use crate::page::PageId;

/// Physical address of a row: page + slot. Stable across deletions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId {
    pub page: PageId,
    pub slot: u16,
}

/// A heap file storing rows of one table. Pages are appended as needed;
/// inserts go to the last page with room (first-fit from the tail).
pub struct HeapFile {
    pool: Arc<BufferPool>,
    pages: Mutex<Vec<PageId>>,
}

impl HeapFile {
    pub fn new(pool: Arc<BufferPool>) -> Self {
        HeapFile {
            pool,
            pages: Mutex::with_rank(Vec::new(), LockRank::HeapPages),
        }
    }

    /// Insert a row, returning its [`RowId`].
    pub fn insert(&self, row: &Row) -> Result<RowId> {
        let bytes = encode_row(row);
        let mut pages = self.pages.lock();
        if let Some(&last) = pages.last() {
            let slot = self.pool.with_page_mut(last, |p| Ok(p.insert(&bytes)))?;
            if let Some(slot) = slot {
                return Ok(RowId { page: last, slot });
            }
        }
        let page = self.pool.allocate()?;
        pages.push(page);
        let slot = self
            .pool
            .with_page_mut(page, |p| Ok(p.insert(&bytes)))?
            .ok_or_else(|| AimError::Storage("row too large for a fresh page".into()))?;
        Ok(RowId { page, slot })
    }

    /// Fetch one row by id; `None` if deleted.
    pub fn get(&self, id: RowId) -> Result<Option<Row>> {
        let page = self.pool.get(id.page)?;
        match page.get(id.slot) {
            Some(bytes) => Ok(Some(decode_row(bytes)?)),
            None => Ok(None),
        }
    }

    /// Delete a row (tombstone).
    pub fn delete(&self, id: RowId) -> Result<()> {
        self.pool.with_page_mut(id.page, |p| p.delete(id.slot))
    }

    /// Replace the row at `id`. The new version may land at a new RowId if
    /// it no longer fits in place; the returned id is authoritative.
    pub fn update(&self, id: RowId, row: &Row) -> Result<RowId> {
        self.delete(id)?;
        self.insert(row)
    }

    /// Materialize all live rows with their ids, in page order.
    pub fn scan(&self) -> Result<Vec<(RowId, Row)>> {
        let pages: Vec<PageId> = self.pages.lock().clone();
        let mut out = Vec::new();
        for pid in pages {
            let page = self.pool.get(pid)?;
            for (slot, bytes) in page.iter() {
                out.push((RowId { page: pid, slot }, decode_row(bytes)?));
            }
        }
        Ok(out)
    }

    /// Number of live rows (scans all pages).
    pub fn len(&self) -> Result<usize> {
        let pages: Vec<PageId> = self.pages.lock().clone();
        let mut n = 0;
        for pid in pages {
            n += self.pool.get(pid)?.live_count();
        }
        Ok(n)
    }

    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    pub fn num_pages(&self) -> usize {
        self.pages.lock().len()
    }

    /// Insertion high-water mark: the last page and its slot count,
    /// captured atomically against concurrent inserts (which hold the
    /// same page-list lock while appending). Because page ids are
    /// allocated monotonically and slot ids are never reused, a row is
    /// at or beyond the mark **iff** it was inserted after this call —
    /// MVCC scans use that to exclude rows born mid-scan.
    pub fn watermark(&self) -> Result<Option<(PageId, u16)>> {
        let pages = self.pages.lock();
        match pages.last() {
            None => Ok(None),
            Some(&last) => {
                let n = self.pool.get(last)?.slot_count();
                Ok(Some((last, n)))
            }
        }
    }

    /// Open a streaming cursor over the heap for batched scans. The
    /// cursor snapshots the page list at open time; rows inserted after
    /// that may or may not be observed (same guarantee as [`scan`]).
    ///
    /// [`scan`]: HeapFile::scan
    pub fn scan_cursor(&self) -> HeapScanCursor {
        HeapScanCursor {
            pool: Arc::clone(&self.pool),
            pages: self.pages.lock().clone(),
            pos: 0,
        }
    }

    /// Snapshot the heap for concurrent morsel-driven scans: the page
    /// list is captured once, and every cursor handed out by the
    /// returned source reads that same snapshot, so parallel workers
    /// observe exactly the rows a serial [`scan_cursor`] at the same
    /// instant would (the buffer pool itself is safe for concurrent
    /// readers).
    ///
    /// [`scan_cursor`]: HeapFile::scan_cursor
    pub fn morsel_source(&self) -> MorselSource {
        MorselSource {
            pool: Arc::clone(&self.pool),
            pages: Arc::new(self.pages.lock().clone()),
        }
    }
}

/// A sharable snapshot of a heap file's page list, from which workers
/// open cursors over page sub-ranges (morsels). `Send + Sync`: clone it
/// (cheap — two `Arc`s) or reference it from scoped worker threads.
#[derive(Clone)]
pub struct MorselSource {
    pool: Arc<BufferPool>,
    pages: Arc<Vec<PageId>>,
}

impl MorselSource {
    /// Pages in the snapshot.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// A cursor over the page-index range `[start, end)` of the
    /// snapshot (clamped to the snapshot length).
    pub fn cursor(&self, start: usize, end: usize) -> HeapScanCursor {
        let end = end.min(self.pages.len());
        let start = start.min(end);
        HeapScanCursor {
            pool: Arc::clone(&self.pool),
            pages: self.pages[start..end].to_vec(),
            pos: 0,
        }
    }

    /// A dispenser that partitions this snapshot into `morsel_pages`-page
    /// morsels.
    pub fn dispenser(&self, morsel_pages: usize) -> MorselDispenser {
        MorselDispenser::new(self.pages.len(), morsel_pages)
    }
}

/// A claimed unit of scan work: the half-open page-index range
/// `[start, end)` plus the morsel's sequence number. Merging worker
/// outputs in `index` order reproduces the serial scan's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// Sequence number: morsel `i` covers pages `[i*size, (i+1)*size)`.
    pub index: usize,
    pub start: usize,
    pub end: usize,
}

/// Shared atomic work dispenser: partitions `page_count` pages into
/// fixed-size morsels that worker threads [`claim`] lock-free until the
/// range is exhausted. Every page lands in exactly one morsel, in order,
/// with no overlap — the property test in `tests/proptests.rs` pins this
/// for arbitrary `(page_count, morsel_pages)` including empty heaps.
///
/// [`claim`]: MorselDispenser::claim
pub struct MorselDispenser {
    page_count: usize,
    morsel_pages: usize,
    next: AtomicUsize,
}

impl MorselDispenser {
    /// `morsel_pages` is clamped to at least 1.
    pub fn new(page_count: usize, morsel_pages: usize) -> Self {
        MorselDispenser {
            page_count,
            morsel_pages: morsel_pages.max(1),
            next: AtomicUsize::new(0),
        }
    }

    /// Claim the next unclaimed morsel; `None` once all pages are
    /// handed out. Safe to call from any number of threads.
    pub fn claim(&self) -> Option<Morsel> {
        loop {
            // ordering: Relaxed — the counter only partitions indices; the
            // page data a claim grants access to is read through the
            // buffer pool's lock, which provides the synchronization.
            let start = self.next.load(Ordering::Relaxed);
            if start >= self.page_count {
                return None;
            }
            let end = (start + self.morsel_pages).min(self.page_count);
            // ordering: Relaxed on success and failure — same reasoning;
            // the CAS itself is atomic, and no payload is published.
            if self
                .next
                .compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return Some(Morsel {
                    index: start / self.morsel_pages,
                    start,
                    end,
                });
            }
        }
    }

    /// Total morsels this dispenser will hand out.
    pub fn morsel_count(&self) -> usize {
        self.page_count.div_ceil(self.morsel_pages)
    }
}

/// Streaming heap-scan cursor: decodes whole pages at a time into the
/// caller's buffer so the vectorized executor can fill column batches
/// without per-row dispatch.
pub struct HeapScanCursor {
    pool: Arc<BufferPool>,
    pages: Vec<PageId>,
    pos: usize,
}

impl HeapScanCursor {
    /// Decode live rows into `out` until at least `min_rows` have been
    /// appended or the heap is exhausted. Pages are always decoded
    /// whole, so the call may overshoot `min_rows` by up to one page's
    /// worth of rows. Returns `false` once the cursor is exhausted.
    pub fn fill(&mut self, min_rows: usize, out: &mut Vec<(RowId, Row)>) -> Result<bool> {
        let start = out.len();
        while self.pos < self.pages.len() {
            if out.len() - start >= min_rows {
                return Ok(true);
            }
            let pid = self.pages[self.pos];
            self.pos += 1;
            let page = self.pool.get(pid)?;
            for (slot, bytes) in page.iter() {
                out.push((RowId { page: pid, slot }, decode_row(bytes)?));
            }
        }
        Ok(false)
    }

    /// Like [`fill`], but decode straight into column builders — no
    /// per-row [`Row`] allocation. Appends at least `min_rows` rows to
    /// every column in `cols` (whole pages at a time, so it may
    /// overshoot) and returns `(rows_appended, more)` where `more` is
    /// `false` once the cursor is exhausted.
    ///
    /// [`fill`]: HeapScanCursor::fill
    pub fn fill_batch(&mut self, min_rows: usize, cols: &mut [ColVec]) -> Result<(usize, bool)> {
        self.fill_batch_vis(min_rows, cols, None)
    }

    /// [`fill_batch`] with an optional row-visibility filter: slots whose
    /// [`RowId`] the filter rejects are skipped without being decoded.
    /// MVCC snapshot scans pass the snapshot's visibility predicate here;
    /// `None` decodes every live slot (physical scan).
    ///
    /// [`fill_batch`]: HeapScanCursor::fill_batch
    pub fn fill_batch_vis(
        &mut self,
        min_rows: usize,
        cols: &mut [ColVec],
        vis: Option<&(dyn Fn(RowId) -> bool + Sync)>,
    ) -> Result<(usize, bool)> {
        let mut appended = 0usize;
        while self.pos < self.pages.len() {
            if appended >= min_rows {
                return Ok((appended, true));
            }
            let pid = self.pages[self.pos];
            self.pos += 1;
            let page = self.pool.get(pid)?;
            for (slot, bytes) in page.iter() {
                if let Some(f) = vis {
                    if !f(RowId { page: pid, slot }) {
                        continue;
                    }
                }
                decode_row_into(bytes, cols)?;
                appended += 1;
            }
        }
        Ok((appended, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;
    use aimdb_common::Value;

    fn heap() -> HeapFile {
        let disk = Arc::new(Disk::new());
        let pool = Arc::new(BufferPool::new(disk, 16));
        HeapFile::new(pool)
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::Text(format!("row-{i}"))])
    }

    #[test]
    fn insert_get_roundtrip() {
        let h = heap();
        let id = h.insert(&row(1)).unwrap();
        assert_eq!(h.get(id).unwrap().unwrap(), row(1));
    }

    #[test]
    fn scan_returns_all_in_order() {
        let h = heap();
        for i in 0..500 {
            h.insert(&row(i)).unwrap();
        }
        let rows = h.scan().unwrap();
        assert_eq!(rows.len(), 500);
        assert!(h.num_pages() > 1, "should have spilled to multiple pages");
        assert_eq!(rows[0].1, row(0));
        assert_eq!(rows[499].1, row(499));
    }

    #[test]
    fn delete_hides_row() {
        let h = heap();
        let a = h.insert(&row(1)).unwrap();
        let b = h.insert(&row(2)).unwrap();
        h.delete(a).unwrap();
        assert!(h.get(a).unwrap().is_none());
        assert_eq!(h.get(b).unwrap().unwrap(), row(2));
        assert_eq!(h.len().unwrap(), 1);
    }

    #[test]
    fn update_moves_row() {
        let h = heap();
        let a = h.insert(&row(1)).unwrap();
        let a2 = h.update(a, &row(99)).unwrap();
        assert!(h.get(a).unwrap().is_none());
        assert_eq!(h.get(a2).unwrap().unwrap(), row(99));
    }

    #[test]
    fn scan_cursor_matches_scan() {
        let h = heap();
        for i in 0..500 {
            h.insert(&row(i)).unwrap();
        }
        h.delete(RowId {
            page: h.scan().unwrap()[3].0.page,
            slot: h.scan().unwrap()[3].0.slot,
        })
        .unwrap();
        let want = h.scan().unwrap();
        let mut cur = h.scan_cursor();
        let mut got = Vec::new();
        loop {
            let before = got.len();
            let more = cur.fill(64, &mut got).unwrap();
            if !more && got.len() == before {
                break;
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn fill_batch_matches_scan() {
        use aimdb_common::DataType;
        let h = heap();
        for i in 0..500 {
            h.insert(&row(i)).unwrap();
        }
        let ids: Vec<RowId> = h.scan().unwrap().iter().map(|(id, _)| *id).collect();
        h.delete(ids[3]).unwrap();
        h.delete(ids[499]).unwrap();
        let want = h.scan().unwrap();
        let mut cur = h.scan_cursor();
        let mut cols = vec![
            ColVec::with_capacity(DataType::Int, 64),
            ColVec::with_capacity(DataType::Text, 64),
        ];
        let mut total = 0;
        loop {
            let (n, more) = cur.fill_batch(64, &mut cols).unwrap();
            total += n;
            if !more {
                break;
            }
        }
        assert_eq!(total, want.len());
        for (i, (_, r)) in want.iter().enumerate() {
            assert_eq!(&cols[0].value(i), r.get(0));
            assert_eq!(&cols[1].value(i), r.get(1));
        }
    }

    #[test]
    fn fill_batch_vis_skips_filtered_rows() {
        use aimdb_common::DataType;
        let h = heap();
        for i in 0..200 {
            h.insert(&row(i)).unwrap();
        }
        let ids: Vec<RowId> = h.scan().unwrap().iter().map(|(id, _)| *id).collect();
        let hidden: std::collections::HashSet<RowId> = ids.iter().copied().step_by(3).collect();
        let mut cur = h.scan_cursor();
        let mut cols = vec![
            ColVec::with_capacity(DataType::Int, 64),
            ColVec::with_capacity(DataType::Text, 64),
        ];
        let vis = |rid: RowId| !hidden.contains(&rid);
        let mut total = 0;
        loop {
            let (n, more) = cur.fill_batch_vis(64, &mut cols, Some(&vis)).unwrap();
            total += n;
            if !more {
                break;
            }
        }
        assert_eq!(total, 200 - hidden.len());
        for i in 0..total {
            match cols[0].value(i) {
                Value::Int(v) => assert!(v % 3 != 0, "hidden row {v} leaked"),
                other => panic!("unexpected value {other:?}"),
            }
        }
    }

    #[test]
    fn fill_batch_on_empty_heap() {
        use aimdb_common::DataType;
        let h = heap();
        let mut cur = h.scan_cursor();
        let mut cols = vec![ColVec::with_capacity(DataType::Int, 8)];
        assert_eq!(cur.fill_batch(8, &mut cols).unwrap(), (0, false));
        assert!(cols[0].is_empty());
    }

    #[test]
    fn scan_cursor_on_empty_heap() {
        let h = heap();
        let mut cur = h.scan_cursor();
        let mut got = Vec::new();
        assert!(!cur.fill(16, &mut got).unwrap());
        assert!(got.is_empty());
    }

    #[test]
    fn empty_heap() {
        let h = heap();
        assert!(h.is_empty().unwrap());
        assert_eq!(h.scan().unwrap().len(), 0);
    }

    #[test]
    fn dispenser_partitions_exactly() {
        let d = MorselDispenser::new(10, 3);
        assert_eq!(d.morsel_count(), 4);
        let got: Vec<Morsel> = std::iter::from_fn(|| d.claim()).collect();
        assert_eq!(got.len(), 4);
        assert_eq!(
            got[0],
            Morsel {
                index: 0,
                start: 0,
                end: 3
            }
        );
        assert_eq!(
            got[3],
            Morsel {
                index: 3,
                start: 9,
                end: 10
            }
        );
        assert!(d.claim().is_none());
    }

    #[test]
    fn dispenser_empty_and_zero_size() {
        let d = MorselDispenser::new(0, 4);
        assert_eq!(d.morsel_count(), 0);
        assert!(d.claim().is_none());
        // morsel size clamps to 1
        let d = MorselDispenser::new(2, 0);
        assert_eq!(d.morsel_count(), 2);
        assert_eq!(
            d.claim().unwrap(),
            Morsel {
                index: 0,
                start: 0,
                end: 1
            }
        );
    }

    #[test]
    fn dispenser_threaded_claims_cover_all_pages_once() {
        use std::sync::Mutex as StdMutex;
        let d = MorselDispenser::new(97, 3);
        let claimed: StdMutex<Vec<Morsel>> = StdMutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    while let Some(m) = d.claim() {
                        claimed.lock().unwrap().push(m);
                    }
                });
            }
        });
        let mut got = claimed.into_inner().unwrap();
        got.sort_by_key(|m| m.start);
        let mut covered = vec![false; 97];
        for m in &got {
            for (p, c) in covered.iter_mut().enumerate().take(m.end).skip(m.start) {
                assert!(!*c, "page {p} claimed twice");
                *c = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
        // indices are dense and order-preserving under the start sort
        for (i, m) in got.iter().enumerate() {
            assert_eq!(m.index, i);
        }
    }

    #[test]
    fn morsel_source_cursors_match_serial_scan() {
        use aimdb_common::DataType;
        let h = heap();
        for i in 0..700 {
            h.insert(&row(i)).unwrap();
        }
        let want = h.scan().unwrap();
        let src = h.morsel_source();
        assert_eq!(src.page_count(), h.num_pages());
        let d = src.dispenser(2);
        // claim all morsels, scan each, then merge in morsel order
        let mut pieces: Vec<(usize, Vec<(i64, String)>)> = Vec::new();
        while let Some(m) = d.claim() {
            let mut cur = src.cursor(m.start, m.end);
            let mut cols = vec![
                ColVec::with_capacity(DataType::Int, 64),
                ColVec::with_capacity(DataType::Text, 64),
            ];
            let mut n = 0;
            loop {
                let (k, more) = cur.fill_batch(64, &mut cols).unwrap();
                n += k;
                if !more {
                    break;
                }
            }
            let vals = (0..n)
                .map(|i| match (cols[0].value(i), cols[1].value(i)) {
                    (Value::Int(a), Value::Text(b)) => (a, b),
                    other => panic!("unexpected values {other:?}"),
                })
                .collect();
            pieces.push((m.index, vals));
        }
        pieces.sort_by_key(|(i, _)| *i);
        let merged: Vec<(i64, String)> = pieces.into_iter().flat_map(|(_, v)| v).collect();
        let want: Vec<(i64, String)> = want
            .into_iter()
            .map(|(_, r)| match (r.get(0), r.get(1)) {
                (Value::Int(a), Value::Text(b)) => (*a, b.clone()),
                other => panic!("unexpected row {other:?}"),
            })
            .collect();
        assert_eq!(merged, want);
    }
}
