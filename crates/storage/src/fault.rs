//! Storage fault injection for the crash-recovery harness.
//!
//! [`FaultInjector`] wraps a real [`Disk`] behind the [`PageStore`]
//! boundary and misbehaves on cue: it can kill the store after a chosen
//! number of mutating operations (simulating a process crash), tear the
//! WAL write that was in flight at the crash, or fail individual
//! operations with transient I/O errors.
//!
//! Semantics of a crash: the triggering operation and everything after it
//! return `Err`, and nothing from the triggering operation onward reaches
//! the underlying disk — except a torn WAL append, which may persist a
//! corrupt prefix of its payload (that is the point: recovery must detect
//! it via CRC). Recovery bypasses the injector entirely by reopening the
//! [`Disk`] returned from [`FaultInjector::underlying`], the way a restart
//! reopens the real device after the faulty process is gone.

use std::sync::Arc;

use parking_lot::Mutex;

use aimdb_common::{AimError, LockRank, Result};

use crate::disk::{Disk, DiskStats, PageStore};
use crate::page::{Page, PageId};

/// What happens to the WAL append that is in flight when the crash fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TornMode {
    /// The append vanishes entirely (kernel never saw the write).
    #[default]
    DropAll,
    /// A prefix (about two thirds) of the payload reaches the disk —
    /// a torn multi-sector write.
    Prefix,
    /// The whole payload lands but its last byte is flipped — bit rot
    /// or a misdirected sector tail.
    CorruptLast,
}

/// A scripted failure. Operation numbers are 1-based and count mutating
/// calls only (`allocate`, `write`, `wal_append`).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash on the Nth mutating operation (that operation fails and the
    /// store is dead from then on).
    pub crash_after_ops: Option<u64>,
    /// How the in-flight WAL append is mangled if the crashing operation
    /// is a `wal_append`.
    pub torn_tail: TornMode,
    /// Mutating operations that fail once with a transient I/O error but
    /// leave the store alive.
    pub io_error_at: Vec<u64>,
}

impl FaultPlan {
    pub fn crash_after(n: u64) -> Self {
        FaultPlan {
            crash_after_ops: Some(n),
            ..FaultPlan::default()
        }
    }

    pub fn with_torn_tail(mut self, mode: TornMode) -> Self {
        self.torn_tail = mode;
        self
    }

    pub fn with_io_error_at(mut self, ops: Vec<u64>) -> Self {
        self.io_error_at = ops;
        self
    }
}

struct InjectorState {
    plan: FaultPlan,
    ops: u64,
    crashed: bool,
}

/// A [`PageStore`] that injects faults per a [`FaultPlan`], forwarding
/// healthy operations to a wrapped [`Disk`].
pub struct FaultInjector {
    disk: Arc<Disk>,
    state: Mutex<InjectorState>,
    /// Invoked exactly once, when the scripted crash first fires — after
    /// the state lock is released, so the hook may take higher-ranked
    /// locks (e.g. dump a flight recorder). The caller's storage locks
    /// (WalSink, BufferPool, ...) may still be held.
    crash_hook: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

enum Verdict {
    Proceed,
    Transient,
    Crash,
}

impl FaultInjector {
    pub fn new(disk: Arc<Disk>, plan: FaultPlan) -> Self {
        FaultInjector {
            disk,
            state: Mutex::with_rank(
                InjectorState {
                    plan,
                    ops: 0,
                    crashed: false,
                },
                LockRank::FaultInjector,
            ),
            crash_hook: Mutex::with_rank(None, LockRank::FaultHook),
        }
    }

    /// Install a callback fired once when the scripted crash triggers —
    /// the crash-dump hook. Harnesses use it to snapshot a flight
    /// recorder at the exact moment of the simulated failure.
    pub fn set_crash_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.crash_hook.lock() = Some(Arc::new(hook));
    }

    /// The wrapped disk — what survives the crash. Recovery reopens this
    /// directly, without the injector in the path.
    pub fn underlying(&self) -> Arc<Disk> {
        Arc::clone(&self.disk)
    }

    /// Whether the scripted crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Mutating operations observed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Re-script the injector with a new plan whose operation numbers are
    /// relative to *now*: `crash_after_ops = Some(n)` crashes on the nth
    /// mutating operation counted from this call, not from construction.
    /// Lets a harness run a fault-free phase (bulk load, recovery through
    /// the injector) and only then arm the crash for the measured phase.
    /// Arming does not resurrect a store that has already crashed.
    pub fn arm(&self, plan: FaultPlan) {
        let mut st = self.state.lock();
        let base = st.ops;
        st.plan = FaultPlan {
            crash_after_ops: plan.crash_after_ops.map(|n| base + n),
            torn_tail: plan.torn_tail,
            io_error_at: plan.io_error_at.iter().map(|n| base + n).collect(),
        };
    }

    /// Count a mutating operation and decide its fate. Fires the crash
    /// hook (once, outside the state lock) when the scripted crash
    /// triggers.
    fn mutating_op(&self) -> (Verdict, TornMode) {
        let (verdict, torn, first_crash) = {
            let mut st = self.state.lock();
            if st.crashed {
                (Verdict::Crash, st.plan.torn_tail, false)
            } else {
                st.ops += 1;
                let ops = st.ops;
                if st.plan.crash_after_ops == Some(ops) {
                    st.crashed = true;
                    (Verdict::Crash, st.plan.torn_tail, true)
                } else if st.plan.io_error_at.contains(&ops) {
                    (Verdict::Transient, st.plan.torn_tail, false)
                } else {
                    (Verdict::Proceed, st.plan.torn_tail, false)
                }
            }
        };
        if first_crash {
            let hook = self.crash_hook.lock().clone();
            if let Some(h) = hook {
                h();
            }
        }
        (verdict, torn)
    }

    fn check_alive(&self) -> Result<()> {
        if self.state.lock().crashed {
            Err(AimError::Storage("storage crashed (injected)".into()))
        } else {
            Ok(())
        }
    }
}

impl PageStore for FaultInjector {
    fn allocate(&self) -> Result<PageId> {
        match self.mutating_op().0 {
            Verdict::Proceed => self.disk.allocate(),
            Verdict::Transient => Err(AimError::Storage("transient I/O error (injected)".into())),
            Verdict::Crash => Err(AimError::Storage("storage crashed (injected)".into())),
        }
    }

    fn read(&self, id: PageId) -> Result<Page> {
        self.check_alive()?;
        self.disk.read(id)
    }

    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        match self.mutating_op().0 {
            Verdict::Proceed => self.disk.write(id, page),
            Verdict::Transient => Err(AimError::Storage("transient I/O error (injected)".into())),
            Verdict::Crash => Err(AimError::Storage("storage crashed (injected)".into())),
        }
    }

    fn num_pages(&self) -> usize {
        self.disk.num_pages()
    }

    fn stats(&self) -> DiskStats {
        self.disk.stats()
    }

    fn reset_stats(&self) {
        self.disk.reset_stats()
    }

    fn wal_append(&self, bytes: &[u8]) -> Result<()> {
        let (verdict, torn) = self.mutating_op();
        match verdict {
            Verdict::Proceed => self.disk.wal_append(bytes),
            Verdict::Transient => Err(AimError::Storage("transient I/O error (injected)".into())),
            Verdict::Crash => {
                // The write was in flight: persist whatever the torn mode
                // dictates, then report failure. Recovery's CRC check must
                // reject the damaged tail.
                match torn {
                    TornMode::DropAll => {}
                    TornMode::Prefix => {
                        let keep = bytes.len() * 2 / 3;
                        if keep > 0 {
                            self.disk.wal_append(&bytes[..keep])?;
                        }
                    }
                    TornMode::CorruptLast => {
                        if !bytes.is_empty() {
                            let mut mangled = bytes.to_vec();
                            let last = mangled.len() - 1;
                            mangled[last] ^= 0xFF;
                            self.disk.wal_append(&mangled)?;
                        }
                    }
                }
                Err(AimError::Storage("storage crashed (injected)".into()))
            }
        }
    }

    fn wal_bytes(&self) -> Result<Vec<u8>> {
        self.check_alive()?;
        self.disk.wal_bytes()
    }

    fn wal_len(&self) -> usize {
        self.disk.wal_len()
    }

    fn wal_truncate(&self, len: usize) -> Result<()> {
        self.check_alive()?;
        self.disk.wal_truncate(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_kills_the_store_permanently() {
        let inj = FaultInjector::new(Arc::new(Disk::new()), FaultPlan::crash_after(2));
        let id = inj.allocate().unwrap(); // op 1
        assert!(inj.write(id, &Page::new()).is_err()); // op 2: crash
        assert!(inj.crashed());
        assert!(inj.allocate().is_err());
        assert!(inj.read(id).is_err());
        assert!(inj.wal_append(b"x").is_err());
        // the triggering write never reached the disk
        assert_eq!(inj.underlying().stats().writes, 0);
    }

    #[test]
    fn transient_error_leaves_store_alive() {
        let inj = FaultInjector::new(
            Arc::new(Disk::new()),
            FaultPlan::default().with_io_error_at(vec![2]),
        );
        let id = inj.allocate().unwrap(); // op 1
        assert!(inj.write(id, &Page::new()).is_err()); // op 2: transient
        assert!(!inj.crashed());
        inj.write(id, &Page::new()).unwrap(); // op 3: healthy again
    }

    #[test]
    fn torn_prefix_persists_partial_wal_write() {
        let inj = FaultInjector::new(
            Arc::new(Disk::new()),
            FaultPlan::crash_after(1).with_torn_tail(TornMode::Prefix),
        );
        let payload = vec![7u8; 30];
        assert!(inj.wal_append(&payload).is_err());
        let disk = inj.underlying();
        assert_eq!(disk.wal_len(), 20, "two thirds of the payload landed");
        assert_eq!(disk.wal_bytes().unwrap(), vec![7u8; 20]);
    }

    #[test]
    fn corrupt_last_flips_final_byte() {
        let inj = FaultInjector::new(
            Arc::new(Disk::new()),
            FaultPlan::crash_after(1).with_torn_tail(TornMode::CorruptLast),
        );
        assert!(inj.wal_append(&[1, 2, 3]).is_err());
        assert_eq!(inj.underlying().wal_bytes().unwrap(), vec![1, 2, 3 ^ 0xFF]);
    }

    #[test]
    fn arm_rebases_operation_numbers_to_now() {
        let inj = FaultInjector::new(Arc::new(Disk::new()), FaultPlan::default());
        let id = inj.allocate().unwrap(); // op 1
        inj.write(id, &Page::new()).unwrap(); // op 2
        inj.write(id, &Page::new()).unwrap(); // op 3
                                              // crash on the 2nd op counted from NOW, i.e. absolute op 5
        inj.arm(FaultPlan::crash_after(2));
        inj.write(id, &Page::new()).unwrap(); // op 4
        assert!(inj.write(id, &Page::new()).is_err()); // op 5: crash
        assert!(inj.crashed());
        assert_eq!(inj.ops(), 5);
    }

    #[test]
    fn arm_does_not_resurrect_a_crashed_store() {
        let inj = FaultInjector::new(Arc::new(Disk::new()), FaultPlan::crash_after(1));
        assert!(inj.allocate().is_err());
        assert!(inj.crashed());
        inj.arm(FaultPlan::default());
        assert!(inj.allocate().is_err(), "still dead after re-arming");
    }

    #[test]
    fn crash_hook_fires_exactly_once_at_first_crash() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let inj = FaultInjector::new(Arc::new(Disk::new()), FaultPlan::crash_after(2));
        let fired = Arc::new(AtomicU64::new(0));
        let fired2 = Arc::clone(&fired);
        inj.set_crash_hook(move || {
            // ordering: Relaxed — test counter, joined before the assert.
            fired2.fetch_add(1, Ordering::Relaxed);
        });
        let id = inj.allocate().unwrap(); // op 1: healthy, no hook
                                          // ordering: Relaxed — test counter.
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        assert!(inj.write(id, &Page::new()).is_err()); // op 2: crash
                                                       // ordering: Relaxed — test counter.
        assert_eq!(fired.load(Ordering::Relaxed), 1, "hook fired at crash");
        assert!(inj.wal_append(b"x").is_err()); // already dead: no re-fire
                                                // ordering: Relaxed — test counter.
        assert_eq!(fired.load(Ordering::Relaxed), 1, "hook fires only once");
    }

    #[test]
    fn drop_all_persists_nothing() {
        let inj = FaultInjector::new(Arc::new(Disk::new()), FaultPlan::crash_after(1));
        assert!(inj.wal_append(&[1, 2, 3]).is_err());
        assert_eq!(inj.underlying().wal_len(), 0);
    }
}
