//! Durable write-ahead log with LSNs, CRC-checked framing, and a
//! pluggable sink.
//!
//! Every record is serialized as `[len:u32][crc:u32][lsn:u64][payload]`
//! (little-endian), where the CRC-32 covers the LSN and the payload. The
//! framing makes torn tails detectable at recovery: parsing stops at the
//! first record whose length runs past the stream or whose checksum fails,
//! and everything before it is trusted.
//!
//! Records flow through a [`WalSink`]. [`MemSink`] is instantly durable
//! (the pre-durability behavior, used by unit tests); [`DiskSink`] buffers
//! appends and pushes them to a [`PageStore`]'s log area on [`Wal::flush`]
//! — the fsync barrier. Unflushed bytes are what a crash loses. Commit
//! records trigger a flush when `sync_on_commit` is set (the `wal_sync`
//! knob); checkpoint and DDL records always flush.
//!
//! An in-memory mirror of appended records serves live rollback
//! (`undo_chain`) exactly as before; recovery instead re-parses the
//! durable byte stream.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use aimdb_common::{wait, LockRank};
use bytes::{Buf, BufMut};
use parking_lot::{Condvar, Mutex};

use aimdb_common::{AimError, Result, Row, Schema};

use crate::codec::{decode_row, encode_row};
use crate::disk::PageStore;
use crate::heap::RowId;
use crate::page::PageId;

/// Transaction identifier. Id 0 is reserved for non-transactional records
/// (DDL, checkpoints), which recovery treats as always committed.
pub type TxnId = u64;

/// Logical snapshot of one table inside a checkpoint record.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSnapshot {
    pub name: String,
    pub schema: Schema,
    pub rows: Vec<Row>,
}

/// Logical description of one secondary index inside a checkpoint record.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSnapshot {
    pub name: String,
    pub table: String,
    pub column: String,
}

/// A quiescent checkpoint: the full logical database state at a moment
/// when no transaction was open. Recovery restores the latest intact
/// checkpoint and replays only the records after it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckpointData {
    /// First transaction id safe to hand out after recovery.
    pub next_txn: TxnId,
    pub tables: Vec<TableSnapshot>,
    pub indexes: Vec<IndexSnapshot>,
}

/// One log record. Data records carry full images: before-images drive
/// undo, after-images drive redo (redo is value-based because row ids are
/// reassigned when tables are rebuilt at recovery).
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    Begin {
        txn: TxnId,
    },
    Insert {
        txn: TxnId,
        table: String,
        rid: RowId,
        row: Row,
    },
    Delete {
        txn: TxnId,
        table: String,
        rid: RowId,
        before: Row,
    },
    Update {
        txn: TxnId,
        table: String,
        old_rid: RowId,
        new_rid: RowId,
        before: Row,
        after: Row,
    },
    Commit {
        txn: TxnId,
    },
    Abort {
        txn: TxnId,
    },
    CreateTable {
        name: String,
        schema: Schema,
    },
    DropTable {
        name: String,
    },
    CreateIndex {
        name: String,
        table: String,
        column: String,
    },
    DropIndex {
        name: String,
    },
    Checkpoint(Box<CheckpointData>),
}

impl LogRecord {
    /// The owning transaction; 0 for non-transactional records.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
            _ => 0,
        }
    }

    /// Whether this record must reach durable storage as soon as it is
    /// appended regardless of the `wal_sync` setting (DDL, checkpoints).
    fn always_flush(&self) -> bool {
        matches!(
            self,
            LogRecord::CreateTable { .. }
                | LogRecord::DropTable { .. }
                | LogRecord::CreateIndex { .. }
                | LogRecord::DropIndex { .. }
                | LogRecord::Checkpoint(_)
        )
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — bitwise, no lookup table.

/// CRC-32 checksum over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Record payload codec.

const KIND_BEGIN: u8 = 0;
const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;
const KIND_UPDATE: u8 = 3;
const KIND_COMMIT: u8 = 4;
const KIND_ABORT: u8 = 5;
const KIND_CREATE_TABLE: u8 = 6;
const KIND_DROP_TABLE: u8 = 7;
const KIND_CREATE_INDEX: u8 = 8;
const KIND_DROP_INDEX: u8 = 9;
const KIND_CHECKPOINT: u8 = 10;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let n = get_u32(buf)? as usize;
    if buf.remaining() < n {
        return Err(AimError::Storage("wal: truncated string".into()));
    }
    let s = String::from_utf8(buf[..n].to_vec())
        .map_err(|_| AimError::Storage("wal: invalid utf-8".into()))?;
    buf.advance(n);
    Ok(s)
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(AimError::Storage("wal: truncated u32".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(AimError::Storage("wal: truncated u64".into()));
    }
    Ok(buf.get_u64_le())
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(AimError::Storage("wal: truncated byte".into()));
    }
    Ok(buf.get_u8())
}

fn put_rid(out: &mut Vec<u8>, rid: RowId) {
    out.put_u64_le(rid.page.0);
    out.put_u32_le(rid.slot as u32);
}

fn get_rid(buf: &mut &[u8]) -> Result<RowId> {
    let page = PageId(get_u64(buf)?);
    let slot = get_u32(buf)? as u16;
    Ok(RowId { page, slot })
}

fn put_row(out: &mut Vec<u8>, row: &Row) {
    let bytes = encode_row(row);
    out.put_u32_le(bytes.len() as u32);
    out.put_slice(&bytes);
}

fn get_row(buf: &mut &[u8]) -> Result<Row> {
    let n = get_u32(buf)? as usize;
    if buf.remaining() < n {
        return Err(AimError::Storage("wal: truncated row".into()));
    }
    let row = decode_row(&buf[..n])?;
    buf.advance(n);
    Ok(row)
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    out.put_u32_le(schema.len() as u32);
    for col in schema.columns() {
        put_str(out, &col.name);
        out.put_u8(match col.data_type {
            aimdb_common::DataType::Int => 0,
            aimdb_common::DataType::Float => 1,
            aimdb_common::DataType::Text => 2,
            aimdb_common::DataType::Bool => 3,
        });
        out.put_u8(col.nullable as u8);
    }
}

fn get_schema(buf: &mut &[u8]) -> Result<Schema> {
    let n = get_u32(buf)? as usize;
    let mut cols = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = get_str(buf)?;
        let dt = match get_u8(buf)? {
            0 => aimdb_common::DataType::Int,
            1 => aimdb_common::DataType::Float,
            2 => aimdb_common::DataType::Text,
            3 => aimdb_common::DataType::Bool,
            other => {
                return Err(AimError::Storage(format!("wal: bad data type tag {other}")));
            }
        };
        let mut col = aimdb_common::Column::new(name, dt);
        if get_u8(buf)? == 0 {
            col = col.not_null();
        }
        cols.push(col);
    }
    Ok(Schema::new(cols))
}

/// Serialize a record's payload (kind byte + body, no framing).
pub fn encode_record(rec: &LogRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match rec {
        LogRecord::Begin { txn } => {
            out.put_u8(KIND_BEGIN);
            out.put_u64_le(*txn);
        }
        LogRecord::Insert {
            txn,
            table,
            rid,
            row,
        } => {
            out.put_u8(KIND_INSERT);
            out.put_u64_le(*txn);
            put_str(&mut out, table);
            put_rid(&mut out, *rid);
            put_row(&mut out, row);
        }
        LogRecord::Delete {
            txn,
            table,
            rid,
            before,
        } => {
            out.put_u8(KIND_DELETE);
            out.put_u64_le(*txn);
            put_str(&mut out, table);
            put_rid(&mut out, *rid);
            put_row(&mut out, before);
        }
        LogRecord::Update {
            txn,
            table,
            old_rid,
            new_rid,
            before,
            after,
        } => {
            out.put_u8(KIND_UPDATE);
            out.put_u64_le(*txn);
            put_str(&mut out, table);
            put_rid(&mut out, *old_rid);
            put_rid(&mut out, *new_rid);
            put_row(&mut out, before);
            put_row(&mut out, after);
        }
        LogRecord::Commit { txn } => {
            out.put_u8(KIND_COMMIT);
            out.put_u64_le(*txn);
        }
        LogRecord::Abort { txn } => {
            out.put_u8(KIND_ABORT);
            out.put_u64_le(*txn);
        }
        LogRecord::CreateTable { name, schema } => {
            out.put_u8(KIND_CREATE_TABLE);
            put_str(&mut out, name);
            put_schema(&mut out, schema);
        }
        LogRecord::DropTable { name } => {
            out.put_u8(KIND_DROP_TABLE);
            put_str(&mut out, name);
        }
        LogRecord::CreateIndex {
            name,
            table,
            column,
        } => {
            out.put_u8(KIND_CREATE_INDEX);
            put_str(&mut out, name);
            put_str(&mut out, table);
            put_str(&mut out, column);
        }
        LogRecord::DropIndex { name } => {
            out.put_u8(KIND_DROP_INDEX);
            put_str(&mut out, name);
        }
        LogRecord::Checkpoint(data) => {
            out.put_u8(KIND_CHECKPOINT);
            out.put_u64_le(data.next_txn);
            out.put_u32_le(data.tables.len() as u32);
            for t in &data.tables {
                put_str(&mut out, &t.name);
                put_schema(&mut out, &t.schema);
                out.put_u32_le(t.rows.len() as u32);
                for row in &t.rows {
                    put_row(&mut out, row);
                }
            }
            out.put_u32_le(data.indexes.len() as u32);
            for idx in &data.indexes {
                put_str(&mut out, &idx.name);
                put_str(&mut out, &idx.table);
                put_str(&mut out, &idx.column);
            }
        }
    }
    out
}

/// Parse one record payload (the inverse of [`encode_record`]).
pub fn decode_record(payload: &[u8]) -> Result<LogRecord> {
    let mut buf = payload;
    let rec = match get_u8(&mut buf)? {
        KIND_BEGIN => LogRecord::Begin {
            txn: get_u64(&mut buf)?,
        },
        KIND_INSERT => LogRecord::Insert {
            txn: get_u64(&mut buf)?,
            table: get_str(&mut buf)?,
            rid: get_rid(&mut buf)?,
            row: get_row(&mut buf)?,
        },
        KIND_DELETE => LogRecord::Delete {
            txn: get_u64(&mut buf)?,
            table: get_str(&mut buf)?,
            rid: get_rid(&mut buf)?,
            before: get_row(&mut buf)?,
        },
        KIND_UPDATE => LogRecord::Update {
            txn: get_u64(&mut buf)?,
            table: get_str(&mut buf)?,
            old_rid: get_rid(&mut buf)?,
            new_rid: get_rid(&mut buf)?,
            before: get_row(&mut buf)?,
            after: get_row(&mut buf)?,
        },
        KIND_COMMIT => LogRecord::Commit {
            txn: get_u64(&mut buf)?,
        },
        KIND_ABORT => LogRecord::Abort {
            txn: get_u64(&mut buf)?,
        },
        KIND_CREATE_TABLE => LogRecord::CreateTable {
            name: get_str(&mut buf)?,
            schema: get_schema(&mut buf)?,
        },
        KIND_DROP_TABLE => LogRecord::DropTable {
            name: get_str(&mut buf)?,
        },
        KIND_CREATE_INDEX => LogRecord::CreateIndex {
            name: get_str(&mut buf)?,
            table: get_str(&mut buf)?,
            column: get_str(&mut buf)?,
        },
        KIND_DROP_INDEX => LogRecord::DropIndex {
            name: get_str(&mut buf)?,
        },
        KIND_CHECKPOINT => {
            let next_txn = get_u64(&mut buf)?;
            let ntables = get_u32(&mut buf)? as usize;
            let mut tables = Vec::with_capacity(ntables.min(1024));
            for _ in 0..ntables {
                let name = get_str(&mut buf)?;
                let schema = get_schema(&mut buf)?;
                let nrows = get_u32(&mut buf)? as usize;
                let mut rows = Vec::with_capacity(nrows.min(65536));
                for _ in 0..nrows {
                    rows.push(get_row(&mut buf)?);
                }
                tables.push(TableSnapshot { name, schema, rows });
            }
            let nidx = get_u32(&mut buf)? as usize;
            let mut indexes = Vec::with_capacity(nidx.min(1024));
            for _ in 0..nidx {
                indexes.push(IndexSnapshot {
                    name: get_str(&mut buf)?,
                    table: get_str(&mut buf)?,
                    column: get_str(&mut buf)?,
                });
            }
            LogRecord::Checkpoint(Box::new(CheckpointData {
                next_txn,
                tables,
                indexes,
            }))
        }
        other => {
            return Err(AimError::Storage(format!(
                "wal: unknown record kind {other}"
            )))
        }
    };
    if buf.remaining() != 0 {
        return Err(AimError::Storage(format!(
            "wal: {} trailing bytes after record",
            buf.remaining()
        )));
    }
    Ok(rec)
}

/// Frame a record for the byte stream: `[len][crc][lsn][payload]`.
pub fn frame_record(lsn: u64, rec: &LogRecord) -> Vec<u8> {
    let payload = encode_record(rec);
    let mut crc_input = Vec::with_capacity(8 + payload.len());
    crc_input.put_u64_le(lsn);
    crc_input.put_slice(&payload);
    let mut out = Vec::with_capacity(16 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_u32_le(crc32(&crc_input));
    out.put_u64_le(lsn);
    out.put_slice(&payload);
    out
}

/// Result of scanning a durable WAL byte stream.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Intact records in log order, with their LSNs.
    pub records: Vec<(u64, LogRecord)>,
    /// Bytes dropped at the tail (torn/corrupt final write), 0 if clean.
    pub corrupt_tail_bytes: usize,
}

/// Parse a durable WAL byte stream, stopping at the first torn or corrupt
/// record. Everything before the corruption is returned; the damaged tail
/// is counted, not trusted.
pub fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 16 {
            break; // torn header
        }
        let mut hdr = rest;
        let len = hdr.get_u32_le() as usize;
        let crc = hdr.get_u32_le();
        let lsn = hdr.get_u64_le();
        if rest.len() < 16 + len {
            break; // torn payload
        }
        let payload = &rest[16..16 + len];
        let mut crc_input = Vec::with_capacity(8 + len);
        crc_input.put_u64_le(lsn);
        crc_input.put_slice(payload);
        if crc32(&crc_input) != crc {
            break; // bit rot / torn write inside the frame
        }
        match decode_record(payload) {
            Ok(rec) => records.push((lsn, rec)),
            Err(_) => break,
        }
        pos += 16 + len;
    }
    WalScan {
        records,
        corrupt_tail_bytes: bytes.len() - pos,
    }
}

// ---------------------------------------------------------------------------
// Sinks.

/// Where framed WAL bytes go. `append` may buffer; `flush` is the
/// durability barrier. `durable_bytes` returns only what would survive a
/// crash right now.
pub trait WalSink: Send + Sync {
    fn append(&self, bytes: &[u8]) -> Result<()>;
    fn flush(&self) -> Result<()>;
    /// Bytes appended but not yet flushed (lost by a crash).
    fn buffered(&self) -> usize;
    fn durable_bytes(&self) -> Result<Vec<u8>>;
}

/// Instantly durable in-memory sink (unit tests, ephemeral databases).
pub struct MemSink {
    bytes: Mutex<Vec<u8>>,
}

impl Default for MemSink {
    fn default() -> Self {
        MemSink::new()
    }
}

impl MemSink {
    pub fn new() -> Self {
        MemSink {
            bytes: Mutex::with_rank(Vec::new(), LockRank::WalSink),
        }
    }
}

impl WalSink for MemSink {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.bytes.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn buffered(&self) -> usize {
        0
    }

    fn durable_bytes(&self) -> Result<Vec<u8>> {
        Ok(self.bytes.lock().clone())
    }
}

/// Sink backed by a [`PageStore`]'s log area. Appends buffer in memory;
/// `flush` performs one durable `wal_append` with everything buffered —
/// the unit a fault injector can tear.
pub struct DiskSink {
    store: Arc<dyn PageStore>,
    buf: Mutex<Vec<u8>>,
}

impl DiskSink {
    pub fn new(store: Arc<dyn PageStore>) -> Self {
        DiskSink {
            store,
            buf: Mutex::with_rank(Vec::new(), LockRank::WalSink),
        }
    }
}

impl WalSink for DiskSink {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.buf.lock().extend_from_slice(bytes);
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        let mut buf = self.buf.lock();
        if buf.is_empty() {
            return Ok(());
        }
        self.store.wal_append(&buf)?;
        buf.clear();
        Ok(())
    }

    fn buffered(&self) -> usize {
        self.buf.lock().len()
    }

    fn durable_bytes(&self) -> Result<Vec<u8>> {
        self.store.wal_bytes()
    }
}

// ---------------------------------------------------------------------------
// The log itself.

struct WalInner {
    /// In-memory mirror of every appended record (live rollback, tests).
    records: Vec<LogRecord>,
    next_lsn: u64,
    since_checkpoint: u64,
    /// Cumulative count of commit records ever appended (group-commit
    /// batch accounting).
    commits_appended: u64,
}

/// Group-commit coordination. One thread at a time is the flush leader;
/// everyone else whose record is already buffered parks on the condvar
/// and rides the leader's single sink flush.
struct GroupState {
    /// Highest LSN known durable (covered by a successful flush).
    durable_lsn: u64,
    /// Commit records covered by successful flushes so far.
    durable_commits: u64,
    /// A leader is currently flushing.
    flush_in_progress: bool,
    /// Completed flush attempts (success or failure) — wakes followers.
    attempts: u64,
}

/// Called after each durable group flush with the number of commit
/// records the flush made durable (the batch size).
pub type FlushObserver = Box<dyn Fn(u64) + Send + Sync>;

/// The write-ahead log: serializes records through a sink and mirrors
/// them in memory for rollback. Commit flushes go through a group-commit
/// protocol: the first committer becomes leader, optionally waits
/// `group_window_us` for followers to queue their records, then performs
/// one sink flush on behalf of everyone buffered.
pub struct Wal {
    sink: Box<dyn WalSink>,
    sync_on_commit: AtomicBool,
    /// Microseconds a group-commit leader waits before flushing.
    group_window_us: AtomicU64,
    /// Successful flushes that pushed bytes to the store — the fsync count.
    flushes: AtomicU64,
    inner: Mutex<WalInner>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    flush_observer: Mutex<Option<FlushObserver>>,
}

impl Default for Wal {
    fn default() -> Self {
        Wal::new()
    }
}

impl Wal {
    /// An instantly-durable in-memory WAL.
    pub fn new() -> Self {
        Wal::with_sink(Box::new(MemSink::new()))
    }

    pub fn with_sink(sink: Box<dyn WalSink>) -> Self {
        Wal {
            sink,
            sync_on_commit: AtomicBool::new(true),
            group_window_us: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            inner: Mutex::with_rank(
                WalInner {
                    records: Vec::new(),
                    next_lsn: 1,
                    since_checkpoint: 0,
                    commits_appended: 0,
                },
                LockRank::WalInner,
            ),
            group: Mutex::with_rank(
                GroupState {
                    durable_lsn: 0,
                    durable_commits: 0,
                    flush_in_progress: false,
                    attempts: 0,
                },
                LockRank::WalGroup,
            ),
            group_cv: Condvar::new(),
            flush_observer: Mutex::with_rank(None, LockRank::WalFlushObserver),
        }
    }

    /// Adopt state recovered from a durable log: the mirror records, and
    /// the next LSN to hand out. Used by crash recovery only. The adopted
    /// records are already durable, so the group-commit watermark starts
    /// at the end of the adopted log.
    pub fn adopt_state(&self, records: Vec<LogRecord>, next_lsn: u64) {
        let mut inner = self.inner.lock();
        let since = records
            .iter()
            .rev()
            .take_while(|r| !matches!(r, LogRecord::Checkpoint(_)))
            .count() as u64;
        let commits = records
            .iter()
            .filter(|r| matches!(r, LogRecord::Commit { .. }))
            .count() as u64;
        inner.since_checkpoint = since;
        inner.records = records;
        inner.next_lsn = next_lsn;
        inner.commits_appended = commits;
        drop(inner);
        let mut g = self.group.lock();
        g.durable_lsn = next_lsn.saturating_sub(1);
        g.durable_commits = commits;
    }

    /// Set the group-commit window: how long (µs) a flush leader waits
    /// for follower commits to queue before the shared flush. 0 keeps
    /// single-committer latency unchanged (flush immediately, but still
    /// absorb whatever queued concurrently).
    pub fn set_group_window_us(&self, us: u64) {
        // ordering: Relaxed — an isolated tuning knob; no other memory is
        // published with it, and a stale read merely changes batching.
        self.group_window_us.store(us, Ordering::Relaxed);
    }

    pub fn group_window_us(&self) -> u64 {
        // ordering: Relaxed — see set_group_window_us.
        self.group_window_us.load(Ordering::Relaxed)
    }

    /// Successful buffer-pushing flushes so far — the fsync count a
    /// group-commit benchmark compares against committed transactions.
    pub fn flush_count(&self) -> u64 {
        // ordering: Relaxed — statistics counter; durability decisions
        // never read it, only benchmarks and tests do.
        self.flushes.load(Ordering::Relaxed)
    }

    /// Highest LSN known durable.
    pub fn durable_lsn(&self) -> u64 {
        self.group.lock().durable_lsn
    }

    /// Install a callback invoked with each durable group's commit-record
    /// count (batch size). Used by the engine to feed its metrics
    /// histograms without a storage→trace dependency.
    pub fn set_flush_observer(&self, obs: FlushObserver) {
        *self.flush_observer.lock() = Some(obs);
    }

    /// Wait (or lead) until every record with LSN ≤ `lsn` is durable.
    /// The calling thread either becomes the flush leader — waiting
    /// `window_us` for followers, then flushing the sink once for the
    /// whole group — or parks until a leader's flush covers its LSN.
    fn group_commit(&self, lsn: u64, window_us: u64) -> Result<()> {
        let mut g = self.group.lock();
        loop {
            if g.durable_lsn >= lsn {
                return Ok(());
            }
            if g.flush_in_progress {
                // Follower: ride out the in-flight attempt, then re-check.
                // Parked time is a GroupCommitFollower wait.
                let wait = wait::enter(wait::WaitClass::GroupCommitFollower);
                let attempt = g.attempts;
                while g.flush_in_progress && g.attempts == attempt {
                    self.group_cv.wait(&mut g);
                }
                drop(wait);
                continue;
            }
            // Leader.
            g.flush_in_progress = true;
            drop(g);
            // The batching window plus the single sink flush is the
            // leader's WalFsync wait — durability stall, not cpu.
            let fsync_wait = wait::enter(wait::WaitClass::WalFsync);
            if window_us > 0 {
                std::thread::sleep(Duration::from_micros(window_us));
            }
            // Everything appended before this capture rides this flush.
            let (high, high_commits) = {
                let inner = self.inner.lock();
                (inner.next_lsn - 1, inner.commits_appended)
            };
            let had_bytes = self.sink.buffered() > 0;
            let res = self.sink.flush();
            drop(fsync_wait);
            let mut g = self.group.lock();
            g.flush_in_progress = false;
            g.attempts += 1;
            let batch = if res.is_ok() {
                g.durable_lsn = g.durable_lsn.max(high);
                let batch = high_commits.saturating_sub(g.durable_commits);
                g.durable_commits = g.durable_commits.max(high_commits);
                if had_bytes {
                    // ordering: Relaxed — statistics counter; the durable
                    // state it describes is guarded by the group lock.
                    self.flushes.fetch_add(1, Ordering::Relaxed);
                }
                batch
            } else {
                0
            };
            drop(g);
            self.group_cv.notify_all();
            res?;
            if batch > 0 {
                if let Some(obs) = self.flush_observer.lock().as_ref() {
                    obs(batch);
                }
            }
            return Ok(());
        }
    }

    /// Whether commit records force a flush (the `wal_sync` knob).
    pub fn set_sync_on_commit(&self, on: bool) {
        // ordering: Relaxed — a durability-policy flag read at the top of
        // each append; it gates behavior, it does not publish data.
        self.sync_on_commit.store(on, Ordering::Relaxed);
    }

    pub fn sync_on_commit(&self) -> bool {
        // ordering: Relaxed — see set_sync_on_commit.
        self.sync_on_commit.load(Ordering::Relaxed)
    }

    /// Append a record, returning its LSN. Commit records flush through
    /// the group-commit protocol when `sync_on_commit` is set; DDL and
    /// checkpoint records always flush (with no batching window).
    pub fn append(&self, rec: LogRecord) -> Result<u64> {
        let is_commit = matches!(rec, LogRecord::Commit { .. });
        // ordering: Relaxed — policy flag; see set_sync_on_commit.
        let flush =
            rec.always_flush() || (is_commit && self.sync_on_commit.load(Ordering::Relaxed));
        let lsn;
        {
            let mut inner = self.inner.lock();
            lsn = inner.next_lsn;
            inner.next_lsn += 1;
            self.sink.append(&frame_record(lsn, &rec))?;
            if matches!(rec, LogRecord::Checkpoint(_)) {
                inner.since_checkpoint = 0;
            } else {
                inner.since_checkpoint += 1;
            }
            if is_commit {
                inner.commits_appended += 1;
            }
            inner.records.push(rec);
        }
        if flush {
            let window = if is_commit {
                // ordering: Relaxed — tuning knob; see set_group_window_us.
                self.group_window_us.load(Ordering::Relaxed)
            } else {
                0
            };
            self.group_commit(lsn, window)?;
        }
        Ok(lsn)
    }

    /// Durability barrier: push buffered bytes to the sink's backing
    /// store, keeping the group-commit watermark consistent.
    pub fn flush(&self) -> Result<()> {
        let high = self.inner.lock().next_lsn - 1;
        if high == 0 {
            return self.sink.flush();
        }
        self.group_commit(high, 0)
    }

    /// Bytes appended but not yet durable.
    pub fn buffered(&self) -> usize {
        self.sink.buffered()
    }

    /// The durable byte stream (what recovery would see).
    pub fn durable_bytes(&self) -> Result<Vec<u8>> {
        self.sink.durable_bytes()
    }

    /// Records appended since the last checkpoint record.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.inner.lock().since_checkpoint
    }

    pub fn next_lsn(&self) -> u64 {
        self.inner.lock().next_lsn
    }

    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All data records of `txn`, newest first — the undo order.
    pub fn undo_chain(&self, txn: TxnId) -> Vec<LogRecord> {
        self.inner
            .lock()
            .records
            .iter()
            .filter(|r| {
                r.txn() == txn
                    && matches!(
                        r,
                        LogRecord::Insert { .. }
                            | LogRecord::Delete { .. }
                            | LogRecord::Update { .. }
                    )
            })
            .rev()
            .cloned()
            .collect()
    }

    /// Whether `txn` reached a terminal record.
    pub fn is_finished(&self, txn: TxnId) -> bool {
        self.inner.lock().records.iter().any(|r| {
            matches!(r, LogRecord::Commit { txn: t } | LogRecord::Abort { txn: t } if *t == txn)
        })
    }

    pub fn snapshot(&self) -> Vec<LogRecord> {
        self.inner.lock().records.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimdb_common::{DataType, Value};

    fn rid(p: u64, s: u16) -> RowId {
        RowId {
            page: PageId(p),
            slot: s,
        }
    }

    fn row(i: i64) -> Row {
        Row::new(vec![Value::Int(i), Value::Text(format!("r{i}"))])
    }

    #[test]
    fn undo_chain_is_newest_first_and_scoped() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 1 }).unwrap();
        wal.append(LogRecord::Insert {
            txn: 1,
            table: "t".into(),
            rid: rid(0, 0),
            row: row(1),
        })
        .unwrap();
        wal.append(LogRecord::Insert {
            txn: 2,
            table: "t".into(),
            rid: rid(0, 1),
            row: row(2),
        })
        .unwrap();
        wal.append(LogRecord::Delete {
            txn: 1,
            table: "t".into(),
            rid: rid(0, 2),
            before: Row::new(vec![Value::Int(5)]),
        })
        .unwrap();
        let chain = wal.undo_chain(1);
        assert_eq!(chain.len(), 2);
        assert!(matches!(chain[0], LogRecord::Delete { .. }));
        assert!(matches!(chain[1], LogRecord::Insert { txn: 1, .. }));
    }

    #[test]
    fn finished_detection() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 7 }).unwrap();
        assert!(!wal.is_finished(7));
        wal.append(LogRecord::Commit { txn: 7 }).unwrap();
        assert!(wal.is_finished(7));
        assert!(!wal.is_finished(8));
    }

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::CreateTable {
                name: "t".into(),
                schema: Schema::new(vec![
                    aimdb_common::Column::new("id", DataType::Int).not_null(),
                    aimdb_common::Column::new("name", DataType::Text),
                ]),
            },
            LogRecord::Begin { txn: 3 },
            LogRecord::Insert {
                txn: 3,
                table: "t".into(),
                rid: rid(1, 4),
                row: row(42),
            },
            LogRecord::Update {
                txn: 3,
                table: "t".into(),
                old_rid: rid(1, 4),
                new_rid: rid(1, 5),
                before: row(42),
                after: row(43),
            },
            LogRecord::Delete {
                txn: 3,
                table: "t".into(),
                rid: rid(1, 5),
                before: row(43),
            },
            LogRecord::Commit { txn: 3 },
            LogRecord::CreateIndex {
                name: "idx".into(),
                table: "t".into(),
                column: "id".into(),
            },
            LogRecord::DropIndex { name: "idx".into() },
            LogRecord::DropTable { name: "t".into() },
            LogRecord::Abort { txn: 9 },
            LogRecord::Checkpoint(Box::new(CheckpointData {
                next_txn: 10,
                tables: vec![TableSnapshot {
                    name: "t".into(),
                    schema: Schema::from_pairs(&[("id", DataType::Int)]),
                    rows: vec![Row::new(vec![Value::Int(1)]), Row::new(vec![Value::Null])],
                }],
                indexes: vec![IndexSnapshot {
                    name: "idx".into(),
                    table: "t".into(),
                    column: "id".into(),
                }],
            })),
        ]
    }

    #[test]
    fn record_codec_roundtrips_every_kind() {
        for rec in sample_records() {
            let payload = encode_record(&rec);
            assert_eq!(decode_record(&payload).unwrap(), rec, "{rec:?}");
        }
    }

    #[test]
    fn framed_stream_roundtrips() {
        let recs = sample_records();
        let mut bytes = Vec::new();
        for (i, rec) in recs.iter().enumerate() {
            bytes.extend_from_slice(&frame_record(i as u64 + 1, rec));
        }
        let scan = scan_wal(&bytes);
        assert_eq!(scan.corrupt_tail_bytes, 0);
        assert_eq!(scan.records.len(), recs.len());
        for (i, (lsn, rec)) in scan.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64 + 1);
            assert_eq!(rec, &recs[i]);
        }
    }

    #[test]
    fn crc_detects_torn_and_corrupt_tails() {
        let recs = sample_records();
        let mut bytes = Vec::new();
        for (i, rec) in recs.iter().enumerate() {
            bytes.extend_from_slice(&frame_record(i as u64 + 1, rec));
        }
        // torn tail: drop the last 5 bytes
        let torn = &bytes[..bytes.len() - 5];
        let scan = scan_wal(torn);
        assert_eq!(scan.records.len(), recs.len() - 1);
        assert!(scan.corrupt_tail_bytes > 0);
        // bit flip inside the last record's payload
        let mut flipped = bytes.clone();
        let n = flipped.len();
        flipped[n - 1] ^= 0xFF;
        let scan = scan_wal(&flipped);
        assert_eq!(scan.records.len(), recs.len() - 1);
        assert!(scan.corrupt_tail_bytes > 0);
        // records before the damage are untouched
        assert_eq!(scan.records[0].1, recs[0]);
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789"
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn disk_sink_buffers_until_flush() {
        use crate::disk::Disk;
        let disk = Arc::new(Disk::new());
        let wal = Wal::with_sink(Box::new(DiskSink::new(disk.clone())));
        wal.set_sync_on_commit(false);
        wal.append(LogRecord::Begin { txn: 1 }).unwrap();
        wal.append(LogRecord::Commit { txn: 1 }).unwrap();
        assert!(wal.buffered() > 0);
        assert_eq!(disk.wal_len(), 0, "nothing durable before the barrier");
        wal.flush().unwrap();
        assert_eq!(wal.buffered(), 0);
        let scan = scan_wal(&disk.wal_bytes().unwrap());
        assert_eq!(scan.records.len(), 2);
        // sync mode: commit flushes on its own
        wal.set_sync_on_commit(true);
        wal.append(LogRecord::Begin { txn: 2 }).unwrap();
        wal.append(LogRecord::Commit { txn: 2 }).unwrap();
        assert_eq!(wal.buffered(), 0);
        assert_eq!(scan_wal(&disk.wal_bytes().unwrap()).records.len(), 4);
    }

    #[test]
    fn group_commit_batches_concurrent_commits_into_fewer_flushes() {
        use crate::disk::Disk;
        use std::sync::atomic::AtomicU64;

        let disk = Arc::new(Disk::new());
        let wal = Arc::new(Wal::with_sink(Box::new(DiskSink::new(disk.clone()))));
        wal.set_group_window_us(300);
        let batches = Arc::new(Mutex::new(Vec::new()));
        let observed = Arc::clone(&batches);
        wal.set_flush_observer(Box::new(move |b| observed.lock().push(b)));

        const THREADS: u64 = 8;
        const COMMITS: u64 = 20;
        let next = AtomicU64::new(1);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..COMMITS {
                        let txn = next.fetch_add(1, Ordering::Relaxed);
                        wal.append(LogRecord::Begin { txn }).unwrap();
                        wal.append(LogRecord::Commit { txn }).unwrap();
                    }
                });
            }
        });

        let committed = THREADS * COMMITS;
        let flushes = wal.flush_count();
        assert!(flushes >= 1);
        assert!(
            flushes < committed,
            "group commit never batched: {flushes} flushes for {committed} commits"
        );
        let batches = batches.lock();
        assert_eq!(
            batches.iter().sum::<u64>(),
            committed,
            "observer batch sizes must account for every commit exactly once"
        );
        // every Ok commit is durable
        let scan = scan_wal(&disk.wal_bytes().unwrap());
        let durable_commits = scan
            .records
            .iter()
            .filter(|(_, r)| matches!(r, LogRecord::Commit { .. }))
            .count() as u64;
        assert_eq!(durable_commits, committed);
        assert_eq!(scan.corrupt_tail_bytes, 0);
    }

    #[test]
    fn group_commit_failure_surfaces_and_store_stays_usable_after_transient() {
        use crate::disk::Disk;
        use crate::fault::{FaultInjector, FaultPlan};

        // op 1 = CreateTable flush; op 2 = first commit flush fails once.
        let inj = Arc::new(FaultInjector::new(
            Arc::new(Disk::new()),
            FaultPlan::default().with_io_error_at(vec![2]),
        ));
        let store: Arc<dyn PageStore> = inj;
        let wal = Wal::with_sink(Box::new(DiskSink::new(store.clone())));
        wal.append(LogRecord::CreateTable {
            name: "t".into(),
            schema: Schema::from_pairs(&[("id", DataType::Int)]),
        })
        .unwrap();
        wal.append(LogRecord::Begin { txn: 1 }).unwrap();
        let err = wal.append(LogRecord::Commit { txn: 1 });
        assert!(err.is_err(), "transient flush failure must surface");
        // The next commit retries the flush and succeeds (buffer intact).
        wal.append(LogRecord::Begin { txn: 2 }).unwrap();
        wal.append(LogRecord::Commit { txn: 2 }).unwrap();
        let scan = scan_wal(&store.wal_bytes().unwrap());
        assert_eq!(scan.records.len(), 5, "retried flush carried everything");
    }

    #[test]
    fn flush_watermark_advances_without_commits() {
        let wal = Wal::new();
        assert_eq!(wal.durable_lsn(), 0);
        wal.append(LogRecord::Begin { txn: 1 }).unwrap();
        wal.flush().unwrap();
        assert_eq!(wal.durable_lsn(), 1);
    }

    #[test]
    fn checkpoint_resets_interval_counter() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 1 }).unwrap();
        wal.append(LogRecord::Commit { txn: 1 }).unwrap();
        assert_eq!(wal.records_since_checkpoint(), 2);
        wal.append(LogRecord::Checkpoint(Box::default())).unwrap();
        assert_eq!(wal.records_since_checkpoint(), 0);
        wal.append(LogRecord::Begin { txn: 2 }).unwrap();
        assert_eq!(wal.records_since_checkpoint(), 1);
    }
}
