//! Write-ahead log, sufficient for transaction rollback and the
//! fault-tolerant-learning discussion in the tutorial's challenges section.
//!
//! Records are kept in memory in append order. `undo_chain` walks a
//! transaction's records newest-first so the transaction manager can undo
//! them on abort.

use parking_lot::Mutex;

use aimdb_common::Row;

use crate::heap::RowId;

/// Transaction identifier.
pub type TxnId = u64;

/// One log record. Before-images carry enough to undo.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    Begin {
        txn: TxnId,
    },
    Insert {
        txn: TxnId,
        table: String,
        rid: RowId,
    },
    Delete {
        txn: TxnId,
        table: String,
        rid: RowId,
        before: Row,
    },
    Update {
        txn: TxnId,
        table: String,
        old_rid: RowId,
        new_rid: RowId,
        before: Row,
    },
    Commit {
        txn: TxnId,
    },
    Abort {
        txn: TxnId,
    },
}

impl LogRecord {
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Insert { txn, .. }
            | LogRecord::Delete { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
        }
    }
}

/// Append-only in-memory WAL.
#[derive(Default)]
pub struct Wal {
    records: Mutex<Vec<LogRecord>>,
}

impl Wal {
    pub fn new() -> Self {
        Wal::default()
    }

    pub fn append(&self, rec: LogRecord) {
        self.records.lock().push(rec);
    }

    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All data records of `txn`, newest first — the undo order.
    pub fn undo_chain(&self, txn: TxnId) -> Vec<LogRecord> {
        self.records
            .lock()
            .iter()
            .filter(|r| {
                r.txn() == txn
                    && !matches!(
                        r,
                        LogRecord::Begin { .. } | LogRecord::Commit { .. } | LogRecord::Abort { .. }
                    )
            })
            .rev()
            .cloned()
            .collect()
    }

    /// Whether `txn` reached a terminal record.
    pub fn is_finished(&self, txn: TxnId) -> bool {
        self.records.lock().iter().any(|r| {
            matches!(r, LogRecord::Commit { txn: t } | LogRecord::Abort { txn: t } if *t == txn)
        })
    }

    pub fn snapshot(&self) -> Vec<LogRecord> {
        self.records.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageId;
    use aimdb_common::Value;

    fn rid(p: u64, s: u16) -> RowId {
        RowId {
            page: PageId(p),
            slot: s,
        }
    }

    #[test]
    fn undo_chain_is_newest_first_and_scoped() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 1 });
        wal.append(LogRecord::Insert {
            txn: 1,
            table: "t".into(),
            rid: rid(0, 0),
        });
        wal.append(LogRecord::Insert {
            txn: 2,
            table: "t".into(),
            rid: rid(0, 1),
        });
        wal.append(LogRecord::Delete {
            txn: 1,
            table: "t".into(),
            rid: rid(0, 2),
            before: Row::new(vec![Value::Int(5)]),
        });
        let chain = wal.undo_chain(1);
        assert_eq!(chain.len(), 2);
        assert!(matches!(chain[0], LogRecord::Delete { .. }));
        assert!(matches!(chain[1], LogRecord::Insert { txn: 1, .. }));
    }

    #[test]
    fn finished_detection() {
        let wal = Wal::new();
        wal.append(LogRecord::Begin { txn: 7 });
        assert!(!wal.is_finished(7));
        wal.append(LogRecord::Commit { txn: 7 });
        assert!(wal.is_finished(7));
        assert!(!wal.is_finished(8));
    }
}
