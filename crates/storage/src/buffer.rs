//! Buffer pool with LRU eviction.
//!
//! Capacity (in pages) is a live-tunable knob — the knob-tuning experiment
//! (E1) resizes it and observes the hit-rate response. Hit/miss/eviction
//! counters feed the KPI surface consumed by the monitoring components.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use aimdb_common::{wait, AimError, LockRank, Result};

use crate::disk::PageStore;
use crate::page::{Page, PageId};

/// Cumulative buffer-pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub flushes: u64,
}

impl BufferStats {
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Frame {
    page: Page,
    dirty: bool,
    /// Monotone counter value at last access — larger is more recent.
    last_used: u64,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    tick: u64,
    stats: BufferStats,
}

/// LRU buffer pool in front of a [`PageStore`].
pub struct BufferPool {
    disk: Arc<dyn PageStore>,
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    pub fn new(disk: Arc<dyn PageStore>, capacity: usize) -> Self {
        BufferPool {
            disk,
            inner: Mutex::with_rank(
                PoolInner {
                    frames: HashMap::new(),
                    capacity: capacity.max(1),
                    tick: 0,
                    stats: BufferStats::default(),
                },
                LockRank::BufferPool,
            ),
        }
    }

    pub fn disk(&self) -> &Arc<dyn PageStore> {
        &self.disk
    }

    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Resize the pool (the `buffer_pool_pages` knob). Shrinking evicts
    /// least-recently-used frames immediately.
    pub fn resize(&self, capacity: usize) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.capacity = capacity.max(1);
        while inner.frames.len() > inner.capacity {
            Self::evict_lru(self.disk.as_ref(), &mut inner)?;
        }
        Ok(())
    }

    fn evict_lru(disk: &dyn PageStore, inner: &mut PoolInner) -> Result<()> {
        if let Some(&victim) = inner
            .frames
            .iter()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(id, _)| id)
        {
            let frame = inner
                .frames
                .remove(&victim)
                .ok_or_else(|| AimError::Storage("buffer pool lost its eviction victim".into()))?;
            inner.stats.evictions += 1;
            if frame.dirty {
                disk.write(victim, &frame.page)?;
                inner.stats.flushes += 1;
            }
        }
        Ok(())
    }

    fn load<'a>(&self, inner: &'a mut PoolInner, id: PageId) -> Result<&'a mut Frame> {
        inner.tick += 1;
        let tick = inner.tick;
        if inner.frames.contains_key(&id) {
            inner.stats.hits += 1;
        } else {
            inner.stats.misses += 1;
            // A miss stalls the caller on storage: eviction (possibly a
            // dirty write-back) plus the page read are a BufferMiss wait.
            let wait = wait::enter(wait::WaitClass::BufferMiss);
            if inner.frames.len() >= inner.capacity {
                Self::evict_lru(self.disk.as_ref(), inner)?;
            }
            let page = self.disk.read(id)?;
            drop(wait);
            inner.frames.insert(
                id,
                Frame {
                    page,
                    dirty: false,
                    last_used: 0,
                },
            );
        }
        let frame = inner
            .frames
            .get_mut(&id)
            .ok_or_else(|| AimError::Storage(format!("page {id:?} missing after load")))?;
        frame.last_used = tick;
        Ok(frame)
    }

    /// Read a page through the pool (clone of the cached frame).
    pub fn get(&self, id: PageId) -> Result<Page> {
        let mut inner = self.inner.lock();
        Ok(self.load(&mut inner, id)?.page.clone())
    }

    /// Mutate a page in place through the pool; marks the frame dirty.
    pub fn with_page_mut<R>(
        &self,
        id: PageId,
        f: impl FnOnce(&mut Page) -> Result<R>,
    ) -> Result<R> {
        let mut inner = self.inner.lock();
        let frame = self.load(&mut inner, id)?;
        let out = f(&mut frame.page)?;
        frame.dirty = true;
        Ok(out)
    }

    /// Allocate a new page on disk and cache it.
    pub fn allocate(&self) -> Result<PageId> {
        let id = self.disk.allocate()?;
        let mut inner = self.inner.lock();
        // Touch it so it is resident.
        self.load(&mut inner, id)?;
        Ok(id)
    }

    /// Write all dirty frames back to disk.
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let ids: Vec<PageId> = inner.frames.keys().copied().collect();
        for id in ids {
            let Some(frame) = inner.frames.get_mut(&id) else {
                continue;
            };
            if frame.dirty {
                self.disk.write(id, &frame.page)?;
                frame.dirty = false;
                inner.stats.flushes += 1;
            }
        }
        Ok(())
    }

    pub fn stats(&self) -> BufferStats {
        self.inner.lock().stats
    }

    pub fn reset_stats(&self) {
        self.inner.lock().stats = BufferStats::default();
    }

    pub fn resident(&self) -> usize {
        self.inner.lock().frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::Disk;

    fn pool(cap: usize) -> (Arc<Disk>, BufferPool) {
        let disk = Arc::new(Disk::new());
        let pool = BufferPool::new(disk.clone(), cap);
        (disk, pool)
    }

    #[test]
    fn hit_after_first_access() {
        let (_d, p) = pool(4);
        let id = p.allocate().unwrap();
        p.reset_stats();
        let _ = p.get(id).unwrap();
        let _ = p.get(id).unwrap();
        let s = p.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let (_d, p) = pool(2);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        let c = p.allocate().unwrap(); // evicts a
        assert_eq!(p.resident(), 2);
        p.reset_stats();
        let _ = p.get(b).unwrap();
        let _ = p.get(c).unwrap();
        assert_eq!(p.stats().hits, 2);
        let _ = p.get(a).unwrap(); // miss: was evicted
        assert_eq!(p.stats().misses, 1);
    }

    #[test]
    fn dirty_page_survives_eviction() {
        let (_d, p) = pool(1);
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |pg| {
            pg.insert(b"keep").unwrap();
            Ok(())
        })
        .unwrap();
        let _b = p.allocate().unwrap(); // evicts a, must flush
        let back = p.get(a).unwrap();
        assert_eq!(back.get(0).unwrap(), b"keep");
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let (_d, p) = pool(8);
        for _ in 0..8 {
            p.allocate().unwrap();
        }
        assert_eq!(p.resident(), 8);
        p.resize(3).unwrap();
        assert_eq!(p.resident(), 3);
        assert_eq!(p.capacity(), 3);
        p.resize(0).unwrap(); // clamped to 1
        assert_eq!(p.capacity(), 1);
    }

    #[test]
    fn flush_all_persists_dirty_frames() {
        let (d, p) = pool(4);
        let a = p.allocate().unwrap();
        p.with_page_mut(a, |pg| {
            pg.insert(b"x").unwrap();
            Ok(())
        })
        .unwrap();
        p.flush_all().unwrap();
        // bypass the pool: disk copy must contain the tuple
        let raw = d.read(a).unwrap();
        assert_eq!(raw.get(0).unwrap(), b"x");
    }

    #[test]
    fn hit_rate_math() {
        let s = BufferStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(BufferStats::default().hit_rate(), 0.0);
    }
}
