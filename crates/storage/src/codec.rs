//! Binary row serialization.
//!
//! A compact tagged format: one type byte per value, little-endian payloads,
//! length-prefixed text. Self-describing so heap tuples can be decoded
//! without consulting the catalog (simplifies recovery and debugging).

use bytes::{Buf, BufMut};

use aimdb_common::{AimError, ColVec, Result, Row, Value};

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_TEXT: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;

/// Encode a row to bytes.
pub fn encode_row(row: &Row) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + row.len() * 9);
    buf.put_u16_le(row.len() as u16);
    for v in row.values() {
        match v {
            Value::Null => buf.put_u8(TAG_NULL),
            Value::Int(i) => {
                buf.put_u8(TAG_INT);
                buf.put_i64_le(*i);
            }
            Value::Float(f) => {
                buf.put_u8(TAG_FLOAT);
                buf.put_f64_le(*f);
            }
            Value::Text(s) => {
                buf.put_u8(TAG_TEXT);
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
            Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
            Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        }
    }
    buf
}

/// Decode a row previously produced by [`encode_row`].
pub fn decode_row(mut bytes: &[u8]) -> Result<Row> {
    let corrupt = || AimError::Storage("corrupt row encoding".into());
    if bytes.remaining() < 2 {
        return Err(corrupt());
    }
    let n = bytes.get_u16_le() as usize;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        if bytes.remaining() < 1 {
            return Err(corrupt());
        }
        let tag = bytes.get_u8();
        let v = match tag {
            TAG_NULL => Value::Null,
            TAG_INT => {
                if bytes.remaining() < 8 {
                    return Err(corrupt());
                }
                Value::Int(bytes.get_i64_le())
            }
            TAG_FLOAT => {
                if bytes.remaining() < 8 {
                    return Err(corrupt());
                }
                Value::Float(bytes.get_f64_le())
            }
            TAG_TEXT => {
                if bytes.remaining() < 4 {
                    return Err(corrupt());
                }
                let len = bytes.get_u32_le() as usize;
                if bytes.remaining() < len {
                    return Err(corrupt());
                }
                let s = std::str::from_utf8(&bytes[..len])
                    .map_err(|_| corrupt())?
                    .to_string();
                bytes.advance(len);
                Value::Text(s)
            }
            TAG_BOOL_FALSE => Value::Bool(false),
            TAG_BOOL_TRUE => Value::Bool(true),
            _ => return Err(corrupt()),
        };
        values.push(v);
    }
    Ok(Row::new(values))
}

/// Decode a row directly into column builders, one value per column,
/// skipping the intermediate [`Row`] allocation. The vectorized scan
/// uses this to columnarize pages in a single decode pass. The row's
/// arity must match `cols.len()` — heap tuples are always written from
/// the owning table's schema, so a mismatch means corruption.
pub fn decode_row_into(mut bytes: &[u8], cols: &mut [ColVec]) -> Result<()> {
    let corrupt = || AimError::Storage("corrupt row encoding".into());
    if bytes.remaining() < 2 {
        return Err(corrupt());
    }
    let n = bytes.get_u16_le() as usize;
    if n != cols.len() {
        return Err(AimError::Storage(format!(
            "row arity {n} does not match schema width {}",
            cols.len()
        )));
    }
    for col in cols.iter_mut() {
        if bytes.remaining() < 1 {
            return Err(corrupt());
        }
        let tag = bytes.get_u8();
        match tag {
            TAG_NULL => col.push_null(),
            TAG_INT => {
                if bytes.remaining() < 8 {
                    return Err(corrupt());
                }
                col.push_int(bytes.get_i64_le());
            }
            TAG_FLOAT => {
                if bytes.remaining() < 8 {
                    return Err(corrupt());
                }
                col.push_float(bytes.get_f64_le());
            }
            TAG_TEXT => {
                if bytes.remaining() < 4 {
                    return Err(corrupt());
                }
                let len = bytes.get_u32_le() as usize;
                if bytes.remaining() < len {
                    return Err(corrupt());
                }
                let s = std::str::from_utf8(&bytes[..len]).map_err(|_| corrupt())?;
                col.push_text(s.to_string());
                bytes.advance(len);
            }
            TAG_BOOL_FALSE => col.push_bool(false),
            TAG_BOOL_TRUE => col.push_bool(true),
            _ => return Err(corrupt()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let row = Row::new(vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(3.5),
            Value::Text("héllo".into()),
            Value::Bool(true),
            Value::Bool(false),
        ]);
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
    }

    #[test]
    fn empty_row() {
        let row = Row::new(vec![]);
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = encode_row(&Row::new(vec![Value::Int(7)]));
        for cut in 0..bytes.len() {
            assert!(
                decode_row(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_tag_errors() {
        assert!(decode_row(&[1, 0, 99]).is_err());
    }

    #[test]
    fn decode_into_matches_decode() {
        use aimdb_common::DataType;
        let row = Row::new(vec![
            Value::Int(7),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
            Value::Text("abc".into()),
        ]);
        let bytes = encode_row(&row);
        let mut cols = vec![
            ColVec::with_capacity(DataType::Int, 1),
            ColVec::with_capacity(DataType::Int, 1),
            ColVec::with_capacity(DataType::Float, 1),
            ColVec::with_capacity(DataType::Bool, 1),
            ColVec::with_capacity(DataType::Text, 1),
        ];
        decode_row_into(&bytes, &mut cols).unwrap();
        let got: Vec<Value> = cols.iter().map(|c| c.value(0)).collect();
        assert_eq!(got, row.values());
    }

    #[test]
    fn decode_into_rejects_arity_mismatch() {
        use aimdb_common::DataType;
        let bytes = encode_row(&Row::new(vec![Value::Int(1), Value::Int(2)]));
        let mut cols = vec![ColVec::with_capacity(DataType::Int, 1)];
        assert!(decode_row_into(&bytes, &mut cols).is_err());
    }

    #[test]
    fn decode_into_truncated_errors() {
        use aimdb_common::DataType;
        let bytes = encode_row(&Row::new(vec![Value::Int(7)]));
        let mut cols = vec![ColVec::with_capacity(DataType::Int, 1)];
        assert!(decode_row_into(&bytes[..bytes.len() - 1], &mut cols).is_err());
    }
}
