//! Fixed-size pages with a slotted layout.
//!
//! Layout (little-endian):
//! ```text
//! [0..2)   slot_count: u16
//! [2..4)   free_space_offset: u16   (end of free region; tuples grow down)
//! [4..)    slot directory: slot_count entries of (offset: u16, len: u16)
//! [...]    free space
//! [...]    tuple data (grows from the end of the page toward the directory)
//! ```
//! `len == 0` marks a deleted slot; slot indices are stable so `RowId`s
//! remain valid across deletions.

use aimdb_common::{AimError, Result};

/// Size of every page, in bytes. 4 KiB mirrors common DBMS defaults.
pub const PAGE_SIZE: usize = 4096;

const HEADER: usize = 4;
const SLOT: usize = 4;

/// Identifies a page within a [`crate::disk::Disk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// A slotted page. Owns its bytes; the buffer pool hands out copies of
/// these under latches.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// A fresh, empty page.
    pub fn new() -> Self {
        let mut data = Box::new([0u8; PAGE_SIZE]);
        // free_space_offset starts at the end of the page
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        Page { data }
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(AimError::Storage(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                bytes.len()
            )));
        }
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Ok(Page { data })
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    /// Number of slots ever allocated in this page (tombstoned slots
    /// included — slot ids are never reused).
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes([self.data[0], self.data[1]])
    }

    fn free_offset(&self) -> u16 {
        u16::from_le_bytes([self.data[2], self.data[3]])
    }

    fn set_slot_count(&mut self, n: u16) {
        self.data[0..2].copy_from_slice(&n.to_le_bytes());
    }

    fn set_free_offset(&mut self, off: u16) {
        self.data[2..4].copy_from_slice(&off.to_le_bytes());
    }

    fn slot(&self, idx: u16) -> (u16, u16) {
        let base = HEADER + idx as usize * SLOT;
        let off = u16::from_le_bytes([self.data[base], self.data[base + 1]]);
        let len = u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]);
        (off, len)
    }

    fn set_slot(&mut self, idx: u16, off: u16, len: u16) {
        let base = HEADER + idx as usize * SLOT;
        self.data[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Bytes of free space available for one more tuple (including its
    /// slot-directory entry).
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER + self.slot_count() as usize * SLOT;
        (self.free_offset() as usize).saturating_sub(dir_end)
    }

    /// Insert a tuple; returns the slot index, or `None` if it doesn't fit.
    pub fn insert(&mut self, tuple: &[u8]) -> Option<u16> {
        if tuple.len() + SLOT > self.free_space() || tuple.len() > u16::MAX as usize {
            return None;
        }
        let slot_idx = self.slot_count();
        let new_off = self.free_offset() as usize - tuple.len();
        self.data[new_off..new_off + tuple.len()].copy_from_slice(tuple);
        self.set_slot(slot_idx, new_off as u16, tuple.len() as u16);
        self.set_slot_count(slot_idx + 1);
        self.set_free_offset(new_off as u16);
        Some(slot_idx)
    }

    /// Read the tuple in `slot`, or `None` if out of range or deleted.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot(slot);
        if len == 0 {
            return None;
        }
        Some(&self.data[off as usize..(off + len) as usize])
    }

    /// Tombstone a slot. Space is not compacted (slot ids stay stable).
    pub fn delete(&mut self, slot: u16) -> Result<()> {
        if slot >= self.slot_count() {
            return Err(AimError::Storage(format!("slot {slot} out of range")));
        }
        let (off, _) = self.slot(slot);
        self.set_slot(slot, off, 0);
        Ok(())
    }

    /// Iterate live `(slot, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.get(s).map(|t| (s, t)))
    }

    /// Number of live (non-deleted) tuples.
    pub fn live_count(&self) -> usize {
        self.iter().count()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_roundtrip() {
        let mut p = Page::new();
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s0).unwrap(), b"hello");
        assert_eq!(p.get(s1).unwrap(), b"world!");
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_tombstones_but_keeps_slot_ids() {
        let mut p = Page::new();
        let s0 = p.insert(b"a").unwrap();
        let s1 = p.insert(b"b").unwrap();
        p.delete(s0).unwrap();
        assert!(p.get(s0).is_none());
        assert_eq!(p.get(s1).unwrap(), b"b");
        assert_eq!(p.live_count(), 1);
        assert!(p.delete(99).is_err());
    }

    #[test]
    fn fills_up_and_rejects_overflow() {
        let mut p = Page::new();
        let tuple = [7u8; 100];
        let mut n = 0;
        while p.insert(&tuple).is_some() {
            n += 1;
        }
        // ~ (4096 - 4) / 104 tuples
        assert!((35..=40).contains(&n), "inserted {n}");
        assert!(p.insert(&tuple).is_none());
        // a tiny tuple may still fit
        assert!(p.free_space() < 104 + 4);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut p = Page::new();
        p.insert(b"persist me").unwrap();
        let q = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(q.get(0).unwrap(), b"persist me");
        assert!(Page::from_bytes(&[0u8; 7]).is_err());
    }

    #[test]
    fn oversized_tuple_rejected() {
        let mut p = Page::new();
        assert!(p.insert(&vec![0u8; PAGE_SIZE]).is_none());
    }
}
