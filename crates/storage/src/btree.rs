//! In-memory B+tree.
//!
//! Arena-allocated nodes (`Vec<Node>` + indices) with linked leaves for
//! range scans. Deletion removes from the leaf without eager rebalancing —
//! the same lazy strategy PostgreSQL uses for its B-trees — so the tree
//! stays simple while `RowId`s and iteration remain correct.
//!
//! The tree doubles as the traditional baseline in the learned-index
//! experiment (E8): [`BTree::get_with_cost`] reports how many nodes a
//! lookup touched, and [`BTree::size_bytes`] estimates the memory
//! footprint, the two axes the learned-index literature compares on.

use aimdb_common::{AimError, Result};

const DEFAULT_FANOUT: usize = 64;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Internal {
        /// keys[i] is the smallest key reachable through children[i+1]
        keys: Vec<K>,
        children: Vec<usize>,
    },
    Leaf {
        keys: Vec<K>,
        vals: Vec<V>,
        next: Option<usize>,
    },
}

/// A B+tree mapping `K` to `V`.
///
/// ```
/// use aimdb_storage::BTree;
///
/// let mut t = BTree::with_fanout(8);
/// for i in 0..100i64 {
///     t.insert(i, i * 2);
/// }
/// assert_eq!(t.get(&21), Some(&42));
/// assert_eq!(t.range(&10, &12).len(), 3);
/// assert_eq!(t.remove(&21), Some(42));
/// assert_eq!(t.get(&21), None);
/// ```
#[derive(Debug, Clone)]
pub struct BTree<K, V> {
    nodes: Vec<Node<K, V>>,
    root: usize,
    len: usize,
    fanout: usize,
}

impl<K: Ord + Clone, V: Clone> Default for BTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> BTree<K, V> {
    pub fn new() -> Self {
        Self::with_fanout(DEFAULT_FANOUT)
    }

    /// `fanout` is the max number of entries per node (≥ 4).
    pub fn with_fanout(fanout: usize) -> Self {
        let fanout = fanout.max(4);
        BTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                vals: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
            fanout,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated nodes (live + superseded roots are reused, so
    /// this tracks the physical size of the structure).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Rough memory footprint assuming fixed-size keys/values, used for
    /// size comparisons against learned indexes.
    pub fn size_bytes(&self) -> usize {
        let entry = std::mem::size_of::<K>() + std::mem::size_of::<V>();
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Internal { keys, children } => {
                    keys.len() * std::mem::size_of::<K>()
                        + children.len() * std::mem::size_of::<usize>()
                }
                Node::Leaf { keys, .. } => keys.len() * entry + std::mem::size_of::<usize>(),
            })
            .sum()
    }

    fn descend(&self, key: &K) -> (usize, usize) {
        // returns (leaf index, nodes visited)
        let mut node = self.root;
        let mut visited = 1;
        loop {
            match &self.nodes[node] {
                Node::Internal { keys, children } => {
                    let child = keys.partition_point(|k| k <= key);
                    node = children[child];
                    visited += 1;
                }
                Node::Leaf { .. } => return (node, visited),
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.get_with_cost(key).0
    }

    /// Point lookup plus the number of nodes touched — the comparison
    /// metric for E8.
    pub fn get_with_cost(&self, key: &K) -> (Option<&V>, usize) {
        let (leaf, visited) = self.descend(key);
        if let Node::Leaf { keys, vals, .. } = &self.nodes[leaf] {
            match keys.binary_search(key) {
                Ok(i) => (Some(&vals[i]), visited),
                Err(_) => (None, visited),
            }
        } else {
            unreachable!("descend always ends at a leaf")
        }
    }

    /// Insert or replace; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        let root = self.root;
        match self.insert_rec(root, key, val) {
            InsertResult::Replaced(old) => Some(old),
            InsertResult::Inserted => {
                self.len += 1;
                None
            }
            InsertResult::Split { sep, right } => {
                self.len += 1;
                let new_root = Node::Internal {
                    keys: vec![sep],
                    children: vec![self.root, right],
                };
                self.nodes.push(new_root);
                self.root = self.nodes.len() - 1;
                None
            }
        }
    }

    fn insert_rec(&mut self, node: usize, key: K, val: V) -> InsertResult<K, V> {
        match &mut self.nodes[node] {
            Node::Leaf { keys, vals, .. } => {
                match keys.binary_search(&key) {
                    Ok(i) => {
                        let old = std::mem::replace(&mut vals[i], val);
                        return InsertResult::Replaced(old);
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        vals.insert(i, val);
                    }
                }
                if keys.len() > self.fanout {
                    self.split_leaf(node)
                } else {
                    InsertResult::Inserted
                }
            }
            Node::Internal { keys, children } => {
                let child_idx = keys.partition_point(|k| k <= &key);
                let child = children[child_idx];
                match self.insert_rec(child, key, val) {
                    InsertResult::Split { sep, right } => {
                        if let Node::Internal { keys, children } = &mut self.nodes[node] {
                            keys.insert(child_idx, sep);
                            children.insert(child_idx + 1, right);
                            if keys.len() > self.fanout {
                                return self.split_internal(node);
                            }
                        }
                        InsertResult::Inserted
                    }
                    other => other,
                }
            }
        }
    }

    fn split_leaf(&mut self, node: usize) -> InsertResult<K, V> {
        let right_idx = self.nodes.len();
        if let Node::Leaf { keys, vals, next } = &mut self.nodes[node] {
            let mid = keys.len() / 2;
            let rk: Vec<K> = keys.split_off(mid);
            let rv: Vec<V> = vals.split_off(mid);
            let sep = rk[0].clone();
            let right = Node::Leaf {
                keys: rk,
                vals: rv,
                next: *next,
            };
            *next = Some(right_idx);
            self.nodes.push(right);
            InsertResult::Split {
                sep,
                right: right_idx,
            }
        } else {
            unreachable!("split_leaf on internal node")
        }
    }

    fn split_internal(&mut self, node: usize) -> InsertResult<K, V> {
        let right_idx = self.nodes.len();
        if let Node::Internal { keys, children } = &mut self.nodes[node] {
            let mid = keys.len() / 2;
            let sep = keys[mid].clone();
            let rk: Vec<K> = keys.split_off(mid + 1);
            keys.pop(); // sep moves up
            let rc: Vec<usize> = children.split_off(mid + 1);
            let right = Node::Internal {
                keys: rk,
                children: rc,
            };
            self.nodes.push(right);
            InsertResult::Split {
                sep,
                right: right_idx,
            }
        } else {
            unreachable!("split_internal on leaf")
        }
    }

    /// Remove a key; returns its value if present. Leaves may underflow
    /// (lazy deletion).
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (leaf, _) = self.descend(key);
        if let Node::Leaf { keys, vals, .. } = &mut self.nodes[leaf] {
            if let Ok(i) = keys.binary_search(key) {
                keys.remove(i);
                let v = vals.remove(i);
                self.len -= 1;
                return Some(v);
            }
        }
        None
    }

    /// All `(key, value)` pairs with `lo <= key <= hi`, in key order.
    pub fn range(&self, lo: &K, hi: &K) -> Vec<(K, V)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let (mut leaf, _) = self.descend(lo);
        loop {
            let (keys, vals, next) = match &self.nodes[leaf] {
                Node::Leaf { keys, vals, next } => (keys, vals, next),
                _ => unreachable!("leaf chain contains internal node"),
            };
            for (k, v) in keys.iter().zip(vals) {
                if k > hi {
                    return out;
                }
                if k >= lo {
                    out.push((k.clone(), v.clone()));
                }
            }
            match next {
                Some(n) => leaf = *n,
                None => return out,
            }
        }
    }

    /// Open a streaming cursor over `lo <= key <= hi` that yields pairs
    /// in key-order chunks (for the vectorized executor's batched index
    /// scans). The cursor borrows the tree, so the tree cannot be
    /// mutated while a cursor is live.
    pub fn range_cursor<'a>(&'a self, lo: &K, hi: &K) -> RangeCursor<'a, K, V> {
        if lo > hi {
            return RangeCursor {
                tree: self,
                hi: hi.clone(),
                leaf: None,
                idx: 0,
            };
        }
        let (leaf, _) = self.descend(lo);
        let idx = match &self.nodes[leaf] {
            Node::Leaf { keys, .. } => keys.partition_point(|k| k < lo),
            _ => unreachable!("descend always ends at a leaf"),
        };
        RangeCursor {
            tree: self,
            hi: hi.clone(),
            leaf: Some(leaf),
            idx,
        }
    }

    /// Every pair in key order (full scan via the leaf chain).
    pub fn iter_all(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut node = self.root;
        // walk to leftmost leaf
        while let Node::Internal { children, .. } = &self.nodes[node] {
            node = children[0];
        }
        loop {
            let (keys, vals, next) = match &self.nodes[node] {
                Node::Leaf { keys, vals, next } => (keys, vals, next),
                _ => unreachable!(),
            };
            out.extend(keys.iter().cloned().zip(vals.iter().cloned()));
            match next {
                Some(n) => node = *n,
                None => return out,
            }
        }
    }

    /// Height of the tree (1 for a lone leaf).
    pub fn depth(&self) -> usize {
        let mut node = self.root;
        let mut d = 1;
        loop {
            match &self.nodes[node] {
                Node::Internal { children, .. } => {
                    node = children[0];
                    d += 1;
                }
                Node::Leaf { .. } => return d,
            }
        }
    }

    /// Bulk-load from sorted unique pairs. Errors if input is unsorted.
    pub fn bulk_load(pairs: Vec<(K, V)>, fanout: usize) -> Result<Self> {
        let mut t = Self::with_fanout(fanout);
        let mut prev: Option<&K> = None;
        for (k, _) in &pairs {
            if let Some(p) = prev {
                if p >= k {
                    return Err(AimError::InvalidInput(
                        "bulk_load requires strictly ascending keys".into(),
                    ));
                }
            }
            prev = Some(k);
        }
        for (k, v) in pairs {
            t.insert(k, v);
        }
        Ok(t)
    }
}

/// Streaming range-scan cursor walking the leaf chain in chunks.
/// Produced by [`BTree::range_cursor`]; yields the same pairs as
/// [`BTree::range`] but lets the caller pull a bounded number at a time.
pub struct RangeCursor<'a, K, V> {
    tree: &'a BTree<K, V>,
    hi: K,
    leaf: Option<usize>,
    idx: usize,
}

impl<K: Ord + Clone, V: Clone> RangeCursor<'_, K, V> {
    /// Append up to `max` in-range pairs to `out`, in key order.
    /// Returns the number appended; `0` means the cursor is exhausted.
    pub fn next_chunk(&mut self, max: usize, out: &mut Vec<(K, V)>) -> usize {
        let mut n = 0;
        while n < max {
            let Some(leaf) = self.leaf else {
                return n;
            };
            let (keys, vals, next) = match &self.tree.nodes[leaf] {
                Node::Leaf { keys, vals, next } => (keys, vals, next),
                _ => unreachable!("leaf chain contains internal node"),
            };
            if self.idx >= keys.len() {
                self.leaf = *next;
                self.idx = 0;
                continue;
            }
            let k = &keys[self.idx];
            if *k > self.hi {
                self.leaf = None;
                return n;
            }
            out.push((k.clone(), vals[self.idx].clone()));
            self.idx += 1;
            n += 1;
        }
        n
    }

    /// True once every in-range pair has been yielded.
    pub fn is_exhausted(&self) -> bool {
        self.leaf.is_none()
    }
}

enum InsertResult<K, V> {
    Inserted,
    Replaced(V),
    Split { sep: K, right: usize },
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn insert_get_small() {
        let mut t = BTree::with_fanout(4);
        for i in 0..100i64 {
            assert!(t.insert(i, i * 10).is_none());
        }
        assert_eq!(t.len(), 100);
        for i in 0..100i64 {
            assert_eq!(t.get(&i), Some(&(i * 10)));
        }
        assert_eq!(t.get(&1000), None);
    }

    #[test]
    fn replace_returns_old() {
        let mut t: BTree<i64, &str> = BTree::new();
        t.insert(1, "a");
        assert_eq!(t.insert(1, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&"b"));
    }

    #[test]
    fn random_inserts_stay_sorted() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut keys: Vec<i64> = (0..5_000).collect();
        keys.shuffle(&mut rng);
        let mut t = BTree::with_fanout(8);
        for &k in &keys {
            t.insert(k, k);
        }
        let all = t.iter_all();
        assert_eq!(all.len(), 5_000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(t.depth() >= 4, "fanout-8 tree of 5000 should be deep");
    }

    #[test]
    fn range_scan() {
        let mut t = BTree::with_fanout(6);
        for i in (0..1000i64).step_by(2) {
            t.insert(i, i);
        }
        let r = t.range(&10, &20);
        assert_eq!(
            r.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![10, 12, 14, 16, 18, 20]
        );
        assert!(t.range(&21, &20).is_empty());
        // unbounded-ish range
        assert_eq!(t.range(&-100, &10_000).len(), 500);
    }

    #[test]
    fn remove_and_reinsert() {
        let mut t = BTree::with_fanout(4);
        for i in 0..200i64 {
            t.insert(i, i);
        }
        for i in (0..200i64).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.get(&4), None);
        assert_eq!(t.get(&5), Some(&5));
        t.insert(4, 44);
        assert_eq!(t.get(&4), Some(&44));
        assert_eq!(t.remove(&4000), None);
    }

    #[test]
    fn lookup_cost_equals_depth() {
        let mut t = BTree::with_fanout(4);
        for i in 0..1_000i64 {
            t.insert(i, i);
        }
        let (v, cost) = t.get_with_cost(&512);
        assert_eq!(v, Some(&512));
        assert_eq!(cost, t.depth());
    }

    #[test]
    fn bulk_load_validates_order() {
        let ok = BTree::bulk_load(vec![(1, 1), (2, 2), (3, 3)], 4).unwrap();
        assert_eq!(ok.len(), 3);
        assert!(BTree::bulk_load(vec![(2, 2), (1, 1)], 4).is_err());
        assert!(BTree::bulk_load(vec![(1, 1), (1, 2)], 4).is_err());
    }

    #[test]
    fn range_cursor_matches_range() {
        let mut t = BTree::with_fanout(6);
        for i in (0..1000i64).step_by(2) {
            t.insert(i, i * 3);
        }
        for (lo, hi) in [(10, 20), (-5, 3), (999, 2000), (500, 499), (0, 998)] {
            let want = t.range(&lo, &hi);
            let mut cur = t.range_cursor(&lo, &hi);
            let mut got = Vec::new();
            // odd chunk size to exercise mid-leaf resumption
            while cur.next_chunk(7, &mut got) > 0 {}
            assert!(cur.is_exhausted() || got.len() == want.len());
            assert_eq!(got, want, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn range_cursor_on_empty_tree() {
        let t: BTree<i64, i64> = BTree::new();
        let mut cur = t.range_cursor(&0, &100);
        let mut got = Vec::new();
        assert_eq!(cur.next_chunk(16, &mut got), 0);
        assert!(got.is_empty());
    }

    #[test]
    fn size_bytes_grows_with_content() {
        let mut t = BTree::with_fanout(16);
        let empty = t.size_bytes();
        for i in 0..10_000i64 {
            t.insert(i, i);
        }
        assert!(t.size_bytes() > empty);
        assert!(t.size_bytes() >= 10_000 * 16);
    }
}
