//! # aimdb-storage
//!
//! The physical storage substrate: a simulated disk with I/O accounting, a
//! buffer pool with LRU eviction, slotted-page heap files, a B+tree index,
//! row value serialization, and a durable CRC-checked write-ahead log with
//! a fault-injection layer for crash-recovery testing.
//!
//! Everything is in-process and deterministic. The simulated disk counts
//! reads and writes so higher layers (cost models, knob tuning, the learned
//! KV-design experiment) can reason about I/O without real hardware, and
//! exposes a durable WAL byte area that survives simulated crashes.

pub mod btree;
pub mod buffer;
pub mod codec;
pub mod disk;
pub mod fault;
pub mod heap;
pub mod page;
pub mod wal;

pub use btree::{BTree, RangeCursor};
pub use buffer::{BufferPool, BufferStats};
pub use disk::{Disk, DiskStats, PageStore};
pub use fault::{FaultInjector, FaultPlan, TornMode};
pub use heap::{HeapFile, HeapScanCursor, Morsel, MorselDispenser, MorselSource, RowId};
pub use page::{PageId, PAGE_SIZE};
pub use wal::{
    scan_wal, CheckpointData, DiskSink, IndexSnapshot, LogRecord, MemSink, TableSnapshot, TxnId,
    Wal, WalScan, WalSink,
};
