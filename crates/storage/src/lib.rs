//! # aimdb-storage
//!
//! The physical storage substrate: a simulated disk with I/O accounting, a
//! buffer pool with LRU eviction, slotted-page heap files, a B+tree index,
//! row value serialization, and a write-ahead log sufficient for
//! transaction rollback.
//!
//! Everything is in-process and deterministic. The simulated disk counts
//! reads and writes so higher layers (cost models, knob tuning, the learned
//! KV-design experiment) can reason about I/O without real hardware.

pub mod btree;
pub mod buffer;
pub mod codec;
pub mod disk;
pub mod heap;
pub mod page;
pub mod wal;

pub use btree::BTree;
pub use buffer::{BufferPool, BufferStats};
pub use disk::{Disk, DiskStats};
pub use heap::{HeapFile, RowId};
pub use page::{PageId, PAGE_SIZE};
pub use wal::{LogRecord, Wal};
