//! Simulated disk: a page store with I/O accounting.
//!
//! The tutorial's AI4DB techniques (knob tuning, index advice, KV design)
//! all reason about I/O cost. Rather than stubbing "assume a disk exists",
//! this is a real page store — just backed by memory — whose read/write
//! counters are the ground-truth signal those components learn from.

use std::collections::HashMap;

use parking_lot::Mutex;

use aimdb_common::{AimError, Result};

use crate::page::{Page, PageId, PAGE_SIZE};

/// Cumulative I/O counters for a [`Disk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    pub reads: u64,
    pub writes: u64,
    pub allocations: u64,
}

impl DiskStats {
    /// A simple cost metric: sequential-vs-random distinction is handled by
    /// higher-level cost models; the disk itself charges one unit per I/O.
    pub fn total_ios(&self) -> u64 {
        self.reads + self.writes
    }
}

struct DiskInner {
    pages: HashMap<PageId, Box<[u8; PAGE_SIZE]>>,
    next_id: u64,
    stats: DiskStats,
}

/// An in-memory simulated disk. Thread-safe; all methods take `&self`.
pub struct Disk {
    inner: Mutex<DiskInner>,
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new()
    }
}

impl Disk {
    pub fn new() -> Self {
        Disk {
            inner: Mutex::new(DiskInner {
                pages: HashMap::new(),
                next_id: 0,
                stats: DiskStats::default(),
            }),
        }
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&self) -> PageId {
        let mut inner = self.inner.lock();
        let id = PageId(inner.next_id);
        inner.next_id += 1;
        inner.stats.allocations += 1;
        inner
            .pages
            .insert(id, Box::new(*Page::new().as_bytes().first_chunk().unwrap()));
        id
    }

    pub fn read(&self, id: PageId) -> Result<Page> {
        let mut inner = self.inner.lock();
        inner.stats.reads += 1;
        let bytes = inner
            .pages
            .get(&id)
            .ok_or_else(|| AimError::Storage(format!("read of unallocated page {id:?}")))?;
        Page::from_bytes(&bytes[..])
    }

    pub fn write(&self, id: PageId, page: &Page) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        let slot = inner
            .pages
            .get_mut(&id)
            .ok_or_else(|| AimError::Storage(format!("write to unallocated page {id:?}")))?;
        slot.copy_from_slice(page.as_bytes());
        Ok(())
    }

    pub fn num_pages(&self) -> usize {
        self.inner.lock().pages.len()
    }

    pub fn stats(&self) -> DiskStats {
        self.inner.lock().stats
    }

    /// Reset counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = DiskStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let d = Disk::new();
        let id = d.allocate();
        let mut p = d.read(id).unwrap();
        p.insert(b"abc").unwrap();
        d.write(id, &p).unwrap();
        let q = d.read(id).unwrap();
        assert_eq!(q.get(0).unwrap(), b"abc");
    }

    #[test]
    fn unallocated_page_errors() {
        let d = Disk::new();
        assert!(d.read(PageId(99)).is_err());
        assert!(d.write(PageId(99), &Page::new()).is_err());
    }

    #[test]
    fn stats_count_ios() {
        let d = Disk::new();
        let id = d.allocate();
        let _ = d.read(id).unwrap();
        let _ = d.read(id).unwrap();
        d.write(id, &Page::new()).unwrap();
        let s = d.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.allocations, 1);
        assert_eq!(s.total_ios(), 3);
        d.reset_stats();
        assert_eq!(d.stats().total_ios(), 0);
    }

    #[test]
    fn page_ids_are_unique() {
        let d = Disk::new();
        let a = d.allocate();
        let b = d.allocate();
        assert_ne!(a, b);
        assert_eq!(d.num_pages(), 2);
    }
}
