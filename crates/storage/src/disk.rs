//! Simulated disk: a page store with I/O accounting and a durable WAL
//! byte area.
//!
//! The tutorial's AI4DB techniques (knob tuning, index advice, KV design)
//! all reason about I/O cost. Rather than stubbing "assume a disk exists",
//! this is a real page store — just backed by memory — whose read/write
//! counters are the ground-truth signal those components learn from.
//!
//! [`PageStore`] is the boundary the buffer pool and WAL sit on. [`Disk`]
//! is the plain implementation; [`crate::fault::FaultInjector`] wraps any
//! `PageStore` to inject torn writes, I/O errors, and crash points for the
//! recovery harness.

use std::collections::HashMap;

use parking_lot::Mutex;

use aimdb_common::{AimError, LockRank, Result};

use crate::page::{Page, PageId, PAGE_SIZE};

/// The storage boundary: page I/O plus an append-only durable log area.
///
/// A `wal_append` models a synchronous log write (the bytes are durable
/// once the call returns `Ok`); `wal_bytes` models reading the log back at
/// recovery time and returns only what survived.
pub trait PageStore: Send + Sync {
    /// Allocate a fresh zeroed page and return its id.
    fn allocate(&self) -> Result<PageId>;
    fn read(&self, id: PageId) -> Result<Page>;
    fn write(&self, id: PageId, page: &Page) -> Result<()>;
    fn num_pages(&self) -> usize;
    fn stats(&self) -> DiskStats;
    /// Reset counters (between experiment phases).
    fn reset_stats(&self);
    /// Durably append bytes to the log area (an fsync'd write).
    fn wal_append(&self, bytes: &[u8]) -> Result<()>;
    /// The durable log byte stream, for recovery.
    fn wal_bytes(&self) -> Result<Vec<u8>>;
    /// Durable log length in bytes.
    fn wal_len(&self) -> usize;
    /// Truncate the log area to `len` bytes (discard a corrupt tail, or
    /// reset after a recovery checkpoint). No-op if already shorter.
    fn wal_truncate(&self, len: usize) -> Result<()>;
}

/// Cumulative I/O counters for a [`Disk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    pub reads: u64,
    pub writes: u64,
    pub allocations: u64,
    /// Durable log writes (WAL flushes reaching the disk).
    pub wal_appends: u64,
}

impl DiskStats {
    /// A simple cost metric: sequential-vs-random distinction is handled by
    /// higher-level cost models; the disk itself charges one unit per I/O.
    pub fn total_ios(&self) -> u64 {
        self.reads + self.writes
    }
}

struct DiskInner {
    pages: HashMap<PageId, Box<[u8; PAGE_SIZE]>>,
    wal: Vec<u8>,
    next_id: u64,
    stats: DiskStats,
}

/// An in-memory simulated disk. Thread-safe; all methods take `&self`.
pub struct Disk {
    inner: Mutex<DiskInner>,
}

impl Default for Disk {
    fn default() -> Self {
        Disk::new()
    }
}

impl Disk {
    pub fn new() -> Self {
        Disk {
            inner: Mutex::with_rank(
                DiskInner {
                    pages: HashMap::new(),
                    wal: Vec::new(),
                    next_id: 0,
                    stats: DiskStats::default(),
                },
                LockRank::DiskInner,
            ),
        }
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&self) -> Result<PageId> {
        let mut inner = self.inner.lock();
        let id = PageId(inner.next_id);
        inner.next_id += 1;
        inner.stats.allocations += 1;
        let bytes: Box<[u8; PAGE_SIZE]> = Page::new()
            .as_bytes()
            .try_into()
            .map(Box::new)
            .map_err(|_| AimError::Storage("page buffer has wrong length".into()))?;
        inner.pages.insert(id, bytes);
        Ok(id)
    }

    pub fn read(&self, id: PageId) -> Result<Page> {
        let mut inner = self.inner.lock();
        inner.stats.reads += 1;
        let bytes = inner
            .pages
            .get(&id)
            .ok_or_else(|| AimError::Storage(format!("read of unallocated page {id:?}")))?;
        Page::from_bytes(&bytes[..])
    }

    pub fn write(&self, id: PageId, page: &Page) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.stats.writes += 1;
        let slot = inner
            .pages
            .get_mut(&id)
            .ok_or_else(|| AimError::Storage(format!("write to unallocated page {id:?}")))?;
        slot.copy_from_slice(page.as_bytes());
        Ok(())
    }

    pub fn num_pages(&self) -> usize {
        self.inner.lock().pages.len()
    }

    pub fn stats(&self) -> DiskStats {
        self.inner.lock().stats
    }

    /// Reset counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = DiskStats::default();
    }

    /// Durably append bytes to the WAL area.
    pub fn wal_append(&self, bytes: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.stats.wal_appends += 1;
        inner.wal.extend_from_slice(bytes);
        Ok(())
    }

    /// The durable WAL byte stream.
    pub fn wal_bytes(&self) -> Result<Vec<u8>> {
        Ok(self.inner.lock().wal.clone())
    }

    pub fn wal_len(&self) -> usize {
        self.inner.lock().wal.len()
    }

    /// Truncate the WAL area to `len` bytes.
    pub fn wal_truncate(&self, len: usize) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.wal.truncate(len);
        Ok(())
    }
}

impl PageStore for Disk {
    fn allocate(&self) -> Result<PageId> {
        Disk::allocate(self)
    }

    fn read(&self, id: PageId) -> Result<Page> {
        Disk::read(self, id)
    }

    fn write(&self, id: PageId, page: &Page) -> Result<()> {
        Disk::write(self, id, page)
    }

    fn num_pages(&self) -> usize {
        Disk::num_pages(self)
    }

    fn stats(&self) -> DiskStats {
        Disk::stats(self)
    }

    fn reset_stats(&self) {
        Disk::reset_stats(self)
    }

    fn wal_append(&self, bytes: &[u8]) -> Result<()> {
        Disk::wal_append(self, bytes)
    }

    fn wal_bytes(&self) -> Result<Vec<u8>> {
        Disk::wal_bytes(self)
    }

    fn wal_len(&self) -> usize {
        Disk::wal_len(self)
    }

    fn wal_truncate(&self, len: usize) -> Result<()> {
        Disk::wal_truncate(self, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_write_roundtrip() {
        let d = Disk::new();
        let id = d.allocate().unwrap();
        let mut p = d.read(id).unwrap();
        p.insert(b"abc").unwrap();
        d.write(id, &p).unwrap();
        let q = d.read(id).unwrap();
        assert_eq!(q.get(0).unwrap(), b"abc");
    }

    #[test]
    fn unallocated_page_errors() {
        let d = Disk::new();
        assert!(d.read(PageId(99)).is_err());
        assert!(d.write(PageId(99), &Page::new()).is_err());
    }

    #[test]
    fn stats_count_ios() {
        let d = Disk::new();
        let id = d.allocate().unwrap();
        let _ = d.read(id).unwrap();
        let _ = d.read(id).unwrap();
        d.write(id, &Page::new()).unwrap();
        let s = d.stats();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.allocations, 1);
        assert_eq!(s.total_ios(), 3);
        d.reset_stats();
        assert_eq!(d.stats().total_ios(), 0);
    }

    #[test]
    fn page_ids_are_unique() {
        let d = Disk::new();
        let a = d.allocate().unwrap();
        let b = d.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(d.num_pages(), 2);
    }

    #[test]
    fn wal_area_appends_durably() {
        let d = Disk::new();
        assert_eq!(d.wal_len(), 0);
        d.wal_append(b"abc").unwrap();
        d.wal_append(b"def").unwrap();
        assert_eq!(d.wal_bytes().unwrap(), b"abcdef");
        assert_eq!(d.wal_len(), 6);
        assert_eq!(d.stats().wal_appends, 2);
    }
}
