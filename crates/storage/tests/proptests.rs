//! Property-based tests for the storage layer: the B+tree must behave like
//! `BTreeMap`, and row encoding must round-trip arbitrary values.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use aimdb_common::{Row, Value};
use aimdb_storage::codec::{decode_row, encode_row};
use aimdb_storage::{BTree, BufferPool, Disk, HeapFile};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 _-]{0,40}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    #[test]
    fn codec_roundtrip(values in prop::collection::vec(arb_value(), 0..20)) {
        let row = Row::new(values);
        let decoded = decode_row(&encode_row(&row)).unwrap();
        // NaN-aware equality comes from Value's total order
        prop_assert_eq!(decoded, row);
    }

    #[test]
    fn btree_matches_btreemap(ops in prop::collection::vec((any::<u8>(), 0i64..500), 1..400)) {
        let mut tree = BTree::with_fanout(4);
        let mut model = BTreeMap::new();
        for (op, key) in ops {
            match op % 3 {
                0 | 1 => {
                    tree.insert(key, key * 2);
                    model.insert(key, key * 2);
                }
                _ => {
                    prop_assert_eq!(tree.remove(&key), model.remove(&key));
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        for k in 0i64..500 {
            prop_assert_eq!(tree.get(&k), model.get(&k));
        }
        let all = tree.iter_all();
        let expect: Vec<(i64, i64)> = model.into_iter().collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn btree_range_matches_btreemap(
        keys in prop::collection::btree_set(0i64..1000, 0..300),
        lo in 0i64..1000,
        hi in 0i64..1000,
    ) {
        let mut tree = BTree::with_fanout(6);
        let mut model = BTreeMap::new();
        for &k in &keys {
            tree.insert(k, k);
            model.insert(k, k);
        }
        let got: Vec<i64> = tree.range(&lo, &hi).into_iter().map(|(k, _)| k).collect();
        let expect: Vec<i64> = if lo <= hi {
            model.range(lo..=hi).map(|(k, _)| *k).collect()
        } else {
            Vec::new() // inverted bound: SQL semantics — empty result
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn heap_preserves_rows(rows in prop::collection::vec(
        prop::collection::vec(arb_value(), 1..8), 1..100)) {
        let pool = Arc::new(BufferPool::new(Arc::new(Disk::new()), 8));
        let heap = HeapFile::new(pool);
        let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        let ids: Vec<_> = rows.iter().map(|r| heap.insert(r).unwrap()).collect();
        for (id, row) in ids.iter().zip(&rows) {
            prop_assert_eq!(heap.get(*id).unwrap().unwrap(), row.clone());
        }
        prop_assert_eq!(heap.len().unwrap(), rows.len());
    }
}
