//! Property-based tests for the storage layer: the B+tree must behave like
//! `BTreeMap`, and row encoding must round-trip arbitrary values.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use aimdb_common::{Row, Value};
use aimdb_storage::codec::{decode_row, encode_row};
use aimdb_storage::{BTree, BufferPool, Disk, HeapFile};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9 _-]{0,40}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    #[test]
    fn codec_roundtrip(values in prop::collection::vec(arb_value(), 0..20)) {
        let row = Row::new(values);
        let decoded = decode_row(&encode_row(&row)).unwrap();
        // NaN-aware equality comes from Value's total order
        prop_assert_eq!(decoded, row);
    }

    #[test]
    fn btree_matches_btreemap(ops in prop::collection::vec((any::<u8>(), 0i64..500), 1..400)) {
        let mut tree = BTree::with_fanout(4);
        let mut model = BTreeMap::new();
        for (op, key) in ops {
            match op % 3 {
                0 | 1 => {
                    tree.insert(key, key * 2);
                    model.insert(key, key * 2);
                }
                _ => {
                    prop_assert_eq!(tree.remove(&key), model.remove(&key));
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        for k in 0i64..500 {
            prop_assert_eq!(tree.get(&k), model.get(&k));
        }
        let all = tree.iter_all();
        let expect: Vec<(i64, i64)> = model.into_iter().collect();
        prop_assert_eq!(all, expect);
    }

    #[test]
    fn btree_range_matches_btreemap(
        keys in prop::collection::btree_set(0i64..1000, 0..300),
        lo in 0i64..1000,
        hi in 0i64..1000,
    ) {
        let mut tree = BTree::with_fanout(6);
        let mut model = BTreeMap::new();
        for &k in &keys {
            tree.insert(k, k);
            model.insert(k, k);
        }
        let got: Vec<i64> = tree.range(&lo, &hi).into_iter().map(|(k, _)| k).collect();
        let expect: Vec<i64> = if lo <= hi {
            model.range(lo..=hi).map(|(k, _)| *k).collect()
        } else {
            Vec::new() // inverted bound: SQL semantics — empty result
        };
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn heap_preserves_rows(rows in prop::collection::vec(
        prop::collection::vec(arb_value(), 1..8), 1..100)) {
        let pool = Arc::new(BufferPool::new(Arc::new(Disk::new()), 8));
        let heap = HeapFile::new(pool);
        let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        let ids: Vec<_> = rows.iter().map(|r| heap.insert(r).unwrap()).collect();
        for (id, row) in ids.iter().zip(&rows) {
            prop_assert_eq!(heap.get(*id).unwrap().unwrap(), row.clone());
        }
        prop_assert_eq!(heap.len().unwrap(), rows.len());
    }

    // The batched cursors feeding the vectorized executor must stream
    // exactly what the one-shot APIs materialize, for any chunk size.

    #[test]
    fn range_cursor_streams_like_range(
        keys in prop::collection::btree_set(0i64..600, 0..200),
        lo in 0i64..600,
        hi in 0i64..600,
        chunk in 1usize..50,
    ) {
        let mut tree = BTree::with_fanout(5);
        for &k in &keys {
            tree.insert(k, k * 3);
        }
        let mut cursor = tree.range_cursor(&lo, &hi);
        let mut streamed = Vec::new();
        while cursor.next_chunk(chunk, &mut streamed) > 0 {}
        prop_assert!(cursor.is_exhausted());
        prop_assert_eq!(streamed, tree.range(&lo, &hi));
    }

    #[test]
    fn heap_cursor_streams_like_scan(
        rows in prop::collection::vec(prop::collection::vec(arb_value(), 1..6), 1..120),
        delete_every in 2usize..7,
        min_rows in 1usize..40,
    ) {
        let pool = Arc::new(BufferPool::new(Arc::new(Disk::new()), 8));
        let heap = HeapFile::new(pool);
        let ids: Vec<_> = rows
            .iter()
            .map(|vals| heap.insert(&Row::new(vals.clone())).unwrap())
            .collect();
        for id in ids.iter().step_by(delete_every) {
            heap.delete(*id).unwrap();
        }
        let mut cursor = heap.scan_cursor();
        let mut streamed = Vec::new();
        while cursor.fill(min_rows, &mut streamed).unwrap() {}
        prop_assert_eq!(streamed, heap.scan().unwrap());
    }

    // The columnar fill path (decode straight into ColVec builders) must
    // agree value-for-value with the row-at-a-time scan, including after
    // deletions and for heterogeneous columns that demote to Mixed.
    #[test]
    fn heap_fill_batch_streams_like_scan(
        rows in prop::collection::vec(prop::collection::vec(arb_value(), 3..4), 1..120),
        delete_every in 2usize..7,
        min_rows in 1usize..40,
    ) {
        use aimdb_common::{ColVec, DataType};
        let pool = Arc::new(BufferPool::new(Arc::new(Disk::new()), 8));
        let heap = HeapFile::new(pool);
        let ids: Vec<_> = rows
            .iter()
            .map(|vals| heap.insert(&Row::new(vals.clone())).unwrap())
            .collect();
        for id in ids.iter().step_by(delete_every) {
            heap.delete(*id).unwrap();
        }
        let want = heap.scan().unwrap();
        let mut cursor = heap.scan_cursor();
        let mut cols = vec![
            ColVec::with_capacity(DataType::Int, 16),
            ColVec::with_capacity(DataType::Text, 16),
            ColVec::with_capacity(DataType::Float, 16),
        ];
        let mut total = 0;
        loop {
            let (n, more) = cursor.fill_batch(min_rows, &mut cols).unwrap();
            total += n;
            if !more {
                break;
            }
        }
        prop_assert_eq!(total, want.len());
        for (i, (_, r)) in want.iter().enumerate() {
            for (ci, col) in cols.iter().enumerate() {
                prop_assert_eq!(&col.value(i), r.get(ci));
            }
        }
    }

    // Interleave inserts and deletes against the BTreeMap model, probing
    // the streaming cursor (not just point lookups) at every step.
    #[test]
    fn btree_cursor_consistent_under_interleaved_ops(
        ops in prop::collection::vec((any::<u8>(), 0i64..300), 1..150),
        chunk in 1usize..20,
    ) {
        let mut tree = BTree::with_fanout(4);
        let mut model = BTreeMap::new();
        for (op, key) in ops {
            match op % 3 {
                0 | 1 => {
                    tree.insert(key, key);
                    model.insert(key, key);
                }
                _ => {
                    prop_assert_eq!(tree.remove(&key), model.remove(&key));
                }
            }
            let mut cursor = tree.range_cursor(&0, &299);
            let mut streamed = Vec::new();
            while cursor.next_chunk(chunk, &mut streamed) > 0 {}
            let expect: Vec<(i64, i64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(streamed, expect);
        }
    }
}

proptest! {
    // The morsel dispenser must partition any (page_count, morsel_pages)
    // into morsels that cover every page exactly once, in order, with no
    // overlap — including the degenerate 0-page and 1-page heaps and
    // oversized / zero morsel sizes.
    #[test]
    fn morsel_dispenser_partitions_exactly_once(
        page_count in 0usize..600,
        morsel_pages in 0usize..40,
    ) {
        use aimdb_storage::MorselDispenser;
        let d = MorselDispenser::new(page_count, morsel_pages);
        let mut morsels = Vec::new();
        while let Some(m) = d.claim() {
            morsels.push(m);
        }
        prop_assert!(d.claim().is_none());
        prop_assert_eq!(morsels.len(), d.morsel_count());
        let size = morsel_pages.max(1);
        let mut next_page = 0usize;
        for (i, m) in morsels.iter().enumerate() {
            prop_assert_eq!(m.index, i);
            // contiguous: each morsel starts where the previous ended
            prop_assert_eq!(m.start, next_page);
            prop_assert!(m.end > m.start, "empty morsel {m:?}");
            prop_assert!(m.end - m.start <= size);
            next_page = m.end;
        }
        // exact cover: the final morsel ends at page_count
        prop_assert_eq!(next_page, page_count.min(morsels.len() * size));
        prop_assert_eq!(next_page, page_count);
    }

    // Concurrent claims partition exactly like serial claims: union of
    // per-thread claims covers every page once with dense indices.
    #[test]
    fn morsel_dispenser_threaded_cover(
        page_count in 0usize..400,
        morsel_pages in 1usize..16,
        threads in 1usize..6,
    ) {
        use aimdb_storage::{Morsel, MorselDispenser};
        use std::sync::Mutex;
        let d = MorselDispenser::new(page_count, morsel_pages);
        let all: Mutex<Vec<Morsel>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    while let Some(m) = d.claim() {
                        if let Ok(mut v) = all.lock() {
                            v.push(m);
                        }
                    }
                });
            }
        });
        let mut got = all.into_inner().unwrap_or_default();
        got.sort_by_key(|m| m.start);
        let mut covered = vec![false; page_count];
        for (i, m) in got.iter().enumerate() {
            prop_assert_eq!(m.index, i);
            for (p, c) in covered.iter_mut().enumerate().take(m.end).skip(m.start) {
                prop_assert!(!*c, "page {} claimed twice", p);
                *c = true;
            }
        }
        prop_assert!(covered.into_iter().all(|c| c));
    }
}
