//! Statement fingerprints and the per-fingerprint statistics store.
//!
//! A fingerprint identifies a statement *shape*: the SQL text with every
//! literal replaced by a placeholder, whitespace collapsed, and keywords
//! case-folded. `INSERT INTO t VALUES (1, 'a')` and
//! `INSERT INTO t VALUES (2, 'b')` share a fingerprint; `SELECT a FROM t`
//! and `SELECT b FROM t` do not. The workload-as-fingerprints view is the
//! input representation self-driving components consume: the monitor
//! (E11) reads per-shape latency tails and wait profiles, and the knob
//! tuner's objective penalizes tail regressions per shape rather than on
//! the blended average.
//!
//! The store is bounded: at most [`StatementStore::DEFAULT_CAPACITY`]
//! distinct shapes are tracked, evicting the least-called entry when a
//! new shape arrives at capacity (workloads are Zipfian; the tail of
//! one-off shapes is the part that is safe to forget).

use std::collections::HashMap;

use parking_lot::Mutex;

use aimdb_common::{LockRank, WaitSet};
use aimdb_trace::{Histogram, HistogramSnapshot};

/// Normalize SQL into its shape: literals become `?`, whitespace
/// collapses to single spaces, and text outside string literals is
/// lowercased. Deterministic and allocation-light (one output String).
pub fn normalize(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut pending_space = false;
    // emit one pending space before the next token, collapsing runs
    macro_rules! flush_space {
        () => {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_whitespace() {
            pending_space = true;
            i += 1;
            continue;
        }
        if c == '\'' {
            // string literal: skip to the closing quote ('' escapes)
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\'' {
                    if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                i += 1;
            }
            flush_space!();
            out.push('?');
            continue;
        }
        if c.is_ascii_digit()
            || ((c == '-' || c == '+')
                && i + 1 < bytes.len()
                && bytes[i + 1].is_ascii_digit()
                && ends_in_operand_position(&out))
        {
            // numeric literal: sign (when not a binary operator), digits,
            // optional fraction/exponent
            i += 1;
            while i < bytes.len() {
                let d = bytes[i] as char;
                let exp_sign = (d == '-' || d == '+')
                    && i > 0
                    && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E');
                if d.is_ascii_digit() || d == '.' || d == 'e' || d == 'E' || exp_sign {
                    i += 1;
                } else {
                    break;
                }
            }
            flush_space!();
            out.push('?');
            continue;
        }
        if c.is_ascii_alphanumeric() || c == '_' {
            // identifier / keyword: case-fold
            flush_space!();
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_alphanumeric() || d == '_' {
                    out.push(d.to_ascii_lowercase());
                    i += 1;
                } else {
                    break;
                }
            }
            continue;
        }
        // punctuation / operators pass through verbatim
        flush_space!();
        out.push(c);
        i += 1;
    }
    out
}

/// After this prefix, is `-`/`+` a sign (operand position) rather than a
/// binary operator? True after `(`, `,`, `=`, comparison operators,
/// arithmetic operators, or at the very start — conservative enough that
/// `a - 1` keeps its operator while `(-1)` and `= -1` fold the sign into
/// the literal. Either way the literal digits become `?`, so a
/// misclassified sign changes the shape only between two *sign* spellings
/// of the same query, never between distinct statements.
fn ends_in_operand_position(out: &str) -> bool {
    match out.trim_end().chars().last() {
        None => true,
        Some(c) => matches!(c, '(' | ',' | '=' | '<' | '>' | '+' | '-' | '*' | '/'),
    }
}

/// 64-bit FNV-1a over the normalized statement text: stable across runs
/// and platforms (no `RandomState`), cheap, and collision-resistant
/// enough for workload-shape cardinalities (hundreds of shapes).
pub fn fingerprint(sql: &str) -> u64 {
    fnv1a(normalize(sql).as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Aggregated statistics for one statement shape.
#[derive(Debug, Clone)]
pub struct StatementStat {
    /// The shape's fingerprint (FNV-1a of the normalized text).
    pub fingerprint: u64,
    /// The normalized statement text (first-seen spelling, literals
    /// already replaced by `?`).
    pub normalized: String,
    pub calls: u64,
    pub errors: u64,
    pub rows: u64,
    /// Total optimizer cost units charged across calls.
    pub cost_units: f64,
    /// Total wall nanoseconds across calls.
    pub total_ns: u64,
    /// Latency distribution across calls, in nanoseconds (the
    /// log-linear histogram has no sub-1.0 resolution, so seconds
    /// would flatten every sub-second statement into one bucket).
    pub latency: HistogramSnapshot,
    /// Blocked time by wait class, summed across calls.
    pub waits: WaitSet,
}

impl StatementStat {
    /// Mean latency in seconds.
    pub fn mean_latency_secs(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            (self.total_ns as f64 / 1e9) / self.calls as f64
        }
    }
}

struct Entry {
    normalized: String,
    calls: u64,
    errors: u64,
    rows: u64,
    cost_units: f64,
    total_ns: u64,
    latency: Histogram,
    waits: WaitSet,
}

/// Bounded, lock-ranked store of per-fingerprint statement statistics.
pub struct StatementStore {
    inner: Mutex<HashMap<u64, Entry>>,
    capacity: usize,
}

impl StatementStore {
    /// Distinct shapes tracked before least-called eviction kicks in.
    pub const DEFAULT_CAPACITY: usize = 512;

    pub fn new(capacity: usize) -> Self {
        StatementStore {
            inner: Mutex::with_rank(HashMap::new(), LockRank::StatementStats),
            capacity: capacity.max(1),
        }
    }

    /// Record one finished statement under its shape. `normalized` is
    /// stored on first sight; later calls only bump counters.
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &self,
        fp: u64,
        normalized: &str,
        elapsed_ns: u64,
        rows: u64,
        cost_units: f64,
        waits: &WaitSet,
        error: bool,
    ) {
        let mut g = self.inner.lock();
        if !g.contains_key(&fp) && g.len() >= self.capacity {
            // evict the least-called shape (ties: smaller fingerprint) so
            // hot shapes survive Zipfian churn
            if let Some(&victim) = g.iter().min_by_key(|(k, e)| (e.calls, **k)).map(|(k, _)| k) {
                g.remove(&victim);
            }
        }
        let e = g.entry(fp).or_insert_with(|| Entry {
            normalized: normalized.to_string(),
            calls: 0,
            errors: 0,
            rows: 0,
            cost_units: 0.0,
            total_ns: 0,
            latency: Histogram::new(),
            waits: WaitSet::default(),
        });
        e.calls += 1;
        if error {
            e.errors += 1;
        }
        e.rows += rows;
        e.cost_units += cost_units;
        e.total_ns += elapsed_ns;
        e.latency.record(elapsed_ns as f64);
        e.waits.merge(waits);
    }

    /// Distinct shapes currently tracked.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every tracked shape, most-called first (ties: by
    /// fingerprint, so the order is deterministic).
    pub fn snapshot(&self) -> Vec<StatementStat> {
        let g = self.inner.lock();
        let mut out: Vec<StatementStat> = g
            .iter()
            .map(|(&fp, e)| StatementStat {
                fingerprint: fp,
                normalized: e.normalized.clone(),
                calls: e.calls,
                errors: e.errors,
                rows: e.rows,
                cost_units: e.cost_units,
                total_ns: e.total_ns,
                latency: e.latency.snapshot(),
                waits: e.waits,
            })
            .collect();
        drop(g);
        out.sort_by(|a, b| {
            b.calls
                .cmp(&a.calls)
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        });
        out
    }
}

impl Default for StatementStore {
    fn default() -> Self {
        StatementStore::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_normalize_away() {
        let a = normalize("SELECT * FROM t WHERE id = 42 AND name = 'bob'");
        let b = normalize("select *  from T where ID=7 and name='alice'");
        assert_eq!(a, "select * from t where id = ? and name = ?");
        // spacing around `=` differs between the spellings, but the
        // token stream (and thus the fingerprint input) is whitespace-
        // collapsed the same way literals are folded
        assert_eq!(
            fingerprint("SELECT * FROM t WHERE id = 42 AND name = 'bob'"),
            fingerprint("SELECT * FROM t WHERE id = 77 AND name = 'x''y'"),
        );
        assert_eq!(b, "select * from t where id=? and name=?");
    }

    #[test]
    fn distinct_shapes_do_not_collide() {
        let shapes = [
            "SELECT a FROM t",
            "SELECT b FROM t",
            "SELECT a FROM u",
            "SELECT a, b FROM t",
            "INSERT INTO t VALUES (1)",
            "UPDATE t SET a = 1 WHERE b = 2",
            "DELETE FROM t WHERE a = 1",
        ];
        let mut fps: Vec<u64> = shapes.iter().map(|s| fingerprint(s)).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), shapes.len());
    }

    #[test]
    fn numeric_and_negative_literals_fold() {
        assert_eq!(
            normalize("SELECT x FROM t WHERE a = -3.5e-2 AND b = +7"),
            "select x from t where a = ? and b = ?"
        );
        // binary minus between identifiers survives
        assert_eq!(normalize("SELECT a - b FROM t"), "select a - b from t");
        // ...but a sign after a comparison folds into the literal
        assert_eq!(
            normalize("SELECT a FROM t WHERE a > -5"),
            "select a from t where a > ?"
        );
    }

    #[test]
    fn store_is_bounded_and_evicts_least_called() {
        let store = StatementStore::new(3);
        // hot shape observed many times
        for _ in 0..10 {
            store.observe(1, "hot", 1_000, 1, 1.0, &WaitSet::default(), false);
        }
        store.observe(2, "warm", 1_000, 1, 1.0, &WaitSet::default(), false);
        store.observe(2, "warm", 1_000, 1, 1.0, &WaitSet::default(), false);
        store.observe(3, "cold", 1_000, 1, 1.0, &WaitSet::default(), false);
        assert_eq!(store.len(), 3);
        // a new shape evicts the least-called (fp 3)
        store.observe(4, "new", 1_000, 1, 1.0, &WaitSet::default(), false);
        assert_eq!(store.len(), 3);
        let snap = store.snapshot();
        let fps: Vec<u64> = snap.iter().map(|s| s.fingerprint).collect();
        assert_eq!(fps, vec![1, 2, 4], "most-called first, cold evicted");
        assert_eq!(snap[0].calls, 10);
    }

    #[test]
    fn snapshot_carries_quantiles_and_waits() {
        let store = StatementStore::new(8);
        let mut w = WaitSet::default();
        w.add(aimdb_common::WaitClass::WalFsync, 500, 1);
        for i in 1..=100u64 {
            store.observe(9, "q", i * 1_000_000, 2, 0.5, &w, i % 10 == 0);
        }
        let snap = store.snapshot();
        assert_eq!(snap.len(), 1);
        let s = &snap[0];
        assert_eq!(s.calls, 100);
        assert_eq!(s.errors, 10);
        assert_eq!(s.rows, 200);
        assert_eq!(
            s.waits.get(aimdb_common::WaitClass::WalFsync),
            (50_000, 100)
        );
        // p50 of 1..=100 ms (in ns) is ~50ms within histogram bracket error
        let p50 = s.latency.p50;
        assert!((4.0e7..=6.0e7).contains(&p50), "p50 {p50}");
        assert_eq!(s.latency.count, 100);
        assert!(s.mean_latency_secs() > 0.0);
    }
}
