//! Multi-version concurrency control: snapshot isolation primitives.
//!
//! Rows carry begin/end timestamps ([`VersionMeta`]); a transaction reads
//! through a [`Snapshot`] frozen at begin time, so readers never block
//! writers and writers never block readers. Writes claim the version they
//! supersede under first-updater-wins: the second transaction to touch a
//! row version gets [`aimdb_common::AimError::WriteConflict`] and can
//! retry on a fresh snapshot. Commit stamps every version in the
//! transaction's write-set with one commit timestamp under the global
//! [`TxnRuntime::commit_lock`], *after* the commit record is durable in
//! the WAL — visibility implies durability.
//!
//! Rows that predate MVCC (recovery rebuilds, checkpoint restores) carry
//! no metadata and read as committed-at-timestamp-zero; they acquire a
//! meta lazily when first claimed. A quiescent checkpoint vacuums dead
//! versions and folds committed metas back into this legacy state, so the
//! version table stays bounded by the write volume between checkpoints.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard};

use aimdb_common::{wait, LockRank};
use aimdb_storage::RowId;

/// Commit timestamps are a monotone counter separate from transaction
/// ids: ids order *begins*, commit timestamps order *visibility*.
pub type CommitTs = u64;

/// A transaction's frozen read view: everything committed at or before
/// `read_ts`, plus the transaction's own uncommitted writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// The owning transaction id (own writes are visible).
    pub txn: u64,
    /// Highest commit timestamp visible to this transaction.
    pub read_ts: CommitTs,
}

/// Version metadata for one heap row. `begin_*` describes the insert
/// that created the version, `end_*` the delete/update that superseded
/// it. A `None` timestamp with a `Some` transaction means the operation
/// is still uncommitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionMeta {
    pub begin_txn: u64,
    pub begin_ts: Option<CommitTs>,
    pub end_txn: Option<u64>,
    pub end_ts: Option<CommitTs>,
}

impl VersionMeta {
    /// A version just inserted by `txn`, not yet committed.
    pub fn created_by(txn: u64) -> Self {
        VersionMeta {
            begin_txn: txn,
            begin_ts: None,
            end_txn: None,
            end_ts: None,
        }
    }

    /// The implicit meta of a row that predates MVCC bookkeeping:
    /// committed at timestamp zero, never superseded.
    pub fn legacy() -> Self {
        VersionMeta {
            begin_txn: 0,
            begin_ts: Some(0),
            end_txn: None,
            end_ts: None,
        }
    }

    /// Snapshot-isolation visibility: created no later than the snapshot
    /// (or by the snapshot's own transaction) and not yet superseded from
    /// the snapshot's point of view.
    pub fn visible_to(&self, s: &Snapshot) -> bool {
        let created = match self.begin_ts {
            Some(ts) => ts <= s.read_ts,
            None => self.begin_txn == s.txn,
        };
        if !created {
            return false;
        }
        let ended = match self.end_ts {
            Some(ts) => ts <= s.read_ts,
            None => self.end_txn == Some(s.txn),
        };
        !ended
    }

    /// The latest-committed filter used by readers without a snapshot
    /// (auto-commit SELECTs, benches): committed and not committed-dead.
    /// An uncommitted claim by someone else does not hide the version.
    pub fn latest_committed(&self) -> bool {
        self.begin_ts.is_some() && self.end_ts.is_none()
    }
}

/// A resolved row-visibility filter for one scan: the table's live
/// version metas cloned once (rows without a meta are legacy-committed
/// and always pass), the heap insertion watermark at resolve time, and
/// the reader's snapshot if it has one. Per-row checks take no lock, so
/// morsel workers share one `RowVis` freely.
///
/// The watermark closes the insert race: a row that reaches the heap
/// after the metas were cloned would otherwise read as meta-less —
/// i.e. legacy-committed — and leak an uncommitted insert into the
/// scan. Any row at or beyond the watermark was born after this filter
/// resolved and is invisible outright (it cannot be committed within
/// the reader's frozen view either way).
#[derive(Debug, Clone)]
pub struct RowVis {
    metas: HashMap<RowId, VersionMeta>,
    /// Last heap page and its slot count when the filter was resolved.
    /// `None` means the heap was empty.
    watermark: Option<(aimdb_storage::PageId, u16)>,
    snap: Option<Snapshot>,
}

impl RowVis {
    pub fn new(
        metas: HashMap<RowId, VersionMeta>,
        watermark: Option<(aimdb_storage::PageId, u16)>,
        snap: Option<Snapshot>,
    ) -> Self {
        RowVis {
            metas,
            watermark,
            snap,
        }
    }

    /// Should the row at `rid` be visible to this reader?
    pub fn allows(&self, rid: RowId) -> bool {
        match self.watermark {
            // the heap was empty when this filter resolved
            None => return false,
            Some((last_page, slots)) => {
                if rid.page > last_page || (rid.page == last_page && rid.slot >= slots) {
                    return false;
                }
            }
        }
        match self.metas.get(&rid) {
            None => true,
            Some(m) => match &self.snap {
                Some(s) => m.visible_to(s),
                None => m.latest_committed(),
            },
        }
    }
}

/// One entry in a transaction's write-set, in execution order. Rollback
/// walks it in reverse; commit stamps every entry with the commit ts.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// `txn` inserted the version at `rid` (INSERT, or the new version
    /// of an UPDATE).
    Created { table: String, rid: RowId },
    /// `txn` claimed the version at `rid` as superseded (DELETE, or the
    /// old version of an UPDATE).
    Ended { table: String, rid: RowId },
}

/// Per-transaction runtime state: the frozen read timestamp and the
/// write-set accumulated so far.
#[derive(Debug, Default)]
pub struct TxnInfo {
    pub read_ts: CommitTs,
    pub writes: Vec<WriteOp>,
}

/// Shared MVCC state for one database: the commit-timestamp counter, the
/// commit/checkpoint serialization lock, and the active-transaction map.
///
/// Registration takes `commit_lock`, so a checkpoint that holds the lock
/// and observes `active_count() == 0` is truly quiescent: no transaction
/// is in flight and none can start until the lock is released.
pub struct TxnRuntime {
    /// Last published commit timestamp. Stamp-then-bump under
    /// `commit_lock` makes a whole transaction visible atomically.
    commit_ts: AtomicU64,
    /// Serializes commit stamping, registration and checkpoints.
    pub commit_lock: Mutex<()>,
    active: Mutex<HashMap<u64, TxnInfo>>,
    /// Read timestamps of plain-statement readers in flight, with a
    /// refcount per timestamp. They hold no registered transaction, but
    /// their frozen snapshots may still need old versions — the vacuum
    /// horizon is the minimum over this set.
    readers: Mutex<HashMap<CommitTs, usize>>,
}

impl Default for TxnRuntime {
    fn default() -> Self {
        TxnRuntime::new()
    }
}

impl TxnRuntime {
    pub fn new() -> Self {
        TxnRuntime {
            commit_ts: AtomicU64::new(0),
            commit_lock: Mutex::with_rank((), LockRank::CommitLock),
            active: Mutex::with_rank(HashMap::new(), LockRank::TxnActive),
            readers: Mutex::with_rank(HashMap::new(), LockRank::TxnReaders),
        }
    }

    /// The single place the active-transaction map is locked; every use
    /// below goes through it, so its rank is declared exactly once.
    fn active(&self) -> MutexGuard<'_, HashMap<u64, TxnInfo>> {
        self.active.lock()
    }

    /// Highest commit timestamp whose transaction is fully visible.
    pub fn last_commit_ts(&self) -> CommitTs {
        // ordering: Acquire — pairs with the Release in
        // publish_commit_ts; a reader that observes ts T must also see
        // every version stamp the committer wrote before publishing T.
        self.commit_ts.load(Ordering::Acquire)
    }

    /// Register `txn` as active and freeze its snapshot. Serialized with
    /// commits and checkpoints via `commit_lock`.
    pub fn register(&self, txn: u64) -> Snapshot {
        // Serialization against in-flight commits is a SnapshotRegister
        // wait (the lock acquire itself also counts as LockAcquire when
        // contended; exclusive attribution keeps the two disjoint).
        let wait = wait::enter(wait::WaitClass::SnapshotRegister);
        let _g = self.commit_lock.lock();
        drop(wait);
        let read_ts = self.last_commit_ts();
        self.active().insert(
            txn,
            TxnInfo {
                read_ts,
                writes: Vec::new(),
            },
        );
        Snapshot { txn, read_ts }
    }

    /// The snapshot of an active transaction, if it is registered.
    pub fn snapshot_of(&self, txn: u64) -> Option<Snapshot> {
        self.active().get(&txn).map(|info| Snapshot {
            txn,
            read_ts: info.read_ts,
        })
    }

    /// Append one write to `txn`'s write-set (no-op if `txn` is not
    /// registered — defensive, should not happen).
    pub fn record_write(&self, txn: u64, op: WriteOp) {
        if let Some(info) = self.active().get_mut(&txn) {
            info.writes.push(op);
        }
    }

    /// Deregister `txn`, returning its write-set for stamping (commit)
    /// or reversal (rollback).
    pub fn take(&self, txn: u64) -> Option<TxnInfo> {
        self.active().remove(&txn)
    }

    /// Number of registered in-flight transactions.
    pub fn active_count(&self) -> usize {
        self.active().len()
    }

    /// Publish a new commit timestamp. The caller must hold
    /// `commit_lock` and have stamped every write-set entry first.
    pub fn publish_commit_ts(&self, cts: CommitTs) {
        // ordering: Release — pairs with the Acquire in last_commit_ts;
        // all version stamps written before this store become visible to
        // any thread that reads ts >= cts.
        self.commit_ts.store(cts, Ordering::Release);
    }

    /// Register a plain-statement reader and freeze its read timestamp;
    /// pair with [`TxnRuntime::reader_exit`]. Taking `commit_lock`
    /// makes registration atomic against commit publication and the
    /// checkpoint's horizon computation: a reader is either fully
    /// visible to the vacuum or strictly newer than everything it
    /// removes.
    pub fn reader_enter(&self) -> CommitTs {
        // See register(): commit_lock serialization is a
        // SnapshotRegister wait.
        let wait = wait::enter(wait::WaitClass::SnapshotRegister);
        let _g = self.commit_lock.lock();
        drop(wait);
        let ts = self.last_commit_ts();
        *self.readers.lock().entry(ts).or_insert(0) += 1;
        ts
    }

    /// Statement-reader exit (see [`TxnRuntime::reader_enter`]).
    pub fn reader_exit(&self, ts: CommitTs) {
        let mut readers = self.readers.lock();
        if let Some(n) = readers.get_mut(&ts) {
            *n -= 1;
            if *n == 0 {
                readers.remove(&ts);
            }
        }
    }

    /// Plain-statement readers currently in flight.
    pub fn readers_in_flight(&self) -> usize {
        self.readers.lock().values().sum()
    }

    /// The vacuum horizon: every version superseded at or before this
    /// timestamp is invisible to all current snapshots (registered
    /// transactions and plain-statement readers) and to every future
    /// one, so the checkpoint may physically remove it.
    pub fn vacuum_horizon(&self) -> CommitTs {
        let last = self.last_commit_ts();
        let rmin = self.readers.lock().keys().min().copied().unwrap_or(last);
        let amin = self
            .active()
            .values()
            .map(|i| i.read_ts)
            .min()
            .unwrap_or(last);
        last.min(rmin).min(amin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u64) -> RowId {
        RowId {
            page: aimdb_storage::PageId(n),
            slot: 0,
        }
    }

    #[test]
    fn legacy_rows_visible_everywhere() {
        let m = VersionMeta::legacy();
        assert!(m.latest_committed());
        assert!(m.visible_to(&Snapshot { txn: 9, read_ts: 0 }));
    }

    #[test]
    fn uncommitted_insert_visible_only_to_owner() {
        let m = VersionMeta::created_by(7);
        assert!(m.visible_to(&Snapshot { txn: 7, read_ts: 3 }));
        assert!(!m.visible_to(&Snapshot { txn: 8, read_ts: 3 }));
        assert!(!m.latest_committed());
    }

    #[test]
    fn committed_versions_respect_read_ts() {
        let mut m = VersionMeta::created_by(7);
        m.begin_ts = Some(5);
        assert!(m.visible_to(&Snapshot { txn: 1, read_ts: 5 }));
        assert!(!m.visible_to(&Snapshot { txn: 1, read_ts: 4 }));
        // committed delete at ts 8 hides the row only from ts >= 8
        m.end_txn = Some(9);
        m.end_ts = Some(8);
        assert!(m.visible_to(&Snapshot { txn: 1, read_ts: 7 }));
        assert!(!m.visible_to(&Snapshot { txn: 1, read_ts: 8 }));
        assert!(!m.latest_committed());
    }

    #[test]
    fn uncommitted_delete_hides_only_from_owner() {
        let mut m = VersionMeta::legacy();
        m.end_txn = Some(4);
        assert!(!m.visible_to(&Snapshot { txn: 4, read_ts: 9 }));
        assert!(m.visible_to(&Snapshot { txn: 5, read_ts: 9 }));
        // latest-committed readers still see it until the delete commits
        assert!(m.latest_committed());
    }

    #[test]
    fn row_vis_defaults_to_legacy() {
        // watermark admits pages 0..=9 fully
        let wm = Some((aimdb_storage::PageId(9), u16::MAX));
        let vis = RowVis::new(HashMap::new(), wm, None);
        assert!(vis.allows(rid(1)));
        let mut metas = HashMap::new();
        metas.insert(rid(2), VersionMeta::created_by(3));
        let vis = RowVis::new(metas, wm, None);
        assert!(vis.allows(rid(1)));
        assert!(!vis.allows(rid(2)));
    }

    #[test]
    fn row_vis_watermark_excludes_rows_born_mid_scan() {
        // resolve-time heap: last page 5 with 2 slots used
        let wm = Some((aimdb_storage::PageId(5), 2));
        let vis = RowVis::new(HashMap::new(), wm, None);
        assert!(vis.allows(rid(4)));
        assert!(vis.allows(RowId {
            page: aimdb_storage::PageId(5),
            slot: 1,
        }));
        // appended to the last page after resolve: invisible
        assert!(!vis.allows(RowId {
            page: aimdb_storage::PageId(5),
            slot: 2,
        }));
        // a page allocated after resolve: invisible
        assert!(!vis.allows(rid(6)));
        // empty heap at resolve time admits nothing
        let vis = RowVis::new(HashMap::new(), None, None);
        assert!(!vis.allows(rid(0)));
    }

    #[test]
    fn runtime_register_take_roundtrip() {
        let rt = TxnRuntime::new();
        let snap = rt.register(11);
        assert_eq!(snap.read_ts, 0);
        assert_eq!(rt.active_count(), 1);
        rt.record_write(
            11,
            WriteOp::Created {
                table: "t".into(),
                rid: rid(1),
            },
        );
        let info = rt.take(11).unwrap();
        assert_eq!(info.writes.len(), 1);
        assert_eq!(rt.active_count(), 0);
        assert!(rt.take(11).is_none());
    }

    #[test]
    fn commit_ts_publishes_monotone() {
        let rt = TxnRuntime::new();
        {
            let _g = rt.commit_lock.lock();
            rt.publish_commit_ts(1);
        }
        assert_eq!(rt.last_commit_ts(), 1);
        let snap = rt.register(2);
        assert_eq!(snap.read_ts, 1);
    }
}
