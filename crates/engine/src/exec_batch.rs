//! Streaming vectorized executor.
//!
//! The batch pipeline mirrors the row executor operator for operator,
//! but operators *pull* fixed-size column batches ([`Batch`]) instead of
//! materializing whole row sets: scans fill batches straight from the
//! storage cursors, predicates produce selection vectors that are
//! applied with `gather`, and expressions run through the compiled
//! kernels in `aimdb_sql::vexpr`. Pipeline-breaking operators (hash
//! join build, aggregate, sort) still drain their inputs — exactly like
//! the row executor — but consume them batch-wise and stream their
//! output back out in batches.
//!
//! Result equivalence with [`crate::exec::execute`] is enforced by the
//! differential oracle (`tests/exec_differential.rs`); output *order*
//! matches the row executor on every operator so ORDER BY queries can
//! be compared positionally:
//! - scans emit heap page order / index key order,
//! - hash join builds on the smaller input and emits probe order ×
//!   build-insertion order,
//! - aggregation emits first-seen group order,
//! - sort is stable over the same precomputed keys.
//!
//! # Morsel-driven parallelism
//!
//! [`PhysOp::Exchange`] nodes (inserted by the optimizer over maximal
//! scan→filter→project regions) become a scoped worker pool when
//! `workers > 1`: workers pull fixed page-range *morsels* from a shared
//! atomic [`MorselDispenser`] and run the compiled region pipeline on
//! each. Per-morsel outputs are merged on the main thread *in morsel
//! order*, which reproduces the serial scan's row order exactly — so
//! results are bit-identical at any thread count. Aggregates directly
//! above an exchange are fused into the workers (partial aggregation)
//! only when merging partial states is exact: COUNT/MIN/MAX always,
//! SUM/AVG only over base-table Int columns (exact in f64); float sums
//! stay on the serial fold path, whose element-wise row order does not
//! depend on batch or morsel boundaries.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use aimdb_common::{wait, AimError, Batch, Clock, ColVec, DataType, Result, Row, Schema, Value};
use aimdb_sql::ast::AggFunc;
use aimdb_sql::expr::{Expr, ScalarFns};
use aimdb_sql::logical::AggExpr;
use aimdb_sql::vexpr::{self, VExpr};

use crate::catalog::Table;
use crate::exec::{AggState, ExecContext, OpStats, WorkerSpan, MAIN_WORKER};
use crate::mvcc::RowVis;
use crate::plan::{PhysOp, PhysicalPlan};
use aimdb_storage::{HeapScanCursor, Morsel, MorselDispenser, MorselSource, RowId};

/// Execute a physical plan to completion through the batch pipeline,
/// pulling `batch_size`-row batches through the operator tree. Serial:
/// exchange nodes degenerate to pass-throughs.
pub fn execute_batched(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    batch_size: usize,
) -> Result<Vec<Row>> {
    execute_batched_parallel(plan, ctx, batch_size, 1)
}

/// Execute a physical plan with up to `workers` morsel threads inside
/// each exchange region. `workers <= 1` is exactly [`execute_batched`];
/// any worker count produces identical results.
pub fn execute_batched_parallel(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    batch_size: usize,
    workers: usize,
) -> Result<Vec<Row>> {
    let bs = batch_size.max(1);
    let workers = workers.clamp(1, 64);
    let mut next_id = 0;
    let mut root = build(plan, ctx, bs, workers, &mut next_id)?;
    let mut out = Vec::new();
    while let Some(b) = root.next()? {
        out.extend(b.to_rows());
    }
    Ok(out)
}

/// A pull-based vectorized operator. `next` returns the next non-empty
/// output batch, or `None` once exhausted.
trait BatchOp {
    fn next(&mut self) -> Result<Option<Batch>>;
}

/// Build the operator tree for a plan, wrapping each node with the
/// per-operator instrumentation that feeds `Metrics::operator_stats`.
/// Nodes are numbered preorder (root = 0, children left to right) via
/// `next_id`, matching the line order of `PhysicalPlan::explain`.
fn build<'p>(
    plan: &'p PhysicalPlan,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    workers: usize,
    next_id: &mut usize,
) -> Result<Box<dyn BatchOp + 'p>> {
    let node = *next_id;
    *next_id += 1;
    let (name, op): (&'static str, Box<dyn BatchOp + 'p>) = match &plan.op {
        PhysOp::SeqScan { table, filter, .. } => {
            let t = ctx.catalog.table(table)?;
            let filter = filter
                .as_ref()
                .map(|f| vexpr::compile(f, &plan.schema))
                .transpose()?;
            (
                "seq_scan",
                Box::new(SeqScanOp {
                    cursor: t.heap.scan_cursor(),
                    vis: t.visibility(ctx.snapshot())?,
                    schema: &plan.schema,
                    filter,
                    ctx,
                    bs,
                    done: false,
                }),
            )
        }
        PhysOp::IndexScan {
            table,
            column,
            lo,
            hi,
            filter,
            ..
        } => {
            let t = ctx.catalog.table(table)?;
            let idx = t.index_on(column).ok_or_else(|| {
                AimError::Execution(format!("planned index on {table}.{column} missing"))
            })?;
            let mut rids = match (lo, hi) {
                (Some(l), Some(h)) if l == h => idx.lookup(l),
                (l, h) => {
                    let lo_v = l.clone().unwrap_or(Value::Float(f64::NEG_INFINITY));
                    let hi_v = h.clone().unwrap_or(Value::Float(f64::INFINITY));
                    idx.range_batched(&lo_v, &hi_v, bs)
                }
            };
            let vis = t.visibility(ctx.snapshot())?;
            rids.retain(|r| vis.allows(*r));
            ctx.charge(3.0 + rids.len() as f64 * 0.06);
            let filter = filter
                .as_ref()
                .map(|f| vexpr::compile(f, &plan.schema))
                .transpose()?;
            (
                "index_scan",
                Box::new(IndexScanOp {
                    table: t,
                    rids,
                    pos: 0,
                    schema: &plan.schema,
                    filter,
                    ctx,
                    bs,
                }),
            )
        }
        PhysOp::Filter { input, predicate } => {
            let pred = vexpr::compile(predicate, &input.schema)?;
            (
                "filter",
                Box::new(FilterOp {
                    input: build(input, ctx, bs, workers, next_id)?,
                    pred,
                    ctx,
                }),
            )
        }
        PhysOp::Project { input, exprs } => {
            let compiled = exprs
                .iter()
                .map(|e| vexpr::compile(e, &input.schema))
                .collect::<Result<Vec<_>>>()?;
            (
                "project",
                Box::new(ProjectOp {
                    input: build(input, ctx, bs, workers, next_id)?,
                    exprs: compiled,
                    ctx,
                }),
            )
        }
        PhysOp::NestedLoopJoin { left, right, on } => {
            let on = on
                .as_ref()
                .map(|p| vexpr::compile(p, &plan.schema))
                .transpose()?;
            (
                "nested_loop_join",
                Box::new(NestedLoopJoinOp {
                    left: Some(build(left, ctx, bs, workers, next_id)?),
                    right: Some(build(right, ctx, bs, workers, next_id)?),
                    on,
                    out_schema: &plan.schema,
                    ctx,
                    bs,
                    lrows: Vec::new(),
                    rrows: Vec::new(),
                    li: 0,
                    ri: 0,
                }),
            )
        }
        PhysOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let lkey = vexpr::compile(left_key, &left.schema)?;
            let rkey = vexpr::compile(right_key, &right.schema)?;
            let residual = residual
                .as_ref()
                .map(|r| vexpr::compile(r, &plan.schema))
                .transpose()?;
            (
                "hash_join",
                Box::new(HashJoinOp {
                    left: Some(build(left, ctx, bs, workers, next_id)?),
                    right: Some(build(right, ctx, bs, workers, next_id)?),
                    lkey,
                    rkey,
                    residual,
                    out_schema: &plan.schema,
                    ctx,
                    bs,
                    build_rows: Vec::new(),
                    table: HashMap::new(),
                    probe_rows: Vec::new(),
                    probe_keys: Vec::new(),
                    build_is_left: true,
                    probe_pos: 0,
                }),
            )
        }
        PhysOp::Aggregate {
            input,
            group_exprs,
            aggs,
        } => {
            let group = group_exprs
                .iter()
                .map(|g| vexpr::compile(g, &input.schema))
                .collect::<Result<Vec<_>>>()?;
            let args = aggs
                .iter()
                .map(|a| {
                    a.arg
                        .as_ref()
                        .map(|e| vexpr::compile(e, &input.schema))
                        .transpose()
                })
                .collect::<Result<Vec<_>>>()?;
            // fuse the aggregate into the exchange's morsel workers when
            // partial-state merging is provably exact (see module doc)
            let fused = match &input.op {
                PhysOp::Exchange { input: region } if workers > 1 && mergeable(aggs, region) => {
                    Some(region)
                }
                _ => None,
            };
            match fused {
                Some(region_plan) => {
                    let exchange_node = *next_id;
                    *next_id += 1;
                    let region = compile_region(region_plan, ctx, next_id)?;
                    (
                        "aggregate",
                        Box::new(ParallelAggOp {
                            region,
                            spec: PartialAggSpec {
                                group,
                                args,
                                aggs,
                                agg_node: node,
                                exchange_node,
                            },
                            out_schema: &plan.schema,
                            ctx,
                            bs,
                            workers,
                            out: Vec::new(),
                            pos: 0,
                            opened: false,
                        }),
                    )
                }
                None => (
                    "aggregate",
                    Box::new(AggregateOp {
                        input: Some(build(input, ctx, bs, workers, next_id)?),
                        group,
                        args,
                        aggs,
                        out_schema: &plan.schema,
                        ctx,
                        bs,
                        out: Vec::new(),
                        pos: 0,
                    }),
                ),
            }
        }
        PhysOp::Sort { input, keys } => {
            let compiled = keys
                .iter()
                .map(|k| Ok((vexpr::compile(&k.expr, &input.schema)?, k.desc)))
                .collect::<Result<Vec<_>>>()?;
            (
                "sort",
                Box::new(SortOp {
                    input: Some(build(input, ctx, bs, workers, next_id)?),
                    keys: compiled,
                    out_schema: &plan.schema,
                    ctx,
                    bs,
                    out: Vec::new(),
                    pos: 0,
                }),
            )
        }
        PhysOp::Limit { input, n } => (
            "limit",
            Box::new(LimitOp {
                input: build(input, ctx, bs, workers, next_id)?,
                remaining: *n,
            }),
        ),
        PhysOp::Values { rows } => (
            "values",
            Box::new(ValuesOp {
                rows,
                schema: &plan.schema,
                pos: 0,
                bs,
            }),
        ),
        PhysOp::Exchange { input } => {
            if workers <= 1 {
                (
                    "exchange",
                    Box::new(PassthroughOp {
                        input: build(input, ctx, bs, workers, next_id)?,
                    }),
                )
            } else {
                let region = compile_region(input, ctx, next_id)?;
                (
                    "exchange",
                    Box::new(ExchangeOp {
                        region,
                        ctx,
                        bs,
                        workers,
                        out: Vec::new(),
                        opened: false,
                    }),
                )
            }
        }
    };
    Ok(Box::new(Instrumented {
        name,
        node,
        ctx,
        inner: op,
    }))
}

/// Wraps an operator to account rows / batches / wall-time / cost units
/// into the execution context, keyed by (operator, plan-node id). Timing
/// and cost are inclusive of the operator's subtree.
struct Instrumented<'p> {
    name: &'static str,
    node: usize,
    ctx: &'p ExecContext<'p>,
    inner: Box<dyn BatchOp + 'p>,
}

impl BatchOp for Instrumented<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        let t0 = self.ctx.clock_ns();
        let c0 = self.ctx.cost_units();
        let w0 = wait::thread_snapshot();
        let r = self.inner.next();
        let ns = self.ctx.clock_ns().saturating_sub(t0);
        let cost = self.ctx.cost_units() - c0;
        let wait = wait::thread_snapshot().delta_since(&w0);
        let (rows, batches) = match &r {
            Ok(Some(b)) => (b.len() as u64, 1),
            _ => (0, 0),
        };
        self.ctx.record_op_stats(
            (self.name, self.node, MAIN_WORKER),
            OpStats {
                rows,
                batches,
                ns,
                cost_units: cost,
                wait,
            },
        );
        r
    }
}

struct SeqScanOp<'p> {
    cursor: HeapScanCursor,
    vis: RowVis,
    schema: &'p Schema,
    filter: Option<VExpr>,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    done: bool,
}

impl BatchOp for SeqScanOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        while !self.done {
            // decode pages straight into typed column builders — the
            // row-at-a-time decode + columnarize double pass is the
            // single biggest cost the batch pipeline can avoid
            let mut cols: Vec<ColVec> = self
                .schema
                .columns()
                .iter()
                .map(|c| ColVec::with_capacity(c.data_type, self.bs))
                .collect();
            let vis = &self.vis;
            let (n, more) =
                self.cursor
                    .fill_batch_vis(self.bs, &mut cols, Some(&|rid| vis.allows(rid)))?;
            if !more {
                self.done = true;
            }
            if n == 0 {
                continue;
            }
            let nf = n as f64;
            self.ctx.charge(nf * 0.01 + (nf / 64.0).ceil());
            let batch = Batch::from_cols(cols, n);
            let batch = match &self.filter {
                Some(f) => {
                    let sel = vexpr::eval_filter(f, &batch, self.ctx.fns)?;
                    if sel.len() == batch.len() {
                        batch
                    } else {
                        batch.gather(&sel)
                    }
                }
                None => batch,
            };
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

struct IndexScanOp<'p> {
    table: Arc<Table>,
    rids: Vec<RowId>,
    pos: usize,
    schema: &'p Schema,
    filter: Option<VExpr>,
    ctx: &'p ExecContext<'p>,
    bs: usize,
}

impl BatchOp for IndexScanOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        while self.pos < self.rids.len() {
            let end = (self.pos + self.bs).min(self.rids.len());
            let mut rows = Vec::with_capacity(end - self.pos);
            for &rid in &self.rids[self.pos..end] {
                if let Some(row) = self.table.heap.get(rid)? {
                    rows.push(row);
                }
            }
            self.pos = end;
            if rows.is_empty() {
                continue;
            }
            let batch = Batch::from_rows(self.schema, &rows);
            let batch = match &self.filter {
                Some(f) => {
                    let sel = vexpr::eval_filter(f, &batch, self.ctx.fns)?;
                    if sel.len() == batch.len() {
                        batch
                    } else {
                        batch.gather(&sel)
                    }
                }
                None => batch,
            };
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

struct FilterOp<'p> {
    input: Box<dyn BatchOp + 'p>,
    pred: VExpr,
    ctx: &'p ExecContext<'p>,
}

impl BatchOp for FilterOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        while let Some(b) = self.input.next()? {
            self.ctx.charge(b.len() as f64 * 0.005);
            let sel = vexpr::eval_filter(&self.pred, &b, self.ctx.fns)?;
            if sel.is_empty() {
                continue;
            }
            return Ok(Some(if sel.len() == b.len() {
                b
            } else {
                b.gather(&sel)
            }));
        }
        Ok(None)
    }
}

struct ProjectOp<'p> {
    input: Box<dyn BatchOp + 'p>,
    exprs: Vec<VExpr>,
    ctx: &'p ExecContext<'p>,
}

impl BatchOp for ProjectOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        match self.input.next()? {
            Some(b) => {
                self.ctx
                    .charge(b.len() as f64 * 0.005 * self.exprs.len().max(1) as f64);
                let cols = self
                    .exprs
                    .iter()
                    .map(|e| vexpr::eval(e, &b, self.ctx.fns))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Some(Batch::from_cols(cols, b.len())))
            }
            None => Ok(None),
        }
    }
}

struct NestedLoopJoinOp<'p> {
    left: Option<Box<dyn BatchOp + 'p>>,
    right: Option<Box<dyn BatchOp + 'p>>,
    on: Option<VExpr>,
    out_schema: &'p Schema,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    lrows: Vec<Row>,
    rrows: Vec<Row>,
    li: usize,
    ri: usize,
}

impl BatchOp for NestedLoopJoinOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        if let (Some(mut l), Some(mut r)) = (self.left.take(), self.right.take()) {
            self.lrows = drain(&mut l)?;
            self.rrows = drain(&mut r)?;
            self.ctx
                .charge(self.lrows.len() as f64 * self.rrows.len() as f64 * 0.01);
        }
        loop {
            let mut pending = Vec::with_capacity(self.bs);
            while pending.len() < self.bs && self.li < self.lrows.len() {
                if self.rrows.is_empty() {
                    break;
                }
                pending.push(self.lrows[self.li].join(&self.rrows[self.ri]));
                self.ri += 1;
                if self.ri == self.rrows.len() {
                    self.ri = 0;
                    self.li += 1;
                }
            }
            if pending.is_empty() {
                return Ok(None);
            }
            let batch = Batch::from_rows(self.out_schema, &pending);
            let batch = match &self.on {
                Some(p) => {
                    let sel = vexpr::eval_filter(p, &batch, self.ctx.fns)?;
                    batch.gather(&sel)
                }
                None => batch,
            };
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
    }
}

struct HashJoinOp<'p> {
    left: Option<Box<dyn BatchOp + 'p>>,
    right: Option<Box<dyn BatchOp + 'p>>,
    lkey: VExpr,
    rkey: VExpr,
    residual: Option<VExpr>,
    out_schema: &'p Schema,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    build_rows: Vec<Row>,
    /// key → build-row indices in insertion order
    table: HashMap<Value, Vec<usize>>,
    probe_rows: Vec<Row>,
    probe_keys: Vec<Value>,
    build_is_left: bool,
    probe_pos: usize,
}

impl HashJoinOp<'_> {
    fn open(&mut self) -> Result<()> {
        let (Some(mut l), Some(mut r)) = (self.left.take(), self.right.take()) else {
            return Ok(());
        };
        // drain both inputs batch-wise, computing join keys with the
        // vectorized kernels as batches arrive
        let (lrows, lkeys) = drain_keyed(&mut l, &self.lkey, self.ctx)?;
        let (rrows, rkeys) = drain_keyed(&mut r, &self.rkey, self.ctx)?;
        self.ctx.charge((lrows.len() + rrows.len()) as f64 * 0.015);
        // build on the smaller side, like the row executor, so output
        // order (probe order × build-insertion order) matches exactly
        let (build_rows, build_keys, probe_rows, probe_keys, build_is_left) =
            if lrows.len() <= rrows.len() {
                (lrows, lkeys, rrows, rkeys, true)
            } else {
                (rrows, rkeys, lrows, lkeys, false)
            };
        for (i, k) in build_keys.into_iter().enumerate() {
            if k.is_null() {
                continue; // NULL never joins
            }
            self.table.entry(k).or_default().push(i);
        }
        self.build_rows = build_rows;
        self.probe_rows = probe_rows;
        self.probe_keys = probe_keys;
        self.build_is_left = build_is_left;
        Ok(())
    }
}

impl BatchOp for HashJoinOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        self.open()?;
        loop {
            let mut pending: Vec<Row> = Vec::with_capacity(self.bs);
            while pending.len() < self.bs && self.probe_pos < self.probe_rows.len() {
                let k = &self.probe_keys[self.probe_pos];
                let p = &self.probe_rows[self.probe_pos];
                if !k.is_null() {
                    if let Some(matches) = self.table.get(k) {
                        for &bi in matches {
                            let b = &self.build_rows[bi];
                            pending.push(if self.build_is_left {
                                b.join(p)
                            } else {
                                p.join(b)
                            });
                        }
                    }
                }
                self.probe_pos += 1;
            }
            if pending.is_empty() {
                return Ok(None);
            }
            let batch = Batch::from_rows(self.out_schema, &pending);
            let batch = match &self.residual {
                Some(r) => {
                    let sel = vexpr::eval_filter(r, &batch, self.ctx.fns)?;
                    batch.gather(&sel)
                }
                None => batch,
            };
            if !batch.is_empty() {
                self.ctx.charge(batch.len() as f64 * 0.01);
                return Ok(Some(batch));
            }
        }
    }
}

struct AggregateOp<'p> {
    input: Option<Box<dyn BatchOp + 'p>>,
    group: Vec<VExpr>,
    args: Vec<Option<VExpr>>,
    aggs: &'p [AggExpr],
    out_schema: &'p Schema,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    out: Vec<Row>,
    pos: usize,
}

impl AggregateOp<'_> {
    fn eval_args(&self, b: &Batch) -> Result<Vec<Option<ColVec>>> {
        self.args
            .iter()
            .map(|a| {
                a.as_ref()
                    .map(|e| vexpr::eval(e, b, self.ctx.fns))
                    .transpose()
            })
            .collect()
    }

    /// No GROUP BY: one state set updated column-at-a-time — no per-row
    /// hash probe, no per-row `Value` materialization for typed lanes.
    fn drain_global(&mut self, input: &mut Box<dyn BatchOp + '_>) -> Result<()> {
        let mut states: Vec<AggState> = self.aggs.iter().map(|a| AggState::new(a.func)).collect();
        while let Some(b) = input.next()? {
            self.ctx.charge(b.len() as f64 * 0.02);
            let arg_cols = self.eval_args(&b)?;
            for (st, col) in states.iter_mut().zip(&arg_cols) {
                update_state_col(st, col.as_ref(), b.len())?;
            }
        }
        // a global aggregate yields exactly one row, even over zero rows
        self.out
            .push(Row::new(states.into_iter().map(AggState::finish).collect()));
        Ok(())
    }

    fn drain_grouped(&mut self, input: &mut Box<dyn BatchOp + '_>) -> Result<()> {
        // single-column keys probe on a bare `Value` (no per-row Vec)
        let mut index1: HashMap<Value, usize> = HashMap::new();
        let mut indexn: HashMap<Vec<Value>, usize> = HashMap::new();
        // first-seen group order, like the row executor
        let mut groups: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
        let single = self.group.len() == 1;
        while let Some(b) = input.next()? {
            self.ctx.charge(b.len() as f64 * 0.02);
            let key_cols = self
                .group
                .iter()
                .map(|g| vexpr::eval(g, &b, self.ctx.fns))
                .collect::<Result<Vec<_>>>()?;
            let arg_cols = self.eval_args(&b)?;
            for i in 0..b.len() {
                let gi = if single {
                    let k = key_cols[0].value(i);
                    match index1.get(&k) {
                        Some(&gi) => gi,
                        None => {
                            index1.insert(k.clone(), groups.len());
                            groups.push((
                                vec![k],
                                self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                            ));
                            groups.len() - 1
                        }
                    }
                } else {
                    let key: Vec<Value> = key_cols.iter().map(|c| c.value(i)).collect();
                    match indexn.get(&key) {
                        Some(&gi) => gi,
                        None => {
                            indexn.insert(key.clone(), groups.len());
                            groups.push((
                                key,
                                self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                            ));
                            groups.len() - 1
                        }
                    }
                };
                for (st, col) in groups[gi].1.iter_mut().zip(&arg_cols) {
                    update_state_lane(st, col.as_ref(), i)?;
                }
            }
        }
        for (key, states) in groups {
            let mut vals = key;
            vals.extend(states.into_iter().map(AggState::finish));
            self.out.push(Row::new(vals));
        }
        Ok(())
    }
}

impl BatchOp for AggregateOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        if let Some(mut input) = self.input.take() {
            if self.group.is_empty() {
                self.drain_global(&mut input)?;
            } else {
                self.drain_grouped(&mut input)?;
            }
        }
        emit_chunk(&mut self.pos, &self.out, self.out_schema, self.bs)
    }
}

/// Update one aggregate state from lane `i` of an argument column.
/// Typed Int/Float lanes feed SUM/AVG without materializing a `Value`;
/// everything else defers to [`AggState::update`] so NULL handling and
/// type-error behavior stay identical to the row executor.
fn update_state_lane(st: &mut AggState, col: Option<&ColVec>, i: usize) -> Result<()> {
    match (st, col) {
        (st, None) => st.update(None),
        (AggState::Sum(s), Some(ColVec::Float { vals, nulls })) => {
            if !nulls[i] {
                *s += vals[i];
            }
            Ok(())
        }
        (AggState::Sum(s), Some(ColVec::Int { vals, nulls })) => {
            if !nulls[i] {
                *s += vals[i] as f64;
            }
            Ok(())
        }
        (AggState::Avg(s, n), Some(ColVec::Float { vals, nulls })) => {
            if !nulls[i] {
                *s += vals[i];
                *n += 1;
            }
            Ok(())
        }
        (AggState::Avg(s, n), Some(ColVec::Int { vals, nulls })) => {
            if !nulls[i] {
                *s += vals[i] as f64;
                *n += 1;
            }
            Ok(())
        }
        (AggState::Count(n), Some(c)) => {
            if !c.is_null(i) {
                *n += 1;
            }
            Ok(())
        }
        (st, Some(c)) => st.update(Some(&c.value(i))),
    }
}

/// Update one aggregate state from a whole argument column (the global,
/// no-GROUP-BY path). Addition order is lane order — the same row order
/// the scalar executor folds in — so float results are bit-identical.
fn update_state_col(st: &mut AggState, col: Option<&ColVec>, n: usize) -> Result<()> {
    match (st, col) {
        // COUNT(*) counts rows outright
        (AggState::Count(c), None) => {
            *c += n as u64;
            Ok(())
        }
        (AggState::Sum(s), Some(ColVec::Float { vals, nulls })) => {
            for i in 0..n {
                if !nulls[i] {
                    *s += vals[i];
                }
            }
            Ok(())
        }
        (AggState::Sum(s), Some(ColVec::Int { vals, nulls })) => {
            for i in 0..n {
                if !nulls[i] {
                    *s += vals[i] as f64;
                }
            }
            Ok(())
        }
        (AggState::Avg(s, cnt), Some(ColVec::Float { vals, nulls })) => {
            for i in 0..n {
                if !nulls[i] {
                    *s += vals[i];
                    *cnt += 1;
                }
            }
            Ok(())
        }
        (AggState::Avg(s, cnt), Some(ColVec::Int { vals, nulls })) => {
            for i in 0..n {
                if !nulls[i] {
                    *s += vals[i] as f64;
                    *cnt += 1;
                }
            }
            Ok(())
        }
        (AggState::Count(c), Some(col)) => {
            for i in 0..n {
                if !col.is_null(i) {
                    *c += 1;
                }
            }
            Ok(())
        }
        (st, col) => {
            for i in 0..n {
                let v = col.map(|c| c.value(i));
                st.update(v.as_ref())?;
            }
            Ok(())
        }
    }
}

struct SortOp<'p> {
    input: Option<Box<dyn BatchOp + 'p>>,
    keys: Vec<(VExpr, bool)>,
    out_schema: &'p Schema,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    out: Vec<Row>,
    pos: usize,
}

impl BatchOp for SortOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        if let Some(mut input) = self.input.take() {
            // drain, computing sort keys vectorized per input batch
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
            while let Some(b) = input.next()? {
                let key_cols = self
                    .keys
                    .iter()
                    .map(|(e, _)| vexpr::eval(e, &b, self.ctx.fns))
                    .collect::<Result<Vec<_>>>()?;
                for i in 0..b.len() {
                    let ks: Vec<Value> = key_cols.iter().map(|c| c.value(i)).collect();
                    keyed.push((ks, b.row(i)));
                }
            }
            let n = keyed.len() as f64;
            self.ctx.charge(n * n.max(2.0).log2() * 0.005);
            // stable sort with the same comparator as the row executor
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, (_, desc)) in self.keys.iter().enumerate() {
                    let ord = a[i].cmp(&b[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.out = keyed.into_iter().map(|(_, r)| r).collect();
        }
        emit_chunk(&mut self.pos, &self.out, self.out_schema, self.bs)
    }
}

struct LimitOp<'p> {
    input: Box<dyn BatchOp + 'p>,
    remaining: usize,
}

impl BatchOp for LimitOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(b) => {
                if b.len() <= self.remaining {
                    self.remaining -= b.len();
                    Ok(Some(b))
                } else {
                    let sel: Vec<u32> = (0..self.remaining as u32).collect();
                    self.remaining = 0;
                    Ok(Some(b.gather(&sel)))
                }
            }
            None => Ok(None),
        }
    }
}

struct ValuesOp<'p> {
    rows: &'p [Row],
    schema: &'p Schema,
    pos: usize,
    bs: usize,
}

impl BatchOp for ValuesOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        emit_chunk(&mut self.pos, self.rows, self.schema, self.bs)
    }
}

/// Emit the next `bs`-row chunk of a materialized row set as a batch.
fn emit_chunk(pos: &mut usize, rows: &[Row], schema: &Schema, bs: usize) -> Result<Option<Batch>> {
    if *pos >= rows.len() {
        return Ok(None);
    }
    let end = (*pos + bs).min(rows.len());
    let b = Batch::from_rows(schema, &rows[*pos..end]);
    *pos = end;
    Ok(Some(b))
}

/// Drain an operator into a materialized row vector.
fn drain(op: &mut Box<dyn BatchOp + '_>) -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    while let Some(b) = op.next()? {
        rows.extend(b.to_rows());
    }
    Ok(rows)
}

/// Drain an operator, evaluating a compiled key expression over each
/// batch; returns rows and their keys, positionally aligned.
fn drain_keyed(
    op: &mut Box<dyn BatchOp + '_>,
    key: &VExpr,
    ctx: &ExecContext<'_>,
) -> Result<(Vec<Row>, Vec<Value>)> {
    let mut rows = Vec::new();
    let mut keys = Vec::new();
    while let Some(b) = op.next()? {
        let kc = vexpr::eval(key, &b, ctx.fns)?;
        for i in 0..b.len() {
            keys.push(kc.value(i));
            rows.push(b.row(i));
        }
    }
    Ok((rows, keys))
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel regions
// ---------------------------------------------------------------------------

/// `Exchange` with one worker: the parallelism boundary is a no-op.
struct PassthroughOp<'p> {
    input: Box<dyn BatchOp + 'p>,
}

impl BatchOp for PassthroughOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        self.input.next()
    }
}

/// One pipeline stage above the scan inside an exchange region.
enum StageKind {
    Filter(VExpr),
    Project(Vec<VExpr>),
}

struct RegionStage {
    kind: StageKind,
    node: usize,
}

impl RegionStage {
    fn name(&self) -> &'static str {
        match self.kind {
            StageKind::Filter(_) => "filter",
            StageKind::Project(_) => "project",
        }
    }
}

/// A compiled scan→filter→project pipeline under an `Exchange`:
/// everything a morsel worker needs, with no reference back into the
/// (single-threaded) execution context, so it can be shared across the
/// scoped worker pool.
struct RegionSpec<'p> {
    source: MorselSource,
    /// MVCC row filter resolved at compile time (metas cloned once, so
    /// workers share it without touching the catalog).
    vis: RowVis,
    scan_schema: &'p Schema,
    scan_filter: Option<VExpr>,
    scan_node: usize,
    /// Stages above the scan, in application (scan-upwards) order.
    stages: Vec<RegionStage>,
}

/// Compile the plan subtree under an exchange into a [`RegionSpec`],
/// consuming preorder node ids exactly like `build` would so the ids in
/// worker-side counters line up with `EXPLAIN` / `EXPLAIN ANALYZE`.
fn compile_region<'p>(
    plan: &'p PhysicalPlan,
    ctx: &ExecContext<'p>,
    next_id: &mut usize,
) -> Result<RegionSpec<'p>> {
    let mut stages: Vec<RegionStage> = Vec::new();
    let mut cur = plan;
    loop {
        let node = *next_id;
        *next_id += 1;
        match &cur.op {
            PhysOp::Filter { input, predicate } => {
                stages.push(RegionStage {
                    kind: StageKind::Filter(vexpr::compile(predicate, &input.schema)?),
                    node,
                });
                cur = input;
            }
            PhysOp::Project { input, exprs } => {
                let compiled = exprs
                    .iter()
                    .map(|e| vexpr::compile(e, &input.schema))
                    .collect::<Result<Vec<_>>>()?;
                stages.push(RegionStage {
                    kind: StageKind::Project(compiled),
                    node,
                });
                cur = input;
            }
            PhysOp::SeqScan { table, filter, .. } => {
                let t = ctx.catalog.table(table)?;
                let scan_filter = filter
                    .as_ref()
                    .map(|f| vexpr::compile(f, &cur.schema))
                    .transpose()?;
                // collected top-down; workers apply them scan-upwards
                stages.reverse();
                return Ok(RegionSpec {
                    source: t.heap.morsel_source(),
                    vis: t.visibility(ctx.snapshot())?,
                    scan_schema: &cur.schema,
                    scan_filter,
                    scan_node: node,
                    stages,
                });
            }
            _ => {
                return Err(AimError::Execution(
                    "Exchange region contains a non-parallelizable operator".into(),
                ))
            }
        }
    }
}

/// Aggregate fused into an exchange's workers: each morsel folds into
/// its own state set; the main thread merges states in morsel order.
struct PartialAggSpec<'p> {
    group: Vec<VExpr>,
    args: Vec<Option<VExpr>>,
    aggs: &'p [AggExpr],
    agg_node: usize,
    exchange_node: usize,
}

/// Is partial aggregation *exact* for these aggregates over this region?
/// COUNT/MIN/MAX states merge exactly for any input. SUM/AVG fold in
/// f64, where addition only reassociates losslessly when every addend is
/// an integer (exact below 2^53) — so the argument must be a bare
/// base-table Int column, traced through the region's projections.
fn mergeable(aggs: &[AggExpr], region: &PhysicalPlan) -> bool {
    aggs.iter().all(|a| match a.func {
        AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
        AggFunc::Sum | AggFunc::Avg => a
            .arg
            .as_ref()
            .is_some_and(|e| traces_to_int_column(region, e)),
    })
}

/// Resolve a column the way `vexpr::compile` does: qualified spelling
/// first, then the bare name.
fn resolve_col(schema: &Schema, qualifier: &Option<String>, name: &str) -> Option<usize> {
    let full = match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    };
    schema
        .index_of(&full)
        .or_else(|_| schema.index_of(name))
        .ok()
}

/// Does `expr`, evaluated against `region`'s output, reduce to a plain
/// base-table Int column? Follows pure column passthroughs in Project
/// stages down to the scan, where the catalog type is authoritative.
fn traces_to_int_column(region: &PhysicalPlan, expr: &Expr) -> bool {
    let Expr::Column { qualifier, name } = expr else {
        return false;
    };
    let Some(idx) = resolve_col(&region.schema, qualifier, name) else {
        return false;
    };
    match &region.op {
        PhysOp::SeqScan { .. } => region.schema.columns()[idx].data_type == DataType::Int,
        PhysOp::Filter { input, .. } => traces_to_int_column(input, expr),
        PhysOp::Project { input, exprs } => traces_to_int_column(input, &exprs[idx]),
        _ => false,
    }
}

/// What one morsel produced: region output batches, or partial
/// aggregate states when the aggregate is fused into the workers.
enum MorselOut {
    Batches(Vec<Batch>),
    Global(Vec<AggState>),
    Grouped(Vec<(Vec<Value>, Vec<AggState>)>),
}

/// Per-worker counters accumulated off-thread (the context's cells are
/// not `Sync`) and merged into the context after the pool joins.
#[derive(Default)]
struct WorkerAcc {
    stats: BTreeMap<(&'static str, usize), OpStats>,
    cost: f64,
}

impl WorkerAcc {
    /// Record a non-empty output batch for one region node.
    fn bump(&mut self, name: &'static str, node: usize, rows: u64) {
        let e = self.stats.entry((name, node)).or_default();
        e.rows += rows;
        e.batches += 1;
    }

    /// Charge cost units to one region node (and the region total).
    fn charge(&mut self, name: &'static str, node: usize, units: f64) {
        self.cost += units;
        self.stats.entry((name, node)).or_default().cost_units += units;
    }

    fn add_ns(&mut self, name: &'static str, node: usize, ns: u64) {
        self.stats.entry((name, node)).or_default().ns += ns;
    }
}

struct WorkerOut {
    pieces: Vec<(usize, MorselOut)>,
    stats: BTreeMap<(&'static str, usize), OpStats>,
    cost: f64,
    span: WorkerSpan,
    /// Waits incurred on the worker thread (already in the global
    /// totals; adopted into the coordinating thread's statement set).
    waits: aimdb_common::WaitSet,
}

/// Pages per morsel: aim for ~8 morsels per worker so the dispenser can
/// load-balance, clamped to [1, 16]. Purely a scheduling choice —
/// results are merged in morsel order, so any size yields identical
/// output.
fn morsel_pages_for(page_count: usize, workers: usize) -> usize {
    (page_count / (workers * 8).max(1)).clamp(1, 16)
}

fn region_now(clock: Option<&dyn Clock>) -> u64 {
    match clock {
        Some(c) => (c.now_secs() * 1e9) as u64,
        None => 0,
    }
}

/// Run an exchange region on a scoped morsel worker pool and return the
/// per-morsel outputs sorted by morsel index — i.e. in the exact row
/// order the serial scan would produce. Worker counters, cost and spans
/// are folded into the context here, on the main thread, in worker
/// order, so the merge itself is deterministic too.
fn run_region<'p>(
    region: &RegionSpec<'p>,
    spec: Option<&PartialAggSpec<'p>>,
    ctx: &ExecContext<'p>,
    bs: usize,
    workers: usize,
) -> Result<Vec<MorselOut>> {
    let dispenser = region
        .source
        .dispenser(morsel_pages_for(region.source.page_count(), workers));
    let fns = ctx.fns;
    let clock = ctx.clock();
    let outs: Vec<Result<WorkerOut>> = crossbeam::scope(|s| {
        let handles: Vec<_> = (1..=workers)
            .map(|w| {
                let dispenser = &dispenser;
                s.spawn(move |_| run_worker(region, dispenser, spec, fns, clock, bs, w))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(_) => Err(AimError::Execution("morsel worker panicked".into())),
            })
            .collect()
    })
    .map_err(|_| AimError::Execution("parallel exchange region panicked".into()))?;
    let mut pieces = Vec::new();
    for out in outs {
        let out = out?;
        for ((name, node), st) in out.stats {
            ctx.record_op_stats((name, node, out.span.worker), st);
        }
        ctx.charge(out.cost);
        ctx.note_worker_span(out.span);
        wait::adopt(&out.waits);
        pieces.extend(out.pieces);
    }
    pieces.sort_by_key(|&(idx, _)| idx);
    Ok(pieces.into_iter().map(|(_, p)| p).collect())
}

/// One morsel worker: claim morsels until the dispenser runs dry,
/// running the region pipeline (and any fused partial aggregate) on
/// each.
fn run_worker<'p>(
    region: &RegionSpec<'p>,
    dispenser: &MorselDispenser,
    spec: Option<&PartialAggSpec<'p>>,
    fns: &dyn ScalarFns,
    clock: Option<&dyn Clock>,
    bs: usize,
    worker: usize,
) -> Result<WorkerOut> {
    let start_ns = region_now(clock);
    let mut busy_ns = 0u64;
    let mut acc = WorkerAcc::default();
    let mut pieces = Vec::new();
    while let Some(m) = dispenser.claim() {
        let t0 = region_now(clock);
        let out = process_morsel(region, m, spec, fns, bs, &mut acc)?;
        let dt = region_now(clock).saturating_sub(t0);
        busy_ns += dt;
        // approximate the serial executor's inclusive-time semantics:
        // every region node's subtree covers the whole morsel pipeline
        acc.add_ns("seq_scan", region.scan_node, dt);
        for st in &region.stages {
            acc.add_ns(st.name(), st.node, dt);
        }
        if let Some(sp) = spec {
            acc.add_ns("exchange", sp.exchange_node, dt);
        }
        pieces.push((m.index, out));
    }
    let end_ns = region_now(clock);
    // attribute this worker's blocked time (buffer misses, contended
    // locks) to the scan node it pulled through, and hand the set back
    // for statement-level adoption — the worker thread dies here, so
    // its thread-local accumulator must be drained now
    let waits = wait::take_thread();
    if !waits.is_zero() {
        acc.stats
            .entry(("seq_scan", region.scan_node))
            .or_default()
            .wait
            .merge(&waits);
    }
    Ok(WorkerOut {
        pieces,
        stats: acc.stats,
        cost: acc.cost,
        span: WorkerSpan {
            worker,
            start_ns,
            end_ns,
            busy_ns,
        },
        waits,
    })
}

/// Run the region pipeline over one morsel's page range. Output rows are
/// either collected as batches, or folded into fresh per-morsel partial
/// aggregate states (`spec` present).
fn process_morsel<'p>(
    region: &RegionSpec<'p>,
    m: Morsel,
    spec: Option<&PartialAggSpec<'p>>,
    fns: &dyn ScalarFns,
    bs: usize,
    acc: &mut WorkerAcc,
) -> Result<MorselOut> {
    let mut out = match spec {
        None => MorselOut::Batches(Vec::new()),
        Some(sp) if sp.group.is_empty() => {
            MorselOut::Global(sp.aggs.iter().map(|a| AggState::new(a.func)).collect())
        }
        Some(_) => MorselOut::Grouped(Vec::new()),
    };
    let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut cursor = region.source.cursor(m.start, m.end);
    loop {
        let mut cols: Vec<ColVec> = region
            .scan_schema
            .columns()
            .iter()
            .map(|c| ColVec::with_capacity(c.data_type, bs))
            .collect();
        let vis = &region.vis;
        let (n, more) = cursor.fill_batch_vis(bs, &mut cols, Some(&|rid| vis.allows(rid)))?;
        if n > 0 {
            let nf = n as f64;
            acc.charge("seq_scan", region.scan_node, nf * 0.01 + (nf / 64.0).ceil());
            let mut batch = Batch::from_cols(cols, n);
            if let Some(f) = &region.scan_filter {
                let sel = vexpr::eval_filter(f, &batch, fns)?;
                if sel.len() != batch.len() {
                    batch = batch.gather(&sel);
                }
            }
            if !batch.is_empty() {
                acc.bump("seq_scan", region.scan_node, batch.len() as u64);
                if let Some(b) = run_stages(region, batch, fns, acc)? {
                    fold_or_collect(&mut out, &mut group_index, spec, b, fns, acc)?;
                }
            }
        }
        if !more {
            break;
        }
    }
    Ok(out)
}

/// Apply the region's filter/project stages to one batch; `None` once
/// the batch filters down to empty.
fn run_stages(
    region: &RegionSpec<'_>,
    mut batch: Batch,
    fns: &dyn ScalarFns,
    acc: &mut WorkerAcc,
) -> Result<Option<Batch>> {
    for stage in &region.stages {
        match &stage.kind {
            StageKind::Filter(pred) => {
                acc.charge("filter", stage.node, batch.len() as f64 * 0.005);
                let sel = vexpr::eval_filter(pred, &batch, fns)?;
                if sel.is_empty() {
                    return Ok(None);
                }
                if sel.len() != batch.len() {
                    batch = batch.gather(&sel);
                }
            }
            StageKind::Project(exprs) => {
                acc.charge(
                    "project",
                    stage.node,
                    batch.len() as f64 * 0.005 * exprs.len().max(1) as f64,
                );
                let cols = exprs
                    .iter()
                    .map(|e| vexpr::eval(e, &batch, fns))
                    .collect::<Result<Vec<_>>>()?;
                batch = Batch::from_cols(cols, batch.len());
            }
        }
        acc.bump(stage.name(), stage.node, batch.len() as u64);
    }
    Ok(Some(batch))
}

/// Collect one post-stage batch into the morsel's output — or fold it
/// into the fused partial aggregate states.
fn fold_or_collect<'p>(
    out: &mut MorselOut,
    group_index: &mut HashMap<Vec<Value>, usize>,
    spec: Option<&PartialAggSpec<'p>>,
    batch: Batch,
    fns: &dyn ScalarFns,
    acc: &mut WorkerAcc,
) -> Result<()> {
    match (out, spec) {
        (MorselOut::Batches(v), _) => v.push(batch),
        (MorselOut::Global(states), Some(sp)) => {
            acc.bump("exchange", sp.exchange_node, batch.len() as u64);
            acc.charge("aggregate", sp.agg_node, batch.len() as f64 * 0.02);
            let arg_cols = eval_agg_args(&sp.args, &batch, fns)?;
            for (st, col) in states.iter_mut().zip(&arg_cols) {
                update_state_col(st, col.as_ref(), batch.len())?;
            }
        }
        (MorselOut::Grouped(groups), Some(sp)) => {
            acc.bump("exchange", sp.exchange_node, batch.len() as u64);
            acc.charge("aggregate", sp.agg_node, batch.len() as f64 * 0.02);
            let key_cols = sp
                .group
                .iter()
                .map(|g| vexpr::eval(g, &batch, fns))
                .collect::<Result<Vec<_>>>()?;
            let arg_cols = eval_agg_args(&sp.args, &batch, fns)?;
            for i in 0..batch.len() {
                let key: Vec<Value> = key_cols.iter().map(|c| c.value(i)).collect();
                let gi = match group_index.get(&key) {
                    Some(&gi) => gi,
                    None => {
                        group_index.insert(key.clone(), groups.len());
                        groups.push((key, sp.aggs.iter().map(|a| AggState::new(a.func)).collect()));
                        groups.len() - 1
                    }
                };
                for (st, col) in groups[gi].1.iter_mut().zip(&arg_cols) {
                    update_state_lane(st, col.as_ref(), i)?;
                }
            }
        }
        _ => {
            return Err(AimError::Execution(
                "fused partial aggregate lost its spec".into(),
            ))
        }
    }
    Ok(())
}

fn eval_agg_args(
    args: &[Option<VExpr>],
    b: &Batch,
    fns: &dyn ScalarFns,
) -> Result<Vec<Option<ColVec>>> {
    args.iter()
        .map(|a| a.as_ref().map(|e| vexpr::eval(e, b, fns)).transpose())
        .collect()
}

/// The parallelism boundary: runs its compiled region on the morsel
/// worker pool and streams the merged (morsel-ordered) batches out.
struct ExchangeOp<'p> {
    region: RegionSpec<'p>,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    workers: usize,
    /// Region output, reversed so `pop()` yields morsel order.
    out: Vec<Batch>,
    opened: bool,
}

impl BatchOp for ExchangeOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        if !self.opened {
            self.opened = true;
            let pieces = run_region(&self.region, None, self.ctx, self.bs, self.workers)?;
            for piece in pieces {
                if let MorselOut::Batches(bats) = piece {
                    self.out.extend(bats);
                }
            }
            self.out.reverse();
        }
        Ok(self.out.pop())
    }
}

/// Aggregate fused into an exchange: runs the worker pool, then merges
/// the per-morsel partial states in morsel order — group order is the
/// serial first-seen order, and every state merge is exact (enforced by
/// [`mergeable`] at build time).
struct ParallelAggOp<'p> {
    region: RegionSpec<'p>,
    spec: PartialAggSpec<'p>,
    out_schema: &'p Schema,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    workers: usize,
    out: Vec<Row>,
    pos: usize,
    opened: bool,
}

impl ParallelAggOp<'_> {
    fn open(&mut self) -> Result<()> {
        if self.opened {
            return Ok(());
        }
        self.opened = true;
        let pieces = run_region(
            &self.region,
            Some(&self.spec),
            self.ctx,
            self.bs,
            self.workers,
        )?;
        if self.spec.group.is_empty() {
            let mut total: Vec<AggState> = self
                .spec
                .aggs
                .iter()
                .map(|a| AggState::new(a.func))
                .collect();
            for piece in pieces {
                let MorselOut::Global(states) = piece else {
                    return Err(AimError::Execution(
                        "mixed morsel outputs in fused aggregate".into(),
                    ));
                };
                for (t, s) in total.iter_mut().zip(states) {
                    t.merge(s)?;
                }
            }
            // a global aggregate yields exactly one row, even over zero
            self.out
                .push(Row::new(total.into_iter().map(AggState::finish).collect()));
        } else {
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            let mut groups: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
            for piece in pieces {
                let MorselOut::Grouped(gs) = piece else {
                    return Err(AimError::Execution(
                        "mixed morsel outputs in fused aggregate".into(),
                    ));
                };
                for (key, states) in gs {
                    match index.get(&key) {
                        Some(&gi) => {
                            for (t, s) in groups[gi].1.iter_mut().zip(states) {
                                t.merge(s)?;
                            }
                        }
                        None => {
                            index.insert(key.clone(), groups.len());
                            groups.push((key, states));
                        }
                    }
                }
            }
            for (key, states) in groups {
                let mut vals = key;
                vals.extend(states.into_iter().map(AggState::finish));
                self.out.push(Row::new(vals));
            }
        }
        Ok(())
    }
}

impl BatchOp for ParallelAggOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        self.open()?;
        emit_chunk(&mut self.pos, &self.out, self.out_schema, self.bs)
    }
}
