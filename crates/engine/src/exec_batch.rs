//! Streaming vectorized executor.
//!
//! The batch pipeline mirrors the row executor operator for operator,
//! but operators *pull* fixed-size column batches ([`Batch`]) instead of
//! materializing whole row sets: scans fill batches straight from the
//! storage cursors, predicates produce selection vectors that are
//! applied with `gather`, and expressions run through the compiled
//! kernels in `aimdb_sql::vexpr`. Pipeline-breaking operators (hash
//! join build, aggregate, sort) still drain their inputs — exactly like
//! the row executor — but consume them batch-wise and stream their
//! output back out in batches.
//!
//! Result equivalence with [`crate::exec::execute`] is enforced by the
//! differential oracle (`tests/exec_differential.rs`); output *order*
//! matches the row executor on every operator so ORDER BY queries can
//! be compared positionally:
//! - scans emit heap page order / index key order,
//! - hash join builds on the smaller input and emits probe order ×
//!   build-insertion order,
//! - aggregation emits first-seen group order,
//! - sort is stable over the same precomputed keys.

use std::collections::HashMap;
use std::sync::Arc;

use aimdb_common::{AimError, Batch, ColVec, Result, Row, Schema, Value};
use aimdb_sql::logical::AggExpr;
use aimdb_sql::vexpr::{self, VExpr};

use crate::catalog::Table;
use crate::exec::{AggState, ExecContext};
use crate::plan::{PhysOp, PhysicalPlan};
use aimdb_storage::{HeapScanCursor, RowId};

/// Execute a physical plan to completion through the batch pipeline,
/// pulling `batch_size`-row batches through the operator tree.
pub fn execute_batched(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
    batch_size: usize,
) -> Result<Vec<Row>> {
    let bs = batch_size.max(1);
    let mut next_id = 0;
    let mut root = build(plan, ctx, bs, &mut next_id)?;
    let mut out = Vec::new();
    while let Some(b) = root.next()? {
        out.extend(b.to_rows());
    }
    Ok(out)
}

/// A pull-based vectorized operator. `next` returns the next non-empty
/// output batch, or `None` once exhausted.
trait BatchOp {
    fn next(&mut self) -> Result<Option<Batch>>;
}

/// Build the operator tree for a plan, wrapping each node with the
/// per-operator instrumentation that feeds `Metrics::operator_stats`.
/// Nodes are numbered preorder (root = 0, children left to right) via
/// `next_id`, matching the line order of `PhysicalPlan::explain`.
fn build<'p>(
    plan: &'p PhysicalPlan,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    next_id: &mut usize,
) -> Result<Box<dyn BatchOp + 'p>> {
    let node = *next_id;
    *next_id += 1;
    let (name, op): (&'static str, Box<dyn BatchOp + 'p>) = match &plan.op {
        PhysOp::SeqScan { table, filter, .. } => {
            let t = ctx.catalog.table(table)?;
            let filter = filter
                .as_ref()
                .map(|f| vexpr::compile(f, &plan.schema))
                .transpose()?;
            (
                "seq_scan",
                Box::new(SeqScanOp {
                    cursor: t.heap.scan_cursor(),
                    schema: &plan.schema,
                    filter,
                    ctx,
                    bs,
                    done: false,
                }),
            )
        }
        PhysOp::IndexScan {
            table,
            column,
            lo,
            hi,
            filter,
            ..
        } => {
            let t = ctx.catalog.table(table)?;
            let idx = t.index_on(column).ok_or_else(|| {
                AimError::Execution(format!("planned index on {table}.{column} missing"))
            })?;
            let rids = match (lo, hi) {
                (Some(l), Some(h)) if l == h => idx.lookup(l),
                (l, h) => {
                    let lo_v = l.clone().unwrap_or(Value::Float(f64::NEG_INFINITY));
                    let hi_v = h.clone().unwrap_or(Value::Float(f64::INFINITY));
                    idx.range_batched(&lo_v, &hi_v, bs)
                }
            };
            ctx.charge(3.0 + rids.len() as f64 * 0.06);
            let filter = filter
                .as_ref()
                .map(|f| vexpr::compile(f, &plan.schema))
                .transpose()?;
            (
                "index_scan",
                Box::new(IndexScanOp {
                    table: t,
                    rids,
                    pos: 0,
                    schema: &plan.schema,
                    filter,
                    ctx,
                    bs,
                }),
            )
        }
        PhysOp::Filter { input, predicate } => {
            let pred = vexpr::compile(predicate, &input.schema)?;
            (
                "filter",
                Box::new(FilterOp {
                    input: build(input, ctx, bs, next_id)?,
                    pred,
                    ctx,
                }),
            )
        }
        PhysOp::Project { input, exprs } => {
            let compiled = exprs
                .iter()
                .map(|e| vexpr::compile(e, &input.schema))
                .collect::<Result<Vec<_>>>()?;
            (
                "project",
                Box::new(ProjectOp {
                    input: build(input, ctx, bs, next_id)?,
                    exprs: compiled,
                    ctx,
                }),
            )
        }
        PhysOp::NestedLoopJoin { left, right, on } => {
            let on = on
                .as_ref()
                .map(|p| vexpr::compile(p, &plan.schema))
                .transpose()?;
            (
                "nested_loop_join",
                Box::new(NestedLoopJoinOp {
                    left: Some(build(left, ctx, bs, next_id)?),
                    right: Some(build(right, ctx, bs, next_id)?),
                    on,
                    out_schema: &plan.schema,
                    ctx,
                    bs,
                    lrows: Vec::new(),
                    rrows: Vec::new(),
                    li: 0,
                    ri: 0,
                }),
            )
        }
        PhysOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let lkey = vexpr::compile(left_key, &left.schema)?;
            let rkey = vexpr::compile(right_key, &right.schema)?;
            let residual = residual
                .as_ref()
                .map(|r| vexpr::compile(r, &plan.schema))
                .transpose()?;
            (
                "hash_join",
                Box::new(HashJoinOp {
                    left: Some(build(left, ctx, bs, next_id)?),
                    right: Some(build(right, ctx, bs, next_id)?),
                    lkey,
                    rkey,
                    residual,
                    out_schema: &plan.schema,
                    ctx,
                    bs,
                    build_rows: Vec::new(),
                    table: HashMap::new(),
                    probe_rows: Vec::new(),
                    probe_keys: Vec::new(),
                    build_is_left: true,
                    probe_pos: 0,
                }),
            )
        }
        PhysOp::Aggregate {
            input,
            group_exprs,
            aggs,
        } => {
            let group = group_exprs
                .iter()
                .map(|g| vexpr::compile(g, &input.schema))
                .collect::<Result<Vec<_>>>()?;
            let args = aggs
                .iter()
                .map(|a| {
                    a.arg
                        .as_ref()
                        .map(|e| vexpr::compile(e, &input.schema))
                        .transpose()
                })
                .collect::<Result<Vec<_>>>()?;
            (
                "aggregate",
                Box::new(AggregateOp {
                    input: Some(build(input, ctx, bs, next_id)?),
                    group,
                    args,
                    aggs,
                    out_schema: &plan.schema,
                    ctx,
                    bs,
                    out: Vec::new(),
                    pos: 0,
                }),
            )
        }
        PhysOp::Sort { input, keys } => {
            let compiled = keys
                .iter()
                .map(|k| Ok((vexpr::compile(&k.expr, &input.schema)?, k.desc)))
                .collect::<Result<Vec<_>>>()?;
            (
                "sort",
                Box::new(SortOp {
                    input: Some(build(input, ctx, bs, next_id)?),
                    keys: compiled,
                    out_schema: &plan.schema,
                    ctx,
                    bs,
                    out: Vec::new(),
                    pos: 0,
                }),
            )
        }
        PhysOp::Limit { input, n } => (
            "limit",
            Box::new(LimitOp {
                input: build(input, ctx, bs, next_id)?,
                remaining: *n,
            }),
        ),
        PhysOp::Values { rows } => (
            "values",
            Box::new(ValuesOp {
                rows,
                schema: &plan.schema,
                pos: 0,
                bs,
            }),
        ),
    };
    Ok(Box::new(Instrumented {
        name,
        node,
        ctx,
        inner: op,
    }))
}

/// Wraps an operator to account rows / batches / wall-time / cost units
/// into the execution context, keyed by (operator, plan-node id). Timing
/// and cost are inclusive of the operator's subtree.
struct Instrumented<'p> {
    name: &'static str,
    node: usize,
    ctx: &'p ExecContext<'p>,
    inner: Box<dyn BatchOp + 'p>,
}

impl BatchOp for Instrumented<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        let t0 = self.ctx.clock_ns();
        let c0 = self.ctx.cost_units();
        let r = self.inner.next();
        let ns = self.ctx.clock_ns().saturating_sub(t0);
        let cost = self.ctx.cost_units() - c0;
        match &r {
            Ok(Some(b)) => self
                .ctx
                .record_op(self.name, self.node, b.len() as u64, 1, ns, cost),
            _ => self.ctx.record_op(self.name, self.node, 0, 0, ns, cost),
        }
        r
    }
}

struct SeqScanOp<'p> {
    cursor: HeapScanCursor,
    schema: &'p Schema,
    filter: Option<VExpr>,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    done: bool,
}

impl BatchOp for SeqScanOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        while !self.done {
            // decode pages straight into typed column builders — the
            // row-at-a-time decode + columnarize double pass is the
            // single biggest cost the batch pipeline can avoid
            let mut cols: Vec<ColVec> = self
                .schema
                .columns()
                .iter()
                .map(|c| ColVec::with_capacity(c.data_type, self.bs))
                .collect();
            let (n, more) = self.cursor.fill_batch(self.bs, &mut cols)?;
            if !more {
                self.done = true;
            }
            if n == 0 {
                continue;
            }
            let nf = n as f64;
            self.ctx.charge(nf * 0.01 + (nf / 64.0).ceil());
            let batch = Batch::from_cols(cols, n);
            let batch = match &self.filter {
                Some(f) => {
                    let sel = vexpr::eval_filter(f, &batch, self.ctx.fns)?;
                    if sel.len() == batch.len() {
                        batch
                    } else {
                        batch.gather(&sel)
                    }
                }
                None => batch,
            };
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

struct IndexScanOp<'p> {
    table: Arc<Table>,
    rids: Vec<RowId>,
    pos: usize,
    schema: &'p Schema,
    filter: Option<VExpr>,
    ctx: &'p ExecContext<'p>,
    bs: usize,
}

impl BatchOp for IndexScanOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        while self.pos < self.rids.len() {
            let end = (self.pos + self.bs).min(self.rids.len());
            let mut rows = Vec::with_capacity(end - self.pos);
            for &rid in &self.rids[self.pos..end] {
                if let Some(row) = self.table.heap.get(rid)? {
                    rows.push(row);
                }
            }
            self.pos = end;
            if rows.is_empty() {
                continue;
            }
            let batch = Batch::from_rows(self.schema, &rows);
            let batch = match &self.filter {
                Some(f) => {
                    let sel = vexpr::eval_filter(f, &batch, self.ctx.fns)?;
                    if sel.len() == batch.len() {
                        batch
                    } else {
                        batch.gather(&sel)
                    }
                }
                None => batch,
            };
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }
}

struct FilterOp<'p> {
    input: Box<dyn BatchOp + 'p>,
    pred: VExpr,
    ctx: &'p ExecContext<'p>,
}

impl BatchOp for FilterOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        while let Some(b) = self.input.next()? {
            self.ctx.charge(b.len() as f64 * 0.005);
            let sel = vexpr::eval_filter(&self.pred, &b, self.ctx.fns)?;
            if sel.is_empty() {
                continue;
            }
            return Ok(Some(if sel.len() == b.len() {
                b
            } else {
                b.gather(&sel)
            }));
        }
        Ok(None)
    }
}

struct ProjectOp<'p> {
    input: Box<dyn BatchOp + 'p>,
    exprs: Vec<VExpr>,
    ctx: &'p ExecContext<'p>,
}

impl BatchOp for ProjectOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        match self.input.next()? {
            Some(b) => {
                self.ctx
                    .charge(b.len() as f64 * 0.005 * self.exprs.len().max(1) as f64);
                let cols = self
                    .exprs
                    .iter()
                    .map(|e| vexpr::eval(e, &b, self.ctx.fns))
                    .collect::<Result<Vec<_>>>()?;
                Ok(Some(Batch::from_cols(cols, b.len())))
            }
            None => Ok(None),
        }
    }
}

struct NestedLoopJoinOp<'p> {
    left: Option<Box<dyn BatchOp + 'p>>,
    right: Option<Box<dyn BatchOp + 'p>>,
    on: Option<VExpr>,
    out_schema: &'p Schema,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    lrows: Vec<Row>,
    rrows: Vec<Row>,
    li: usize,
    ri: usize,
}

impl BatchOp for NestedLoopJoinOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        if let (Some(mut l), Some(mut r)) = (self.left.take(), self.right.take()) {
            self.lrows = drain(&mut l)?;
            self.rrows = drain(&mut r)?;
            self.ctx
                .charge(self.lrows.len() as f64 * self.rrows.len() as f64 * 0.01);
        }
        loop {
            let mut pending = Vec::with_capacity(self.bs);
            while pending.len() < self.bs && self.li < self.lrows.len() {
                if self.rrows.is_empty() {
                    break;
                }
                pending.push(self.lrows[self.li].join(&self.rrows[self.ri]));
                self.ri += 1;
                if self.ri == self.rrows.len() {
                    self.ri = 0;
                    self.li += 1;
                }
            }
            if pending.is_empty() {
                return Ok(None);
            }
            let batch = Batch::from_rows(self.out_schema, &pending);
            let batch = match &self.on {
                Some(p) => {
                    let sel = vexpr::eval_filter(p, &batch, self.ctx.fns)?;
                    batch.gather(&sel)
                }
                None => batch,
            };
            if !batch.is_empty() {
                return Ok(Some(batch));
            }
        }
    }
}

struct HashJoinOp<'p> {
    left: Option<Box<dyn BatchOp + 'p>>,
    right: Option<Box<dyn BatchOp + 'p>>,
    lkey: VExpr,
    rkey: VExpr,
    residual: Option<VExpr>,
    out_schema: &'p Schema,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    build_rows: Vec<Row>,
    /// key → build-row indices in insertion order
    table: HashMap<Value, Vec<usize>>,
    probe_rows: Vec<Row>,
    probe_keys: Vec<Value>,
    build_is_left: bool,
    probe_pos: usize,
}

impl HashJoinOp<'_> {
    fn open(&mut self) -> Result<()> {
        let (Some(mut l), Some(mut r)) = (self.left.take(), self.right.take()) else {
            return Ok(());
        };
        // drain both inputs batch-wise, computing join keys with the
        // vectorized kernels as batches arrive
        let (lrows, lkeys) = drain_keyed(&mut l, &self.lkey, self.ctx)?;
        let (rrows, rkeys) = drain_keyed(&mut r, &self.rkey, self.ctx)?;
        self.ctx.charge((lrows.len() + rrows.len()) as f64 * 0.015);
        // build on the smaller side, like the row executor, so output
        // order (probe order × build-insertion order) matches exactly
        let (build_rows, build_keys, probe_rows, probe_keys, build_is_left) =
            if lrows.len() <= rrows.len() {
                (lrows, lkeys, rrows, rkeys, true)
            } else {
                (rrows, rkeys, lrows, lkeys, false)
            };
        for (i, k) in build_keys.into_iter().enumerate() {
            if k.is_null() {
                continue; // NULL never joins
            }
            self.table.entry(k).or_default().push(i);
        }
        self.build_rows = build_rows;
        self.probe_rows = probe_rows;
        self.probe_keys = probe_keys;
        self.build_is_left = build_is_left;
        Ok(())
    }
}

impl BatchOp for HashJoinOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        self.open()?;
        loop {
            let mut pending: Vec<Row> = Vec::with_capacity(self.bs);
            while pending.len() < self.bs && self.probe_pos < self.probe_rows.len() {
                let k = &self.probe_keys[self.probe_pos];
                let p = &self.probe_rows[self.probe_pos];
                if !k.is_null() {
                    if let Some(matches) = self.table.get(k) {
                        for &bi in matches {
                            let b = &self.build_rows[bi];
                            pending.push(if self.build_is_left {
                                b.join(p)
                            } else {
                                p.join(b)
                            });
                        }
                    }
                }
                self.probe_pos += 1;
            }
            if pending.is_empty() {
                return Ok(None);
            }
            let batch = Batch::from_rows(self.out_schema, &pending);
            let batch = match &self.residual {
                Some(r) => {
                    let sel = vexpr::eval_filter(r, &batch, self.ctx.fns)?;
                    batch.gather(&sel)
                }
                None => batch,
            };
            if !batch.is_empty() {
                self.ctx.charge(batch.len() as f64 * 0.01);
                return Ok(Some(batch));
            }
        }
    }
}

struct AggregateOp<'p> {
    input: Option<Box<dyn BatchOp + 'p>>,
    group: Vec<VExpr>,
    args: Vec<Option<VExpr>>,
    aggs: &'p [AggExpr],
    out_schema: &'p Schema,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    out: Vec<Row>,
    pos: usize,
}

impl AggregateOp<'_> {
    fn eval_args(&self, b: &Batch) -> Result<Vec<Option<ColVec>>> {
        self.args
            .iter()
            .map(|a| {
                a.as_ref()
                    .map(|e| vexpr::eval(e, b, self.ctx.fns))
                    .transpose()
            })
            .collect()
    }

    /// No GROUP BY: one state set updated column-at-a-time — no per-row
    /// hash probe, no per-row `Value` materialization for typed lanes.
    fn drain_global(&mut self, input: &mut Box<dyn BatchOp + '_>) -> Result<()> {
        let mut states: Vec<AggState> = self.aggs.iter().map(|a| AggState::new(a.func)).collect();
        while let Some(b) = input.next()? {
            self.ctx.charge(b.len() as f64 * 0.02);
            let arg_cols = self.eval_args(&b)?;
            for (st, col) in states.iter_mut().zip(&arg_cols) {
                update_state_col(st, col.as_ref(), b.len())?;
            }
        }
        // a global aggregate yields exactly one row, even over zero rows
        self.out
            .push(Row::new(states.into_iter().map(AggState::finish).collect()));
        Ok(())
    }

    fn drain_grouped(&mut self, input: &mut Box<dyn BatchOp + '_>) -> Result<()> {
        // single-column keys probe on a bare `Value` (no per-row Vec)
        let mut index1: HashMap<Value, usize> = HashMap::new();
        let mut indexn: HashMap<Vec<Value>, usize> = HashMap::new();
        // first-seen group order, like the row executor
        let mut groups: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
        let single = self.group.len() == 1;
        while let Some(b) = input.next()? {
            self.ctx.charge(b.len() as f64 * 0.02);
            let key_cols = self
                .group
                .iter()
                .map(|g| vexpr::eval(g, &b, self.ctx.fns))
                .collect::<Result<Vec<_>>>()?;
            let arg_cols = self.eval_args(&b)?;
            for i in 0..b.len() {
                let gi = if single {
                    let k = key_cols[0].value(i);
                    match index1.get(&k) {
                        Some(&gi) => gi,
                        None => {
                            index1.insert(k.clone(), groups.len());
                            groups.push((
                                vec![k],
                                self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                            ));
                            groups.len() - 1
                        }
                    }
                } else {
                    let key: Vec<Value> = key_cols.iter().map(|c| c.value(i)).collect();
                    match indexn.get(&key) {
                        Some(&gi) => gi,
                        None => {
                            indexn.insert(key.clone(), groups.len());
                            groups.push((
                                key,
                                self.aggs.iter().map(|a| AggState::new(a.func)).collect(),
                            ));
                            groups.len() - 1
                        }
                    }
                };
                for (st, col) in groups[gi].1.iter_mut().zip(&arg_cols) {
                    update_state_lane(st, col.as_ref(), i)?;
                }
            }
        }
        for (key, states) in groups {
            let mut vals = key;
            vals.extend(states.into_iter().map(AggState::finish));
            self.out.push(Row::new(vals));
        }
        Ok(())
    }
}

impl BatchOp for AggregateOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        if let Some(mut input) = self.input.take() {
            if self.group.is_empty() {
                self.drain_global(&mut input)?;
            } else {
                self.drain_grouped(&mut input)?;
            }
        }
        emit_chunk(&mut self.pos, &self.out, self.out_schema, self.bs)
    }
}

/// Update one aggregate state from lane `i` of an argument column.
/// Typed Int/Float lanes feed SUM/AVG without materializing a `Value`;
/// everything else defers to [`AggState::update`] so NULL handling and
/// type-error behavior stay identical to the row executor.
fn update_state_lane(st: &mut AggState, col: Option<&ColVec>, i: usize) -> Result<()> {
    match (st, col) {
        (st, None) => st.update(None),
        (AggState::Sum(s), Some(ColVec::Float { vals, nulls })) => {
            if !nulls[i] {
                *s += vals[i];
            }
            Ok(())
        }
        (AggState::Sum(s), Some(ColVec::Int { vals, nulls })) => {
            if !nulls[i] {
                *s += vals[i] as f64;
            }
            Ok(())
        }
        (AggState::Avg(s, n), Some(ColVec::Float { vals, nulls })) => {
            if !nulls[i] {
                *s += vals[i];
                *n += 1;
            }
            Ok(())
        }
        (AggState::Avg(s, n), Some(ColVec::Int { vals, nulls })) => {
            if !nulls[i] {
                *s += vals[i] as f64;
                *n += 1;
            }
            Ok(())
        }
        (AggState::Count(n), Some(c)) => {
            if !c.is_null(i) {
                *n += 1;
            }
            Ok(())
        }
        (st, Some(c)) => st.update(Some(&c.value(i))),
    }
}

/// Update one aggregate state from a whole argument column (the global,
/// no-GROUP-BY path). Addition order is lane order — the same row order
/// the scalar executor folds in — so float results are bit-identical.
fn update_state_col(st: &mut AggState, col: Option<&ColVec>, n: usize) -> Result<()> {
    match (st, col) {
        // COUNT(*) counts rows outright
        (AggState::Count(c), None) => {
            *c += n as u64;
            Ok(())
        }
        (AggState::Sum(s), Some(ColVec::Float { vals, nulls })) => {
            for i in 0..n {
                if !nulls[i] {
                    *s += vals[i];
                }
            }
            Ok(())
        }
        (AggState::Sum(s), Some(ColVec::Int { vals, nulls })) => {
            for i in 0..n {
                if !nulls[i] {
                    *s += vals[i] as f64;
                }
            }
            Ok(())
        }
        (AggState::Avg(s, cnt), Some(ColVec::Float { vals, nulls })) => {
            for i in 0..n {
                if !nulls[i] {
                    *s += vals[i];
                    *cnt += 1;
                }
            }
            Ok(())
        }
        (AggState::Avg(s, cnt), Some(ColVec::Int { vals, nulls })) => {
            for i in 0..n {
                if !nulls[i] {
                    *s += vals[i] as f64;
                    *cnt += 1;
                }
            }
            Ok(())
        }
        (AggState::Count(c), Some(col)) => {
            for i in 0..n {
                if !col.is_null(i) {
                    *c += 1;
                }
            }
            Ok(())
        }
        (st, col) => {
            for i in 0..n {
                let v = col.map(|c| c.value(i));
                st.update(v.as_ref())?;
            }
            Ok(())
        }
    }
}

struct SortOp<'p> {
    input: Option<Box<dyn BatchOp + 'p>>,
    keys: Vec<(VExpr, bool)>,
    out_schema: &'p Schema,
    ctx: &'p ExecContext<'p>,
    bs: usize,
    out: Vec<Row>,
    pos: usize,
}

impl BatchOp for SortOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        if let Some(mut input) = self.input.take() {
            // drain, computing sort keys vectorized per input batch
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::new();
            while let Some(b) = input.next()? {
                let key_cols = self
                    .keys
                    .iter()
                    .map(|(e, _)| vexpr::eval(e, &b, self.ctx.fns))
                    .collect::<Result<Vec<_>>>()?;
                for i in 0..b.len() {
                    let ks: Vec<Value> = key_cols.iter().map(|c| c.value(i)).collect();
                    keyed.push((ks, b.row(i)));
                }
            }
            let n = keyed.len() as f64;
            self.ctx.charge(n * n.max(2.0).log2() * 0.005);
            // stable sort with the same comparator as the row executor
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, (_, desc)) in self.keys.iter().enumerate() {
                    let ord = a[i].cmp(&b[i]);
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            self.out = keyed.into_iter().map(|(_, r)| r).collect();
        }
        emit_chunk(&mut self.pos, &self.out, self.out_schema, self.bs)
    }
}

struct LimitOp<'p> {
    input: Box<dyn BatchOp + 'p>,
    remaining: usize,
}

impl BatchOp for LimitOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.input.next()? {
            Some(b) => {
                if b.len() <= self.remaining {
                    self.remaining -= b.len();
                    Ok(Some(b))
                } else {
                    let sel: Vec<u32> = (0..self.remaining as u32).collect();
                    self.remaining = 0;
                    Ok(Some(b.gather(&sel)))
                }
            }
            None => Ok(None),
        }
    }
}

struct ValuesOp<'p> {
    rows: &'p [Row],
    schema: &'p Schema,
    pos: usize,
    bs: usize,
}

impl BatchOp for ValuesOp<'_> {
    fn next(&mut self) -> Result<Option<Batch>> {
        emit_chunk(&mut self.pos, self.rows, self.schema, self.bs)
    }
}

/// Emit the next `bs`-row chunk of a materialized row set as a batch.
fn emit_chunk(pos: &mut usize, rows: &[Row], schema: &Schema, bs: usize) -> Result<Option<Batch>> {
    if *pos >= rows.len() {
        return Ok(None);
    }
    let end = (*pos + bs).min(rows.len());
    let b = Batch::from_rows(schema, &rows[*pos..end]);
    *pos = end;
    Ok(Some(b))
}

/// Drain an operator into a materialized row vector.
fn drain(op: &mut Box<dyn BatchOp + '_>) -> Result<Vec<Row>> {
    let mut rows = Vec::new();
    while let Some(b) = op.next()? {
        rows.extend(b.to_rows());
    }
    Ok(rows)
}

/// Drain an operator, evaluating a compiled key expression over each
/// batch; returns rows and their keys, positionally aligned.
fn drain_keyed(
    op: &mut Box<dyn BatchOp + '_>,
    key: &VExpr,
    ctx: &ExecContext<'_>,
) -> Result<(Vec<Row>, Vec<Value>)> {
    let mut rows = Vec::new();
    let mut keys = Vec::new();
    while let Some(b) = op.next()? {
        let kc = vexpr::eval(key, &b, ctx.fns)?;
        for i in 0..b.len() {
            keys.push(kc.value(i));
            rows.push(b.row(i));
        }
    }
    Ok((rows, keys))
}
