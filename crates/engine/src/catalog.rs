//! Catalog: tables, secondary indexes, and their physical storage.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use aimdb_common::{AimError, LockRank, Result, Row, Schema, Value};
use aimdb_storage::{BTree, BufferPool, HeapFile, RowId};

use crate::mvcc::{RowVis, Snapshot, VersionMeta};

/// A secondary index: one column, B+tree from value to row ids.
pub struct Index {
    pub name: String,
    pub table: String,
    pub column: String,
    pub tree: RwLock<BTree<Value, Vec<RowId>>>,
}

impl Index {
    /// Row ids whose key equals `v`.
    pub fn lookup(&self, v: &Value) -> Vec<RowId> {
        self.tree.read().get(v).cloned().unwrap_or_default()
    }

    /// Row ids with key in `[lo, hi]`.
    pub fn range(&self, lo: &Value, hi: &Value) -> Vec<RowId> {
        self.tree
            .read()
            .range(lo, hi)
            .into_iter()
            .flat_map(|(_, rids)| rids)
            .collect()
    }

    /// Same result as [`range`], but pulled through the B+tree's
    /// chunked leaf-chain cursor in `chunk`-key steps — the batched
    /// scan path used by the vectorized executor.
    ///
    /// [`range`]: Index::range
    pub fn range_batched(&self, lo: &Value, hi: &Value, chunk: usize) -> Vec<RowId> {
        let tree = self.tree.read();
        let mut cur = tree.range_cursor(lo, hi);
        let mut pairs: Vec<(Value, Vec<RowId>)> = Vec::new();
        let mut out = Vec::new();
        loop {
            pairs.clear();
            if cur.next_chunk(chunk.max(1), &mut pairs) == 0 {
                return out;
            }
            out.extend(pairs.drain(..).flat_map(|(_, rids)| rids));
        }
    }

    fn insert_entry(&self, v: Value, rid: RowId) {
        let mut tree = self.tree.write();
        match tree.get(&v).cloned() {
            Some(mut rids) => {
                rids.push(rid);
                tree.insert(v, rids);
            }
            None => {
                tree.insert(v, vec![rid]);
            }
        }
    }

    fn remove_entry(&self, v: &Value, rid: RowId) {
        let mut tree = self.tree.write();
        if let Some(mut rids) = tree.get(v).cloned() {
            rids.retain(|r| *r != rid);
            if rids.is_empty() {
                tree.remove(v);
            } else {
                tree.insert(v.clone(), rids);
            }
        }
    }
}

/// A table: schema + heap + indexes on it.
pub struct Table {
    pub name: String,
    pub schema: Schema,
    pub heap: HeapFile,
    /// column name (lowercase) → index
    indexes: RwLock<HashMap<String, Arc<Index>>>,
    /// Live MVCC version metadata. Rows absent from this map are
    /// legacy-committed (recovery rebuilds, vacuumed versions) and
    /// visible to every reader.
    versions: Mutex<HashMap<RowId, VersionMeta>>,
}

impl Table {
    pub fn new(name: String, schema: Schema, pool: Arc<BufferPool>) -> Self {
        Table {
            name,
            schema,
            heap: HeapFile::new(pool),
            indexes: RwLock::with_rank(HashMap::new(), LockRank::TableIndexes),
            versions: Mutex::with_rank(HashMap::new(), LockRank::TableVersions),
        }
    }

    /// Insert a row, maintaining all indexes. Values are validated and
    /// coerced against the schema.
    pub fn insert(&self, values: Vec<Value>) -> Result<RowId> {
        let values = self.schema.check_row(values)?;
        let row = Row::new(values);
        let rid = self.heap.insert(&row)?;
        for idx in self.indexes.read().values() {
            let col = self.schema.index_of(&idx.column)?;
            idx.insert_entry(row.get(col).clone(), rid);
        }
        Ok(rid)
    }

    /// Delete by row id; returns the old row if it existed.
    pub fn delete(&self, rid: RowId) -> Result<Option<Row>> {
        let Some(old) = self.heap.get(rid)? else {
            return Ok(None);
        };
        self.heap.delete(rid)?;
        for idx in self.indexes.read().values() {
            let col = self.schema.index_of(&idx.column)?;
            idx.remove_entry(old.get(col), rid);
        }
        Ok(Some(old))
    }

    /// Replace the row at `rid`; returns `(old_row, new_rid)`.
    pub fn update(&self, rid: RowId, values: Vec<Value>) -> Result<(Row, RowId)> {
        let old = self
            .delete(rid)?
            .ok_or_else(|| AimError::NotFound(format!("row {rid:?}")))?;
        let new_rid = self.insert(values)?;
        Ok((old, new_rid))
    }

    /// Re-insert a previously deleted row (transaction undo).
    pub fn reinsert(&self, row: Row) -> Result<RowId> {
        let rid = self.heap.insert(&row)?;
        for idx in self.indexes.read().values() {
            let col = self.schema.index_of(&idx.column)?;
            idx.insert_entry(row.get(col).clone(), rid);
        }
        Ok(rid)
    }

    /// Raw heap scan: every physical row, including versions invisible
    /// to the caller. Readers should use [`Table::scan_visible`].
    pub fn scan(&self) -> Result<Vec<(RowId, Row)>> {
        self.heap.scan()
    }

    /// Scan through a visibility filter: the caller's snapshot, or the
    /// latest-committed view when no transaction is open.
    pub fn scan_visible(&self, snap: Option<Snapshot>) -> Result<Vec<(RowId, Row)>> {
        let vis = self.visibility(snap)?;
        Ok(self
            .heap
            .scan()?
            .into_iter()
            .filter(|(rid, _)| vis.allows(*rid))
            .collect())
    }

    /// Resolve a row-visibility filter for one scan: clone the live
    /// version metas and capture the heap insertion watermark, both
    /// under the versions lock. [`Table::mvcc_insert`] holds the same
    /// lock across heap insert + meta registration, so every row below
    /// the watermark has its meta in the clone — per-row checks then
    /// take no lock at all.
    pub fn visibility(&self, snap: Option<Snapshot>) -> Result<RowVis> {
        let vs = self.versions.lock();
        let wm = self.heap.watermark()?;
        Ok(RowVis::new(vs.clone(), wm, snap))
    }

    /// Insert a new, uncommitted version owned by `txn`. The versions
    /// lock is held across the heap insert so the row and its meta
    /// appear atomically to [`Table::visibility`] — a scan never
    /// observes the row as meta-less (which would read as committed).
    pub fn mvcc_insert(&self, values: Vec<Value>, txn: u64) -> Result<RowId> {
        let mut vs = self.versions.lock();
        let rid = self.insert(values)?;
        vs.insert(rid, VersionMeta::created_by(txn));
        Ok(rid)
    }

    /// Claim the version at `rid` as superseded by the snapshot's
    /// transaction, under first-updater-wins: any competing claim or any
    /// version committed after the snapshot's `read_ts` is a
    /// [`AimError::WriteConflict`]. Rows without a meta are legacy
    /// committed and acquire one on first claim.
    pub fn mvcc_claim(&self, rid: RowId, snap: &Snapshot) -> Result<()> {
        let mut vs = self.versions.lock();
        let meta = vs.entry(rid).or_insert_with(VersionMeta::legacy);
        if meta.end_ts.is_some() {
            return Err(AimError::WriteConflict(format!(
                "row {rid:?} in {} superseded by a committed transaction",
                self.name
            )));
        }
        if let Some(owner) = meta.end_txn {
            if owner == snap.txn {
                return Ok(()); // already claimed by us
            }
            return Err(AimError::WriteConflict(format!(
                "row {rid:?} in {} claimed by concurrent transaction {owner}",
                self.name
            )));
        }
        match meta.begin_ts {
            None if meta.begin_txn != snap.txn => Err(AimError::WriteConflict(format!(
                "row {rid:?} in {} is an uncommitted insert of transaction {}",
                self.name, meta.begin_txn
            ))),
            Some(ts) if ts > snap.read_ts => Err(AimError::WriteConflict(format!(
                "row {rid:?} in {} committed at ts {ts}, after snapshot ts {}",
                self.name, snap.read_ts
            ))),
            _ => {
                meta.end_txn = Some(snap.txn);
                Ok(())
            }
        }
    }

    /// Release `txn`'s uncommitted claim on `rid` (rollback).
    pub fn mvcc_unclaim(&self, rid: RowId, txn: u64) {
        let mut vs = self.versions.lock();
        if let Some(meta) = vs.get_mut(&rid) {
            if meta.end_txn == Some(txn) && meta.end_ts.is_none() {
                meta.end_txn = None;
                // a legacy meta with no remaining claim carries no info
                if *meta == VersionMeta::legacy() {
                    vs.remove(&rid);
                }
            }
        }
    }

    /// Physically remove an uncommitted version created by a rolled-back
    /// transaction, along with its meta and index entries.
    ///
    /// The heap delete comes *first*: a concurrent scan that resolved its
    /// visibility before the delete holds the uncommitted meta (row
    /// hidden), and one resolving after no longer finds the row at all.
    /// Removing the meta first would open a window where the live row
    /// reads as meta-less — i.e. legacy-committed — to a fresh scan.
    pub fn mvcc_drop_created(&self, rid: RowId) -> Result<()> {
        self.delete(rid)?;
        self.versions.lock().remove(&rid);
        Ok(())
    }

    /// Stamp the commit timestamp onto a version created by the
    /// committing transaction.
    pub fn mvcc_stamp_begin(&self, rid: RowId, cts: u64) {
        if let Some(meta) = self.versions.lock().get_mut(&rid) {
            meta.begin_ts = Some(cts);
        }
    }

    /// Stamp the commit timestamp onto a version superseded by the
    /// committing transaction.
    pub fn mvcc_stamp_end(&self, rid: RowId, cts: u64) {
        if let Some(meta) = self.versions.lock().get_mut(&rid) {
            meta.end_ts = Some(cts);
        }
    }

    /// Garbage-collect at a quiescent point (no active transactions):
    /// physically delete versions whose superseding transaction
    /// committed, and fold surviving committed metas back into the
    /// implicit legacy state. Returns the number of dead versions
    /// removed.
    /// `horizon` is the oldest read timestamp any live or future
    /// snapshot can hold ([`crate::mvcc::TxnRuntime::vacuum_horizon`]):
    /// versions superseded at or before it are invisible to everyone.
    pub fn vacuum(&self, horizon: u64) -> Result<usize> {
        let dead: Vec<RowId> = {
            let vs = self.versions.lock();
            vs.iter()
                .filter(|(_, m)| m.end_ts.map(|e| e <= horizon).unwrap_or(false))
                .map(|(rid, _)| *rid)
                .collect()
        };
        // Heap deletes happen *before* the metas go: a reader entering
        // mid-vacuum (its read timestamp is the latest commit, at or
        // above every dead version's end timestamp) either finds a dead
        // row together with the meta that hides it, or no row at all —
        // never a meta-less dead row masquerading as legacy-committed.
        for rid in &dead {
            self.delete(*rid)?;
        }
        let mut vs = self.versions.lock();
        for rid in &dead {
            vs.remove(rid);
        }
        // Fold committed metas visible to every live snapshot back into
        // the implicit legacy state; keep uncommitted creations, claimed
        // or superseded versions, and commits newer than the horizon.
        vs.retain(|_, m| {
            let uncommitted = m.begin_ts.is_none();
            let claimed = m.end_txn.is_some() || m.end_ts.is_some();
            let young = m.begin_ts.map(|b| b > horizon).unwrap_or(false);
            uncommitted || claimed || young
        });
        Ok(dead.len())
    }

    pub fn row_count(&self) -> Result<usize> {
        self.heap.len()
    }

    /// Build a new index over `column`, backfilling existing rows.
    pub fn create_index(&self, name: &str, column: &str) -> Result<Arc<Index>> {
        let col = self.schema.index_of(column)?;
        let mut map = self.indexes.write();
        let key = column.to_ascii_lowercase();
        if map.contains_key(&key) {
            return Err(AimError::AlreadyExists(format!(
                "index on {}.{column}",
                self.name
            )));
        }
        let idx = Arc::new(Index {
            name: name.to_string(),
            table: self.name.clone(),
            column: column.to_string(),
            tree: RwLock::with_rank(BTree::new(), LockRank::IndexTree),
        });
        for (rid, row) in self.heap.scan()? {
            idx.insert_entry(row.get(col).clone(), rid);
        }
        map.insert(key, Arc::clone(&idx));
        Ok(idx)
    }

    pub fn drop_index_on(&self, column: &str) -> bool {
        self.indexes
            .write()
            .remove(&column.to_ascii_lowercase())
            .is_some()
    }

    /// The index on `column`, if one exists.
    pub fn index_on(&self, column: &str) -> Option<Arc<Index>> {
        self.indexes
            .read()
            .get(&column.to_ascii_lowercase())
            .cloned()
    }

    pub fn indexed_columns(&self) -> Vec<String> {
        self.indexes
            .read()
            .values()
            .map(|i| i.column.clone())
            .collect()
    }
}

/// The catalog of all tables and indexes.
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    /// index name (lowercase) → (table, column)
    index_names: RwLock<HashMap<String, (String, String)>>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    pub fn new() -> Self {
        Catalog {
            tables: RwLock::with_rank(HashMap::new(), LockRank::CatalogTables),
            index_names: RwLock::with_rank(HashMap::new(), LockRank::CatalogIndexNames),
        }
    }

    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        pool: Arc<BufferPool>,
    ) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(AimError::AlreadyExists(format!("table {name}")));
        }
        let t = Arc::new(Table::new(name.to_string(), schema, pool));
        tables.insert(key, Arc::clone(&t));
        Ok(t)
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        self.tables
            .write()
            .remove(&key)
            .map(|_| ())
            .ok_or_else(|| AimError::NotFound(format!("table {name}")))?;
        // drop its index names
        self.index_names
            .write()
            .retain(|_, (t, _)| !t.eq_ignore_ascii_case(name));
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| AimError::NotFound(format!("table {name}")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .values()
            .map(|t| t.name.clone())
            .collect();
        names.sort();
        names
    }

    pub fn create_index(&self, name: &str, table: &str, column: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.index_names.read().contains_key(&key) {
            return Err(AimError::AlreadyExists(format!("index {name}")));
        }
        let t = self.table(table)?;
        t.create_index(name, column)?;
        self.index_names
            .write()
            .insert(key, (table.to_string(), column.to_string()));
        Ok(())
    }

    /// All secondary indexes as `(name, table, column)`, sorted by name —
    /// the shape checkpoint snapshots persist.
    pub fn indexes(&self) -> Vec<(String, String, String)> {
        let mut out: Vec<(String, String, String)> = self
            .index_names
            .read()
            .iter()
            .map(|(name, (table, column))| (name.clone(), table.clone(), column.clone()))
            .collect();
        out.sort();
        out
    }

    pub fn drop_index(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let (table, column) = self
            .index_names
            .write()
            .remove(&key)
            .ok_or_else(|| AimError::NotFound(format!("index {name}")))?;
        let t = self.table(&table)?;
        t.drop_index_on(&column);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimdb_common::DataType;
    use aimdb_storage::Disk;

    fn setup() -> (Arc<BufferPool>, Catalog) {
        let pool = Arc::new(BufferPool::new(Arc::new(Disk::new()), 64));
        (pool, Catalog::new())
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Text)])
    }

    #[test]
    fn create_insert_scan() {
        let (pool, cat) = setup();
        let t = cat.create_table("users", schema(), pool).unwrap();
        t.insert(vec![Value::Int(1), Value::Text("ann".into())])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Text("bob".into())])
            .unwrap();
        assert_eq!(t.row_count().unwrap(), 2);
        assert!(cat
            .create_table(
                "USERS",
                schema(),
                Arc::new(BufferPool::new(Arc::new(Disk::new()), 4))
            )
            .is_err());
        assert!(cat.table("Users").is_ok());
    }

    #[test]
    fn index_maintained_through_dml() {
        let (pool, cat) = setup();
        let t = cat.create_table("u", schema(), pool).unwrap();
        let r1 = t
            .insert(vec![Value::Int(1), Value::Text("a".into())])
            .unwrap();
        cat.create_index("idx_id", "u", "id").unwrap();
        let r2 = t
            .insert(vec![Value::Int(2), Value::Text("b".into())])
            .unwrap();
        let idx = t.index_on("id").unwrap();
        assert_eq!(idx.lookup(&Value::Int(1)), vec![r1]);
        assert_eq!(idx.lookup(&Value::Int(2)), vec![r2]);
        // update moves the row
        let (_, r2b) = t
            .update(r2, vec![Value::Int(3), Value::Text("b".into())])
            .unwrap();
        assert!(idx.lookup(&Value::Int(2)).is_empty());
        assert_eq!(idx.lookup(&Value::Int(3)), vec![r2b]);
        // delete removes the entry
        t.delete(r1).unwrap();
        assert!(idx.lookup(&Value::Int(1)).is_empty());
    }

    #[test]
    fn index_range_scan() {
        let (pool, cat) = setup();
        let t = cat.create_table("u", schema(), pool).unwrap();
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::Text(format!("n{i}"))])
                .unwrap();
        }
        cat.create_index("idx", "u", "id").unwrap();
        let idx = t.index_on("id").unwrap();
        assert_eq!(idx.range(&Value::Int(10), &Value::Int(19)).len(), 10);
    }

    #[test]
    fn duplicate_keys_in_index() {
        let (pool, cat) = setup();
        let t = cat.create_table("u", schema(), pool).unwrap();
        cat.create_index("idx", "u", "id").unwrap();
        let a = t
            .insert(vec![Value::Int(7), Value::Text("x".into())])
            .unwrap();
        let b = t
            .insert(vec![Value::Int(7), Value::Text("y".into())])
            .unwrap();
        let idx = t.index_on("id").unwrap();
        let mut rids = idx.lookup(&Value::Int(7));
        rids.sort();
        let mut expect = vec![a, b];
        expect.sort();
        assert_eq!(rids, expect);
        t.delete(a).unwrap();
        assert_eq!(idx.lookup(&Value::Int(7)), vec![b]);
    }

    #[test]
    fn drop_index_and_table() {
        let (pool, cat) = setup();
        cat.create_table("u", schema(), pool).unwrap();
        cat.create_index("idx", "u", "id").unwrap();
        assert!(cat.create_index("idx", "u", "name").is_err()); // name taken
        cat.drop_index("IDX").unwrap();
        assert!(cat.drop_index("idx").is_err());
        cat.drop_table("u").unwrap();
        assert!(cat.table("u").is_err());
    }

    #[test]
    fn insert_validates_schema() {
        let (pool, cat) = setup();
        let t = cat.create_table("u", schema(), pool).unwrap();
        assert!(t.insert(vec![Value::Int(1)]).is_err());
        assert!(t
            .insert(vec![Value::Text("no".into()), Value::Text("x".into())])
            .is_err());
    }
}
