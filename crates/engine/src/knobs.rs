//! Tunable system knobs — the configuration space of the knob-tuning
//! experiment (E1).
//!
//! Mirrors the knob classes the tutorial names (memory allocation, I/O
//! control, logging, parallelism): each knob has a legal range and a
//! default, and the set is introspectable so tuners can enumerate the
//! space without hard-coding names.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use aimdb_common::{AimError, LockRank, Result, Value};

/// Description of one knob.
#[derive(Debug, Clone)]
pub struct KnobSpec {
    pub name: &'static str,
    pub min: i64,
    pub max: i64,
    pub default: i64,
    pub description: &'static str,
}

/// The knob space. All knobs are integer-valued (booleans are 0/1).
pub const KNOB_SPECS: &[KnobSpec] = &[
    KnobSpec {
        name: "buffer_pool_pages",
        min: 1,
        max: 16384,
        default: 256,
        description: "pages cached by the buffer pool",
    },
    KnobSpec {
        name: "work_mem_kb",
        min: 64,
        max: 65536,
        default: 4096,
        description: "per-operator memory before spilling (sorts, hashes)",
    },
    KnobSpec {
        name: "max_connections",
        min: 1,
        max: 4096,
        default: 100,
        description: "concurrent session limit enforced by the server's admission gate",
    },
    KnobSpec {
        name: "admission_max_statements",
        min: 1,
        max: 4096,
        default: 64,
        description: "statements allowed in the engine at once; excess queues then sheds \
                      (actuated by the ai4db admission tuner)",
    },
    KnobSpec {
        name: "admission_queue_timeout_ms",
        min: 0,
        max: 10_000,
        default: 100,
        description: "milliseconds a statement may wait at the admission gate before it is \
                      rejected instead of queued",
    },
    KnobSpec {
        name: "wal_sync",
        min: 0,
        max: 1,
        default: 1,
        description: "synchronous WAL flush on commit (durability vs speed)",
    },
    KnobSpec {
        name: "parallel_workers",
        min: 1,
        max: 64,
        default: 2,
        description: "workers for parallelizable operators",
    },
    KnobSpec {
        name: "checkpoint_interval",
        min: 16,
        max: 16384,
        default: 1024,
        description: "WAL records between checkpoints",
    },
    KnobSpec {
        name: "random_page_cost",
        min: 1,
        max: 100,
        default: 4,
        description: "optimizer cost of a random page read (x seq read)",
    },
    KnobSpec {
        name: "stats_sample_rows",
        min: 100,
        max: 1000000,
        default: 10000,
        description: "rows sampled by ANALYZE",
    },
    KnobSpec {
        name: "vectorized_exec",
        min: 0,
        max: 1,
        default: 1,
        description: "execute queries through the batch pipeline (0 = row-at-a-time)",
    },
    KnobSpec {
        name: "exec_batch_size",
        min: 64,
        max: 65536,
        default: 1024,
        description: "rows per column batch in the vectorized executor",
    },
    KnobSpec {
        name: "exec_parallelism",
        min: 0,
        max: 64,
        default: 0,
        description:
            "morsel worker threads for parallel scans (0 = all available cores, 1 = serial)",
    },
    KnobSpec {
        name: "group_commit_window",
        min: 0,
        max: 10_000,
        default: 0,
        description:
            "microseconds a group-commit leader waits for followers before the shared WAL flush",
    },
    KnobSpec {
        name: "query_tracing",
        min: 0,
        max: 1,
        default: 1,
        description: "record per-query lifecycle traces and operator profiles (0 = off)",
    },
    KnobSpec {
        name: "slow_query_cost_threshold",
        min: 1,
        max: 1_000_000_000,
        default: 100_000,
        description: "cost units at which a traced query is written to the slow-query log",
    },
];

/// Live knob values.
pub struct Knobs {
    values: RwLock<BTreeMap<&'static str, i64>>,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs::new()
    }
}

impl Knobs {
    pub fn new() -> Self {
        Knobs {
            values: RwLock::with_rank(
                KNOB_SPECS.iter().map(|s| (s.name, s.default)).collect(),
                LockRank::Knobs,
            ),
        }
    }

    pub fn spec(name: &str) -> Option<&'static KnobSpec> {
        KNOB_SPECS
            .iter()
            .find(|s| s.name.eq_ignore_ascii_case(name))
    }

    pub fn get(&self, name: &str) -> Result<i64> {
        let spec = Self::spec(name).ok_or_else(|| AimError::NotFound(format!("knob {name}")))?;
        self.values
            .read()
            .get(spec.name)
            .copied()
            .ok_or_else(|| AimError::NotFound(format!("knob {name} has no value")))
    }

    /// Set a knob, clamping into its legal range. Returns the applied value.
    pub fn set(&self, name: &str, value: &Value) -> Result<i64> {
        let spec = Self::spec(name).ok_or_else(|| AimError::NotFound(format!("knob {name}")))?;
        let v = value.as_i64()?.clamp(spec.min, spec.max);
        self.values.write().insert(spec.name, v);
        Ok(v)
    }

    /// All current values in a stable order.
    pub fn snapshot(&self) -> Vec<(&'static str, i64)> {
        self.values.read().iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Reset every knob to its default.
    pub fn reset(&self) {
        let mut vals = self.values.write();
        for s in KNOB_SPECS {
            vals.insert(s.name, s.default);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_get() {
        let k = Knobs::new();
        assert_eq!(k.get("buffer_pool_pages").unwrap(), 256);
        assert_eq!(k.get("WAL_SYNC").unwrap(), 1);
        assert!(k.get("nonexistent").is_err());
    }

    #[test]
    fn set_clamps_to_range() {
        let k = Knobs::new();
        assert_eq!(
            k.set("buffer_pool_pages", &Value::Int(1_000_000)).unwrap(),
            16384
        );
        assert_eq!(k.set("buffer_pool_pages", &Value::Int(-5)).unwrap(), 1);
        assert_eq!(k.get("buffer_pool_pages").unwrap(), 1);
        assert!(k.set("wal_sync", &Value::Text("yes".into())).is_err());
    }

    #[test]
    fn snapshot_and_reset() {
        let k = Knobs::new();
        k.set("work_mem_kb", &Value::Int(128)).unwrap();
        let snap = k.snapshot();
        assert_eq!(snap.len(), KNOB_SPECS.len());
        assert!(snap.iter().any(|&(n, v)| n == "work_mem_kb" && v == 128));
        k.reset();
        assert_eq!(k.get("work_mem_kb").unwrap(), 4096);
    }

    #[test]
    fn specs_are_well_formed() {
        for s in KNOB_SPECS {
            assert!(s.min <= s.default && s.default <= s.max, "{}", s.name);
            assert!(!s.description.is_empty());
        }
    }
}
