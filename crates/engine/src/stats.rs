//! Optimizer statistics: row counts, per-column equi-depth histograms and
//! distinct counts, plus the classical selectivity model built on them.
//!
//! This is the *traditional empirical* estimator the tutorial says learned
//! estimators beat when columns are correlated: selectivities of multiple
//! predicates are multiplied under an independence assumption.

use std::collections::HashMap;

use aimdb_common::{DataType, Result, Value};

use crate::catalog::Table;

/// Equi-depth histogram over a numeric column.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    /// Bucket upper bounds (inclusive); ~equal row counts per bucket.
    pub bounds: Vec<f64>,
    pub min: f64,
    pub max: f64,
    pub n_buckets: usize,
}

impl Histogram {
    /// Build from a sample of values with `n_buckets` buckets.
    pub fn build(mut values: Vec<f64>, n_buckets: usize) -> Histogram {
        values.retain(|v| v.is_finite());
        if values.is_empty() {
            return Histogram::default();
        }
        values.sort_by(|a, b| a.total_cmp(b));
        let n_buckets = n_buckets.max(1).min(values.len());
        let per = values.len() as f64 / n_buckets as f64;
        let bounds: Vec<f64> = (1..=n_buckets)
            .map(|b| values[((b as f64 * per).ceil() as usize - 1).min(values.len() - 1)])
            .collect();
        Histogram {
            min: values[0],
            max: values[values.len() - 1],
            bounds,
            n_buckets,
        }
    }

    /// Estimated fraction of rows with value <= x.
    pub fn cdf(&self, x: f64) -> f64 {
        if self.bounds.is_empty() {
            return 0.5;
        }
        if x < self.min {
            return 0.0;
        }
        if x >= self.max {
            return 1.0;
        }
        // find bucket containing x; interpolate within it
        let b = self.bounds.partition_point(|&u| u < x);
        let lo = if b == 0 { self.min } else { self.bounds[b - 1] };
        let hi = self.bounds[b.min(self.bounds.len() - 1)];
        let within = if hi > lo { (x - lo) / (hi - lo) } else { 1.0 };
        (b as f64 + within) / self.n_buckets as f64
    }

    /// Estimated fraction of rows in `[lo, hi]`.
    pub fn range_fraction(&self, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let l = lo.map_or(0.0, |x| self.cdf(x));
        let h = hi.map_or(1.0, |x| self.cdf(x));
        (h - l).clamp(0.0, 1.0)
    }
}

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub n_distinct: usize,
    pub null_fraction: f64,
    /// Present for numeric columns only.
    pub histogram: Option<Histogram>,
    /// Top value frequency (most-common-value fraction).
    pub mcv_fraction: f64,
}

/// Statistics for one table.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    pub row_count: usize,
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Compute stats by scanning the table (ANALYZE).
    pub fn analyze(table: &Table, n_buckets: usize) -> Result<TableStats> {
        let rows = table.scan_visible(None)?;
        let row_count = rows.len();
        let mut columns = HashMap::new();
        for (ci, col) in table.schema.columns().iter().enumerate() {
            let mut numeric = Vec::new();
            let mut distinct: HashMap<Value, usize> = HashMap::new();
            let mut nulls = 0usize;
            for (_, row) in &rows {
                let v = row.get(ci);
                if v.is_null() {
                    nulls += 1;
                    continue;
                }
                *distinct.entry(v.clone()).or_default() += 1;
                if matches!(col.data_type, DataType::Int | DataType::Float) {
                    if let Ok(f) = v.as_f64() {
                        numeric.push(f);
                    }
                }
            }
            let mcv = distinct.values().max().copied().unwrap_or(0);
            let non_null = row_count - nulls;
            columns.insert(
                col.name.to_ascii_lowercase(),
                ColumnStats {
                    n_distinct: distinct.len().max(1),
                    null_fraction: if row_count == 0 {
                        0.0
                    } else {
                        nulls as f64 / row_count as f64
                    },
                    histogram: if numeric.is_empty() {
                        None
                    } else {
                        Some(Histogram::build(numeric, n_buckets))
                    },
                    mcv_fraction: if non_null == 0 {
                        0.0
                    } else {
                        mcv as f64 / non_null as f64
                    },
                },
            );
        }
        Ok(TableStats { row_count, columns })
    }

    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(&name.to_ascii_lowercase())
    }

    /// Selectivity of `col = v`.
    pub fn eq_selectivity(&self, col: &str) -> f64 {
        match self.column(col) {
            Some(c) => ((1.0 - c.null_fraction) / c.n_distinct as f64).clamp(1e-9, 1.0),
            None => 0.1,
        }
    }

    /// Selectivity of a numeric range predicate on `col`.
    pub fn range_selectivity(&self, col: &str, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let Some(c) = self.column(col) else {
            return 0.33;
        };
        match c.histogram.as_ref() {
            Some(h) => {
                let mut f = h.range_fraction(lo, hi);
                // The continuous CDF difference excludes the lower
                // boundary's own mass, so on discrete data an inclusive
                // `x >= lo` under-counts by one value — and a narrow or
                // max-boundary interval collapses to zero. Add one
                // value's worth of mass back.
                if lo.is_some() && c.n_distinct > 0 {
                    f += (1.0 - c.null_fraction) / c.n_distinct as f64;
                }
                f.clamp(1e-9, 1.0)
            }
            None => 0.33,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimdb_common::Schema;
    use aimdb_storage::{BufferPool, Disk};
    use std::sync::Arc;

    fn table_with(values: Vec<Vec<Value>>) -> Table {
        let pool = Arc::new(BufferPool::new(Arc::new(Disk::new()), 64));
        let t = Table::new(
            "t".into(),
            Schema::from_pairs(&[("a", DataType::Int), ("s", DataType::Text)]),
            pool,
        );
        for v in values {
            t.insert(v).unwrap();
        }
        t
    }

    #[test]
    fn histogram_cdf_uniform() {
        let h = Histogram::build((0..1000).map(|i| i as f64).collect(), 20);
        assert!((h.cdf(500.0) - 0.5).abs() < 0.03);
        assert_eq!(h.cdf(-10.0), 0.0);
        assert_eq!(h.cdf(2000.0), 1.0);
        assert!((h.range_fraction(Some(250.0), Some(750.0)) - 0.5).abs() < 0.05);
    }

    #[test]
    fn histogram_skewed_data() {
        // 90% of mass at small values
        let mut vals: Vec<f64> = (0..900).map(|i| (i % 10) as f64).collect();
        vals.extend((0..100).map(|i| 1000.0 + i as f64));
        let h = Histogram::build(vals, 10);
        // values ≤ 9 cover ~90% of rows
        assert!(h.cdf(9.5) > 0.85);
    }

    #[test]
    fn analyze_computes_column_stats() {
        let rows: Vec<Vec<Value>> = (0..200)
            .map(|i| vec![Value::Int(i % 10), Value::Text(format!("s{}", i % 4))])
            .collect();
        let t = table_with(rows);
        let st = TableStats::analyze(&t, 10).unwrap();
        assert_eq!(st.row_count, 200);
        let a = st.column("a").unwrap();
        assert_eq!(a.n_distinct, 10);
        assert!((st.eq_selectivity("a") - 0.1).abs() < 1e-9);
        let s = st.column("S").unwrap();
        assert_eq!(s.n_distinct, 4);
        assert!(s.histogram.is_none());
        assert!((s.mcv_fraction - 0.25).abs() < 1e-9);
    }

    #[test]
    fn null_fraction_tracked() {
        let mut rows: Vec<Vec<Value>> = (0..50).map(|i| vec![Value::Int(i), Value::Null]).collect();
        rows.extend((0..50).map(|i| vec![Value::Int(i), Value::Text("x".into())]));
        let t = table_with(rows);
        let st = TableStats::analyze(&t, 10).unwrap();
        assert!((st.column("s").unwrap().null_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_table_stats() {
        let t = table_with(vec![]);
        let st = TableStats::analyze(&t, 10).unwrap();
        assert_eq!(st.row_count, 0);
        assert!(st.eq_selectivity("a") > 0.0);
        assert_eq!(st.range_selectivity("a", Some(0.0), Some(1.0)), 0.33);
    }
}
