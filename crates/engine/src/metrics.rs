//! The KPI surface consumed by monitoring and tuning components.
//!
//! Every query execution reports its cost units and outcome here; the
//! health monitor (E11), activity monitor (E12) and knob tuner (E1) read
//! [`KpiSnapshot`]s rather than scraping engine internals — the same
//! architectural boundary external AI4DB tools have against a real DBMS.

use std::collections::{BTreeMap, VecDeque};

use parking_lot::Mutex;

use crate::exec::OpStats;

/// A point-in-time view of engine health metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KpiSnapshot {
    pub queries_executed: u64,
    pub rows_emitted: u64,
    /// Cost units charged by the executor (proxy for latency).
    pub total_cost_units: f64,
    pub avg_cost_per_query: f64,
    pub p95_cost_per_query: f64,
    pub buffer_hit_rate: f64,
    pub disk_reads: u64,
    pub disk_writes: u64,
    pub errors: u64,
    pub txns_committed: u64,
    pub txns_aborted: u64,
    /// Crash recoveries performed on this instance's store.
    pub recoveries: u64,
    /// WAL records replayed across all recoveries.
    pub wal_records_replayed: u64,
}

impl KpiSnapshot {
    /// Flatten into the fixed feature vector monitors train on.
    pub fn feature_vector(&self) -> Vec<f64> {
        vec![
            self.queries_executed as f64,
            self.rows_emitted as f64,
            self.total_cost_units,
            self.avg_cost_per_query,
            self.p95_cost_per_query,
            self.buffer_hit_rate,
            self.disk_reads as f64,
            self.disk_writes as f64,
            self.errors as f64,
            self.txns_committed as f64,
            self.txns_aborted as f64,
            self.recoveries as f64,
            self.wal_records_replayed as f64,
        ]
    }

    /// Names aligned with [`feature_vector`](Self::feature_vector).
    pub fn feature_names() -> &'static [&'static str] {
        &[
            "queries_executed",
            "rows_emitted",
            "total_cost_units",
            "avg_cost_per_query",
            "p95_cost_per_query",
            "buffer_hit_rate",
            "disk_reads",
            "disk_writes",
            "errors",
            "txns_committed",
            "txns_aborted",
            "recoveries",
            "wal_records_replayed",
        ]
    }
}

/// Sliding-window metrics collector.
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

struct MetricsInner {
    queries: u64,
    rows: u64,
    cost_total: f64,
    recent_costs: VecDeque<f64>,
    errors: u64,
    committed: u64,
    aborted: u64,
    recoveries: u64,
    replayed: u64,
    /// Per-operator rows / batches / wall-time, keyed by operator name.
    operators: BTreeMap<&'static str, OpStats>,
}

const WINDOW: usize = 512;

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            inner: Mutex::new(MetricsInner {
                queries: 0,
                rows: 0,
                cost_total: 0.0,
                recent_costs: VecDeque::with_capacity(WINDOW),
                errors: 0,
                committed: 0,
                aborted: 0,
                recoveries: 0,
                replayed: 0,
                operators: BTreeMap::new(),
            }),
        }
    }

    pub fn record_query(&self, rows: u64, cost_units: f64) {
        let mut m = self.inner.lock();
        m.queries += 1;
        m.rows += rows;
        m.cost_total += cost_units;
        if m.recent_costs.len() == WINDOW {
            m.recent_costs.pop_front();
        }
        m.recent_costs.push_back(cost_units);
    }

    pub fn record_error(&self) {
        self.inner.lock().errors += 1;
    }

    pub fn record_commit(&self) {
        self.inner.lock().committed += 1;
    }

    pub fn record_abort(&self) {
        self.inner.lock().aborted += 1;
    }

    /// Accumulate per-operator execution stats (rows, batches, wall-time)
    /// reported by the vectorized executor.
    pub fn record_operator(&self, name: &'static str, stats: OpStats) {
        let mut m = self.inner.lock();
        let e = m.operators.entry(name).or_default();
        e.rows += stats.rows;
        e.batches += stats.batches;
        e.ns += stats.ns;
    }

    /// Per-operator counters accumulated since the last reset, in stable
    /// (operator-name) order.
    pub fn operator_stats(&self) -> Vec<(&'static str, OpStats)> {
        self.inner
            .lock()
            .operators
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// Record one completed crash recovery and how many WAL records it
    /// replayed.
    pub fn record_recovery(&self, records_replayed: u64) {
        let mut m = self.inner.lock();
        m.recoveries += 1;
        m.replayed += records_replayed;
    }

    /// Snapshot combining engine counters with storage counters supplied by
    /// the caller (buffer hit rate, disk I/O).
    pub fn snapshot(&self, buffer_hit_rate: f64, disk_reads: u64, disk_writes: u64) -> KpiSnapshot {
        let m = self.inner.lock();
        let avg = if m.queries > 0 {
            m.cost_total / m.queries as f64
        } else {
            0.0
        };
        let p95 = if m.recent_costs.is_empty() {
            0.0
        } else {
            let mut v: Vec<f64> = m.recent_costs.iter().copied().collect();
            v.sort_by(|a, b| a.total_cmp(b));
            v[((v.len() as f64 * 0.95) as usize).min(v.len() - 1)]
        };
        KpiSnapshot {
            queries_executed: m.queries,
            rows_emitted: m.rows,
            total_cost_units: m.cost_total,
            avg_cost_per_query: avg,
            p95_cost_per_query: p95,
            buffer_hit_rate,
            disk_reads,
            disk_writes,
            errors: m.errors,
            txns_committed: m.committed,
            txns_aborted: m.aborted,
            recoveries: m.recoveries,
            wal_records_replayed: m.replayed,
        }
    }

    pub fn reset(&self) {
        let mut m = self.inner.lock();
        *m = MetricsInner {
            queries: 0,
            rows: 0,
            cost_total: 0.0,
            recent_costs: VecDeque::with_capacity(WINDOW),
            errors: 0,
            committed: 0,
            aborted: 0,
            recoveries: 0,
            replayed: 0,
            operators: BTreeMap::new(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let m = Metrics::new();
        m.record_query(10, 5.0);
        m.record_query(20, 15.0);
        m.record_error();
        m.record_commit();
        let s = m.snapshot(0.9, 100, 50);
        assert_eq!(s.queries_executed, 2);
        assert_eq!(s.rows_emitted, 30);
        assert_eq!(s.avg_cost_per_query, 10.0);
        assert_eq!(s.errors, 1);
        assert_eq!(s.txns_committed, 1);
        assert_eq!(s.buffer_hit_rate, 0.9);
    }

    #[test]
    fn p95_tracks_tail() {
        let m = Metrics::new();
        for _ in 0..95 {
            m.record_query(1, 1.0);
        }
        for _ in 0..5 {
            m.record_query(1, 100.0);
        }
        let s = m.snapshot(0.0, 0, 0);
        assert!(s.p95_cost_per_query >= 1.0);
        assert!(s.p95_cost_per_query <= 100.0);
        assert!(s.p95_cost_per_query > s.avg_cost_per_query / 2.0);
    }

    #[test]
    fn feature_vector_aligned_with_names() {
        let s = KpiSnapshot::default();
        assert_eq!(s.feature_vector().len(), KpiSnapshot::feature_names().len());
    }

    #[test]
    fn reset_clears() {
        let m = Metrics::new();
        m.record_query(1, 1.0);
        m.reset();
        assert_eq!(m.snapshot(0.0, 0, 0).queries_executed, 0);
    }

    #[test]
    fn operator_stats_accumulate_and_reset() {
        let m = Metrics::new();
        m.record_operator(
            "seq_scan",
            OpStats {
                rows: 10,
                batches: 2,
                ns: 100,
            },
        );
        m.record_operator(
            "seq_scan",
            OpStats {
                rows: 5,
                batches: 1,
                ns: 50,
            },
        );
        m.record_operator(
            "filter",
            OpStats {
                rows: 3,
                batches: 1,
                ns: 10,
            },
        );
        let stats = m.operator_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "filter");
        assert_eq!(stats[1].1.rows, 15);
        assert_eq!(stats[1].1.batches, 3);
        assert_eq!(stats[1].1.ns, 150);
        m.reset();
        assert!(m.operator_stats().is_empty());
    }
}
