//! The KPI surface consumed by monitoring and tuning components.
//!
//! Every query execution reports its cost units and outcome here; the
//! health monitor (E11), activity monitor (E12) and knob tuner (E1) read
//! [`KpiSnapshot`]s rather than scraping engine internals — the same
//! architectural boundary external AI4DB tools have against a real DBMS.
//!
//! Storage is an [`aimdb_trace::MetricsRegistry`]: monotonic counters
//! plus a log-linear cost histogram, which replaces the previous
//! 512-sample sliding window — quantiles (p50/p95/p99) now cover the
//! whole run in O(1) memory instead of the last 512 queries, and the
//! same registry renders the Prometheus-style `Database::metrics_text()`
//! page.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use aimdb_common::{wait, LockRank, WaitClass};
use aimdb_trace::MetricsRegistry;

use crate::exec::{OpKey, OpStats};

// Registry metric names (exposition page identifiers).
pub const QUERIES_TOTAL: &str = "aimdb_queries_total";
pub const ROWS_EMITTED_TOTAL: &str = "aimdb_rows_emitted_total";
pub const ERRORS_TOTAL: &str = "aimdb_errors_total";
pub const TXN_COMMITS_TOTAL: &str = "aimdb_txn_commits_total";
pub const TXN_ABORTS_TOTAL: &str = "aimdb_txn_aborts_total";
pub const RECOVERIES_TOTAL: &str = "aimdb_recoveries_total";
pub const WAL_REPLAYED_TOTAL: &str = "aimdb_wal_records_replayed_total";
pub const QUERY_COST_UNITS: &str = "aimdb_query_cost_units";
/// Transactions made durable per WAL fsync (histogram; p50 > 1 means
/// group commit is actually batching).
pub const GROUP_COMMIT_BATCH: &str = "aimdb_group_commit_batch";
/// Wall-clock seconds from commit request to published visibility.
pub const COMMIT_LATENCY_SECONDS: &str = "aimdb_commit_latency_seconds";
/// Contended lock acquisitions (a `lock()` that had to block), summed
/// over all ranks; per-rank counts ride the exposition page as
/// `aimdb_lock_contention_rank_total{rank="..."}`.
pub const LOCK_CONTENTION_TOTAL: &str = "aimdb_lock_contention_total";
/// Nanoseconds spent blocked acquiring contended locks, summed over all
/// ranks — the *time* companion to [`LOCK_CONTENTION_TOTAL`]'s count
/// (an acquisition tally alone cannot distinguish a thousand cheap
/// collisions from one long convoy). Per-rank time rides the exposition
/// page as `aimdb_lock_wait_ns_rank_total{rank="..."}`.
pub const LOCK_WAIT_NS_TOTAL: &str = "aimdb_lock_wait_ns_total";

/// A point-in-time view of engine health metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KpiSnapshot {
    pub queries_executed: u64,
    pub rows_emitted: u64,
    /// Cost units charged by the executor (proxy for latency).
    pub total_cost_units: f64,
    pub avg_cost_per_query: f64,
    pub p50_cost_per_query: f64,
    pub p95_cost_per_query: f64,
    pub p99_cost_per_query: f64,
    pub buffer_hit_rate: f64,
    pub disk_reads: u64,
    pub disk_writes: u64,
    pub errors: u64,
    pub txns_committed: u64,
    pub txns_aborted: u64,
    /// Crash recoveries performed on this instance's store.
    pub recoveries: u64,
    /// WAL records replayed across all recoveries.
    pub wal_records_replayed: u64,
    /// Process-wide blocked nanoseconds acquiring contended locks.
    pub wait_lock_ns: u64,
    /// Process-wide blocked nanoseconds in WAL fsync (group-commit
    /// leader window + flush) and follower waits.
    pub wait_wal_ns: u64,
    /// Process-wide blocked nanoseconds on buffer misses (disk reads).
    pub wait_io_ns: u64,
    /// Process-wide write-conflict events (first-updater-wins losers).
    pub wait_conflicts: u64,
}

impl KpiSnapshot {
    /// Flatten into the fixed feature vector monitors train on.
    pub fn feature_vector(&self) -> Vec<f64> {
        vec![
            self.queries_executed as f64,
            self.rows_emitted as f64,
            self.total_cost_units,
            self.avg_cost_per_query,
            self.p50_cost_per_query,
            self.p95_cost_per_query,
            self.p99_cost_per_query,
            self.buffer_hit_rate,
            self.disk_reads as f64,
            self.disk_writes as f64,
            self.errors as f64,
            self.txns_committed as f64,
            self.txns_aborted as f64,
            self.recoveries as f64,
            self.wal_records_replayed as f64,
            self.wait_lock_ns as f64,
            self.wait_wal_ns as f64,
            self.wait_io_ns as f64,
            self.wait_conflicts as f64,
        ]
    }

    /// Names aligned with [`feature_vector`](Self::feature_vector).
    pub fn feature_names() -> &'static [&'static str] {
        &[
            "queries_executed",
            "rows_emitted",
            "total_cost_units",
            "avg_cost_per_query",
            "p50_cost_per_query",
            "p95_cost_per_query",
            "p99_cost_per_query",
            "buffer_hit_rate",
            "disk_reads",
            "disk_writes",
            "errors",
            "txns_committed",
            "txns_aborted",
            "recoveries",
            "wal_records_replayed",
            "wait_lock_ns",
            "wait_wal_ns",
            "wait_io_ns",
            "wait_conflicts",
        ]
    }
}

/// Engine metrics collector over a [`MetricsRegistry`], plus the
/// per-operator counter table keyed by (operator, plan-node id).
pub struct Metrics {
    registry: Arc<MetricsRegistry>,
    /// Per-operator rows / batches / wall-time / cost, keyed by operator
    /// name and preorder plan-node id so two instances of one operator
    /// in the same plan shape keep separate counters.
    operators: Mutex<BTreeMap<OpKey, OpStats>>,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    pub fn new() -> Self {
        Metrics {
            registry: Arc::new(MetricsRegistry::default()),
            operators: Mutex::with_rank(BTreeMap::new(), LockRank::MetricsOperators),
        }
    }

    /// The underlying registry (shared with the exposition page).
    pub fn registry(&self) -> &MetricsRegistry {
        self.registry.as_ref()
    }

    /// An owned handle to the registry, for observers that outlive the
    /// borrow (e.g. the WAL flush observer reporting group-commit batch
    /// sizes from whichever thread leads the flush).
    pub fn registry_handle(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Observe one commit's request-to-visibility latency.
    pub fn record_commit_latency(&self, seconds: f64) {
        self.registry.observe(COMMIT_LATENCY_SECONDS, seconds);
    }

    pub fn record_query(&self, rows: u64, cost_units: f64) {
        self.registry.inc_counter(QUERIES_TOTAL, 1);
        self.registry.inc_counter(ROWS_EMITTED_TOTAL, rows);
        self.registry.observe(QUERY_COST_UNITS, cost_units);
    }

    pub fn record_error(&self) {
        self.registry.inc_counter(ERRORS_TOTAL, 1);
    }

    pub fn record_commit(&self) {
        self.registry.inc_counter(TXN_COMMITS_TOTAL, 1);
    }

    pub fn record_abort(&self) {
        self.registry.inc_counter(TXN_ABORTS_TOTAL, 1);
    }

    /// Accumulate per-operator execution stats (rows, batches, wall-time,
    /// cost units) reported by the vectorized executor for one plan node
    /// as observed by one worker. The serial pipeline reports under
    /// worker 0; morsel workers report under their 1-based worker id, so
    /// two workers running the same plan node never merge.
    pub fn record_operator(&self, name: &'static str, node: usize, worker: usize, stats: OpStats) {
        let mut ops = self.operators.lock();
        let e = ops.entry((name, node, worker)).or_default();
        e.rows += stats.rows;
        e.batches += stats.batches;
        e.ns += stats.ns;
        e.cost_units += stats.cost_units;
        e.wait.merge(&stats.wait);
    }

    /// Per-operator counters accumulated since the last reset, in stable
    /// (operator name, plan-node id, worker id) order.
    pub fn operator_stats(&self) -> Vec<(OpKey, OpStats)> {
        self.operators
            .lock()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect()
    }

    /// Record one completed crash recovery and how many WAL records it
    /// replayed.
    pub fn record_recovery(&self, records_replayed: u64) {
        self.registry.inc_counter(RECOVERIES_TOTAL, 1);
        self.registry
            .inc_counter(WAL_REPLAYED_TOTAL, records_replayed);
    }

    /// Snapshot combining engine counters with storage counters supplied by
    /// the caller (buffer hit rate, disk I/O).
    pub fn snapshot(&self, buffer_hit_rate: f64, disk_reads: u64, disk_writes: u64) -> KpiSnapshot {
        let cost = self
            .registry
            .histogram(QUERY_COST_UNITS)
            .unwrap_or_default();
        let waits = wait::global_totals();
        let avg = if cost.count > 0 {
            cost.sum / cost.count as f64
        } else {
            0.0
        };
        KpiSnapshot {
            queries_executed: self.registry.counter(QUERIES_TOTAL),
            rows_emitted: self.registry.counter(ROWS_EMITTED_TOTAL),
            total_cost_units: cost.sum,
            avg_cost_per_query: avg,
            p50_cost_per_query: cost.p50,
            p95_cost_per_query: cost.p95,
            p99_cost_per_query: cost.p99,
            buffer_hit_rate,
            disk_reads,
            disk_writes,
            errors: self.registry.counter(ERRORS_TOTAL),
            txns_committed: self.registry.counter(TXN_COMMITS_TOTAL),
            txns_aborted: self.registry.counter(TXN_ABORTS_TOTAL),
            recoveries: self.registry.counter(RECOVERIES_TOTAL),
            wal_records_replayed: self.registry.counter(WAL_REPLAYED_TOTAL),
            wait_lock_ns: waits.get(WaitClass::LockAcquire).0,
            wait_wal_ns: waits.get(WaitClass::WalFsync).0
                + waits.get(WaitClass::GroupCommitFollower).0,
            wait_io_ns: waits.get(WaitClass::BufferMiss).0,
            wait_conflicts: waits.get(WaitClass::WriteConflictRetry).1,
        }
    }

    pub fn reset(&self) {
        self.registry.reset();
        self.operators.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let m = Metrics::new();
        m.record_query(10, 5.0);
        m.record_query(20, 15.0);
        m.record_error();
        m.record_commit();
        let s = m.snapshot(0.9, 100, 50);
        assert_eq!(s.queries_executed, 2);
        assert_eq!(s.rows_emitted, 30);
        assert_eq!(s.avg_cost_per_query, 10.0);
        assert_eq!(s.errors, 1);
        assert_eq!(s.txns_committed, 1);
        assert_eq!(s.buffer_hit_rate, 0.9);
    }

    #[test]
    fn p95_tracks_tail() {
        let m = Metrics::new();
        for _ in 0..95 {
            m.record_query(1, 1.0);
        }
        for _ in 0..5 {
            m.record_query(1, 100.0);
        }
        let s = m.snapshot(0.0, 0, 0);
        assert!(s.p95_cost_per_query >= 1.0);
        assert!(s.p95_cost_per_query <= 100.0);
        assert!(s.p95_cost_per_query > s.avg_cost_per_query / 2.0);
        // quantiles are ordered
        assert!(s.p50_cost_per_query <= s.p95_cost_per_query);
        assert!(s.p95_cost_per_query <= s.p99_cost_per_query);
    }

    #[test]
    fn feature_vector_aligned_with_names() {
        let s = KpiSnapshot::default();
        assert_eq!(s.feature_vector().len(), KpiSnapshot::feature_names().len());
    }

    #[test]
    fn reset_clears() {
        let m = Metrics::new();
        m.record_query(1, 1.0);
        m.reset();
        assert_eq!(m.snapshot(0.0, 0, 0).queries_executed, 0);
    }

    #[test]
    fn operator_stats_key_on_operator_and_node() {
        let m = Metrics::new();
        // two filters in one plan (nodes 1 and 3) no longer merge
        m.record_operator(
            "filter",
            1,
            0,
            OpStats {
                rows: 10,
                batches: 2,
                ns: 100,
                cost_units: 1.0,
                wait: Default::default(),
            },
        );
        m.record_operator(
            "filter",
            3,
            0,
            OpStats {
                rows: 5,
                batches: 1,
                ns: 50,
                cost_units: 0.5,
                wait: Default::default(),
            },
        );
        // same (operator, node, worker) accumulates across queries
        m.record_operator(
            "filter",
            1,
            0,
            OpStats {
                rows: 2,
                batches: 1,
                ns: 10,
                cost_units: 0.2,
                wait: Default::default(),
            },
        );
        let stats = m.operator_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, ("filter", 1, 0));
        assert_eq!(stats[0].1.rows, 12);
        assert_eq!(stats[0].1.batches, 3);
        assert_eq!(stats[0].1.ns, 110);
        assert_eq!(stats[1].0, ("filter", 3, 0));
        assert_eq!(stats[1].1.rows, 5);
        m.reset();
        assert!(m.operator_stats().is_empty());
    }

    #[test]
    fn operator_stats_keep_workers_separate() {
        // regression: two morsel workers reporting the same plan node
        // used to silently merge into one counter — the worker dimension
        // must keep them apart while stable ordering groups them by node
        let m = Metrics::new();
        m.record_operator(
            "seq_scan",
            2,
            1,
            OpStats {
                rows: 30,
                batches: 3,
                ns: 300,
                cost_units: 3.0,
                wait: Default::default(),
            },
        );
        m.record_operator(
            "seq_scan",
            2,
            2,
            OpStats {
                rows: 12,
                batches: 2,
                ns: 120,
                cost_units: 1.2,
                wait: Default::default(),
            },
        );
        let stats = m.operator_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, ("seq_scan", 2, 1));
        assert_eq!(stats[0].1.rows, 30);
        assert_eq!(stats[1].0, ("seq_scan", 2, 2));
        assert_eq!(stats[1].1.rows, 12);
        // per-worker counters still roll up to the node total
        let total: u64 = stats
            .iter()
            .filter(|((_, node, _), _)| *node == 2)
            .map(|(_, s)| s.rows)
            .sum();
        assert_eq!(total, 42);
    }

    #[test]
    fn registry_exposes_counters_and_quantiles() {
        let m = Metrics::new();
        m.record_query(3, 10.0);
        assert_eq!(m.registry().counter(QUERIES_TOTAL), 1);
        assert!(m.registry().quantile(QUERY_COST_UNITS, 0.5) >= 10.0);
        let page = m.registry().render();
        assert!(page.contains("aimdb_query_cost_units{quantile=\"0.95\"}"));
    }
}
