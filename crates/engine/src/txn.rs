//! Session transaction bookkeeping and WAL logging helpers.
//!
//! A [`TxnManager`] tracks one *session* transaction (the interactive
//! BEGIN/COMMIT model) and allocates transaction ids — both for the
//! session slot and for concurrent transaction handles
//! ([`crate::db::Database::begin_txn`]), which run many writers at once
//! under MVCC snapshot isolation. Commit and rollback mechanics live in
//! the database's MVCC path ([`crate::mvcc`]): rollback reverses the
//! in-memory write-set, commit group-commits the WAL record and stamps
//! version timestamps.
//!
//! Every append goes through the durable WAL and is fallible: an injected
//! storage fault on a log write surfaces as `Err` from the statement, not
//! a panic.

use aimdb_common::{AimError, Result, Row};
use aimdb_storage::wal::{LogRecord, TxnId, Wal};
use aimdb_storage::RowId;

/// State of the current session transaction plus the id allocator.
#[derive(Debug, Default)]
pub struct TxnManager {
    next_id: TxnId,
    /// Some(id) while an explicit transaction is open.
    active: Option<TxnId>,
}

impl TxnManager {
    pub fn new() -> Self {
        TxnManager {
            next_id: 1,
            active: None,
        }
    }

    pub fn in_txn(&self) -> bool {
        self.active.is_some()
    }

    /// The open session transaction, if any.
    pub fn current(&self) -> Option<TxnId> {
        self.active
    }

    /// First id that will be handed out next. Recovery bumps this past
    /// every id seen in the durable log.
    pub fn next_id(&self) -> TxnId {
        self.next_id
    }

    pub fn set_next_id(&mut self, id: TxnId) {
        self.next_id = self.next_id.max(id).max(1);
    }

    /// Open the session transaction. A second `BEGIN` while one is open
    /// is a first-class [`AimError::NestedTxn`] — the session model has
    /// no nesting, and callers can match on the variant instead of
    /// parsing message text.
    pub fn begin(&mut self, wal: &Wal) -> Result<TxnId> {
        if let Some(open) = self.active {
            return Err(AimError::NestedTxn(format!(
                "BEGIN while transaction {open} is already open"
            )));
        }
        let id = self.fresh_id(wal)?;
        self.active = Some(id);
        Ok(id)
    }

    /// Allocate a fresh transaction id and log its `Begin`, without
    /// binding it to the session slot — the allocation path for
    /// concurrent transaction handles.
    pub fn fresh_id(&mut self, wal: &Wal) -> Result<TxnId> {
        let id = self.next_id;
        self.next_id += 1;
        wal.append(LogRecord::Begin { txn: id })?;
        Ok(id)
    }

    /// The id to log DML under: the open transaction, or a fresh
    /// auto-commit id.
    pub fn current_or_auto(&mut self, wal: &Wal) -> Result<(TxnId, bool)> {
        match self.active {
            Some(id) => Ok((id, false)),
            None => Ok((self.fresh_id(wal)?, true)),
        }
    }

    /// Close the session slot for COMMIT/ROLLBACK, returning the id the
    /// caller must finish through the MVCC commit or rollback path.
    pub fn take_active(&mut self) -> Result<TxnId> {
        self.active
            .take()
            .ok_or_else(|| AimError::TxnAborted("no open transaction".into()))
    }
}

/// Log helpers used by the DML executor. All carry full row images so the
/// durable log supports redo (after-image) and recovery audits
/// (before-image).
pub fn log_insert(wal: &Wal, txn: TxnId, table: &str, rid: RowId, row: Row) -> Result<()> {
    wal.append(LogRecord::Insert {
        txn,
        table: table.to_string(),
        rid,
        row,
    })?;
    Ok(())
}

pub fn log_delete(wal: &Wal, txn: TxnId, table: &str, rid: RowId, before: Row) -> Result<()> {
    wal.append(LogRecord::Delete {
        txn,
        table: table.to_string(),
        rid,
        before,
    })?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
pub fn log_update(
    wal: &Wal,
    txn: TxnId,
    table: &str,
    old_rid: RowId,
    new_rid: RowId,
    before: Row,
    after: Row,
) -> Result<()> {
    wal.append(LogRecord::Update {
        txn,
        table: table.to_string(),
        old_rid,
        new_rid,
        before,
        after,
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_lifecycle_and_nested_begin_is_first_class() {
        let wal = Wal::new();
        let mut tm = TxnManager::new();
        assert!(!tm.in_txn());
        let id = tm.begin(&wal).unwrap();
        assert!(tm.in_txn());
        assert_eq!(tm.current(), Some(id));
        // nesting surfaces as NestedTxn, not a generic abort
        match tm.begin(&wal) {
            Err(AimError::NestedTxn(msg)) => {
                assert!(
                    msg.contains(&id.to_string()),
                    "message names the open txn: {msg}"
                );
            }
            other => panic!("expected NestedTxn, got {other:?}"),
        }
        // the failed BEGIN did not disturb the open transaction
        assert_eq!(tm.current(), Some(id));
        let cid = tm.take_active().unwrap();
        assert_eq!(id, cid);
        assert!(!tm.in_txn());
        assert!(tm.take_active().is_err());
    }

    #[test]
    fn auto_commit_ids_are_fresh() {
        let wal = Wal::new();
        let mut tm = TxnManager::new();
        let (a, auto_a) = tm.current_or_auto(&wal).unwrap();
        let (b, auto_b) = tm.current_or_auto(&wal).unwrap();
        assert!(auto_a && auto_b);
        assert_ne!(a, b);
        // inside an explicit txn, reuse the open id
        let id = tm.begin(&wal).unwrap();
        let (c, auto_c) = tm.current_or_auto(&wal).unwrap();
        assert_eq!(c, id);
        assert!(!auto_c);
    }

    #[test]
    fn fresh_ids_do_not_touch_session_slot() {
        let wal = Wal::new();
        let mut tm = TxnManager::new();
        let h1 = tm.fresh_id(&wal).unwrap();
        let h2 = tm.fresh_id(&wal).unwrap();
        assert_ne!(h1, h2);
        assert!(!tm.in_txn());
        // a session txn can open while handles exist
        let s = tm.begin(&wal).unwrap();
        assert!(s > h2);
    }

    #[test]
    fn next_id_restore_is_monotone() {
        let mut tm = TxnManager::new();
        tm.set_next_id(40);
        assert_eq!(tm.next_id(), 40);
        tm.set_next_id(10); // never moves backward
        assert_eq!(tm.next_id(), 40);
        // ids handed out after a restore start at the floor
        let wal = Wal::new();
        let id = tm.fresh_id(&wal).unwrap();
        assert_eq!(id, 40);
        assert_eq!(tm.next_id(), 41);
    }
}
