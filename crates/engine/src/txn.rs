//! Transactions: WAL-logged DML with rollback by undo.
//!
//! One explicit transaction at a time per [`crate::db::Database`] (the
//! interactive model of a single session); statements outside BEGIN/COMMIT
//! are auto-committed. Learned transaction *scheduling* — the tutorial's
//! §2.1 design topic — operates above this layer in `aimdb-ai4db`, where
//! many client transactions are simulated and ordered before execution.
//!
//! Every append goes through the durable WAL and is fallible: an injected
//! storage fault on a log write surfaces as `Err` from the statement, not
//! a panic.

use aimdb_common::{AimError, Result, Row};
use aimdb_storage::wal::{LogRecord, TxnId, Wal};
use aimdb_storage::RowId;

use crate::catalog::Catalog;

/// State of the current session transaction.
#[derive(Debug, Default)]
pub struct TxnManager {
    next_id: TxnId,
    /// Some(id) while an explicit transaction is open.
    active: Option<TxnId>,
}

impl TxnManager {
    pub fn new() -> Self {
        TxnManager {
            next_id: 1,
            active: None,
        }
    }

    pub fn in_txn(&self) -> bool {
        self.active.is_some()
    }

    /// First id that will be handed out next. Recovery bumps this past
    /// every id seen in the durable log.
    pub fn next_id(&self) -> TxnId {
        self.next_id
    }

    pub fn set_next_id(&mut self, id: TxnId) {
        self.next_id = self.next_id.max(id).max(1);
    }

    pub fn begin(&mut self, wal: &Wal) -> Result<TxnId> {
        if self.active.is_some() {
            return Err(AimError::TxnAborted("transaction already open".into()));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.active = Some(id);
        wal.append(LogRecord::Begin { txn: id })?;
        Ok(id)
    }

    /// The id to log DML under: the open transaction, or a fresh
    /// auto-commit id.
    pub fn current_or_auto(&mut self, wal: &Wal) -> Result<(TxnId, bool)> {
        match self.active {
            Some(id) => Ok((id, false)),
            None => {
                let id = self.next_id;
                self.next_id += 1;
                wal.append(LogRecord::Begin { txn: id })?;
                Ok((id, true))
            }
        }
    }

    pub fn commit(&mut self, wal: &Wal) -> Result<TxnId> {
        let id = self
            .active
            .take()
            .ok_or_else(|| AimError::TxnAborted("no open transaction".into()))?;
        wal.append(LogRecord::Commit { txn: id })?;
        Ok(id)
    }

    pub fn commit_auto(&self, wal: &Wal, id: TxnId) -> Result<()> {
        wal.append(LogRecord::Commit { txn: id })?;
        Ok(())
    }

    /// Roll back the open transaction by undoing its WAL records.
    pub fn rollback(&mut self, wal: &Wal, catalog: &Catalog) -> Result<TxnId> {
        let id = self
            .active
            .take()
            .ok_or_else(|| AimError::TxnAborted("no open transaction".into()))?;
        undo(wal, catalog, id)?;
        wal.append(LogRecord::Abort { txn: id })?;
        Ok(id)
    }

    /// Abort-without-undo: used when a statement inside a transaction
    /// failed partway and the undo chain has already been applied, or at
    /// recovery for loser transactions (their effects never replayed).
    pub fn abort_current(&mut self, wal: &Wal) -> Result<Option<TxnId>> {
        match self.active.take() {
            Some(id) => {
                wal.append(LogRecord::Abort { txn: id })?;
                Ok(Some(id))
            }
            None => Ok(None),
        }
    }
}

/// Undo every data record of `txn`, newest first.
pub(crate) fn undo(wal: &Wal, catalog: &Catalog, txn: TxnId) -> Result<()> {
    for rec in wal.undo_chain(txn) {
        match rec {
            LogRecord::Insert { table, rid, .. } => {
                let t = catalog.table(&table)?;
                t.delete(rid)?;
            }
            LogRecord::Delete { table, before, .. } => {
                let t = catalog.table(&table)?;
                t.reinsert(before)?;
            }
            LogRecord::Update {
                table,
                new_rid,
                before,
                ..
            } => {
                let t = catalog.table(&table)?;
                t.delete(new_rid)?;
                t.reinsert(before)?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Log helpers used by the DML executor. All carry full row images so the
/// durable log supports both undo (before-image) and redo (after-image).
pub fn log_insert(wal: &Wal, txn: TxnId, table: &str, rid: RowId, row: Row) -> Result<()> {
    wal.append(LogRecord::Insert {
        txn,
        table: table.to_string(),
        rid,
        row,
    })?;
    Ok(())
}

pub fn log_delete(wal: &Wal, txn: TxnId, table: &str, rid: RowId, before: Row) -> Result<()> {
    wal.append(LogRecord::Delete {
        txn,
        table: table.to_string(),
        rid,
        before,
    })?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
pub fn log_update(
    wal: &Wal,
    txn: TxnId,
    table: &str,
    old_rid: RowId,
    new_rid: RowId,
    before: Row,
    after: Row,
) -> Result<()> {
    wal.append(LogRecord::Update {
        txn,
        table: table.to_string(),
        old_rid,
        new_rid,
        before,
        after,
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_commit_lifecycle() {
        let wal = Wal::new();
        let mut tm = TxnManager::new();
        assert!(!tm.in_txn());
        let id = tm.begin(&wal).unwrap();
        assert!(tm.in_txn());
        assert!(tm.begin(&wal).is_err()); // no nesting
        let cid = tm.commit(&wal).unwrap();
        assert_eq!(id, cid);
        assert!(!tm.in_txn());
        assert!(tm.commit(&wal).is_err());
        assert!(wal.is_finished(id));
    }

    #[test]
    fn auto_commit_ids_are_fresh() {
        let wal = Wal::new();
        let mut tm = TxnManager::new();
        let (a, auto_a) = tm.current_or_auto(&wal).unwrap();
        tm.commit_auto(&wal, a).unwrap();
        let (b, auto_b) = tm.current_or_auto(&wal).unwrap();
        assert!(auto_a && auto_b);
        assert_ne!(a, b);
        // inside an explicit txn, reuse the open id
        let id = tm.begin(&wal).unwrap();
        let (c, auto_c) = tm.current_or_auto(&wal).unwrap();
        assert_eq!(c, id);
        assert!(!auto_c);
    }

    #[test]
    fn next_id_restore_is_monotone() {
        let mut tm = TxnManager::new();
        tm.set_next_id(40);
        assert_eq!(tm.next_id(), 40);
        tm.set_next_id(10); // never moves backward
        assert_eq!(tm.next_id(), 40);
    }
}
