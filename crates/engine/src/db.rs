//! The `Database` facade: parse → plan → execute, plus DDL, DML,
//! transactions, durability (WAL + checkpoints + crash recovery), knobs,
//! statistics and the AISQL model hook.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use aimdb_common::{
    wait, AimError, Clock, Column, LockRank, Result, Row, Schema, Value, WaitSet, WallClock,
};
use aimdb_sql::ast::{ModelKind, Select, Statement};
use aimdb_sql::expr::{BuiltinFns, ScalarFns};
use aimdb_sql::parser::{parse, parse_one};
use aimdb_sql::Expr;
use aimdb_storage::wal::{CheckpointData, IndexSnapshot, LogRecord, TableSnapshot};
use aimdb_storage::{scan_wal, BufferPool, Disk, DiskSink, PageStore, RowId, Wal};
use aimdb_trace::{
    validate_exposition, FlightKind, FlightRecorder, QueryTrace, TraceBuilder, Tracer,
};

use crate::analyze::AnalyzeReport;
use crate::catalog::{Catalog, Table};
use crate::exec::{execute, ExecContext, OpKey, OpStats, WorkerSpan};
use crate::exec_batch::execute_batched_parallel;
use crate::fingerprint::{self, StatementStat, StatementStore};
use crate::knobs::Knobs;
use crate::metrics::{KpiSnapshot, Metrics, GROUP_COMMIT_BATCH};
use crate::mvcc::{CommitTs, Snapshot, TxnRuntime, WriteOp};
use crate::optimizer::{CardEstimator, HistogramEstimator, Planner};
use crate::plan::{bind_expr, PhysicalPlan};
use crate::stats::TableStats;
use crate::txn::{log_delete, log_insert, log_update, TxnManager};

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// SELECT / PREDICT output.
    Rows { schema: Schema, rows: Vec<Row> },
    /// DML row count.
    Affected(usize),
    /// DDL / admin acknowledgement, EXPLAIN text.
    Text(String),
}

impl QueryResult {
    /// The rows, if this result carries any.
    pub fn rows(&self) -> &[Row] {
        match self {
            QueryResult::Rows { rows, .. } => rows,
            _ => &[],
        }
    }

    /// First value of the first row (for scalar queries).
    pub fn scalar(&self) -> Result<&Value> {
        self.rows()
            .first()
            .map(|r| r.get(0))
            .ok_or_else(|| AimError::Execution("result has no rows".into()))
    }
}

/// Pluggable model training/inference for the AISQL surface
/// (`CREATE MODEL`, `PREDICT`, `PREDICT(...)` in expressions).
/// Implemented by `aimdb-db4ai`; the engine stays ML-free.
pub trait ModelHook: Send + Sync {
    /// Train and register a model from a table's columns.
    #[allow(clippy::too_many_arguments)]
    fn create_model(
        &self,
        db: &Database,
        name: &str,
        kind: ModelKind,
        table: &str,
        features: &[String],
        label: Option<&str>,
        params: &[(String, Value)],
    ) -> Result<String>;

    fn drop_model(&self, name: &str) -> Result<()>;

    /// Single-row inference.
    fn predict(&self, name: &str, inputs: &[Value]) -> Result<Value>;
}

/// Scalar-function registry handed to the executor: built-ins plus
/// `PREDICT(model, args...)` dispatched to the model hook.
struct EngineFns {
    hook: Option<Arc<dyn ModelHook>>,
}

impl ScalarFns for EngineFns {
    fn call(&self, name: &str, args: &[Value]) -> Result<Value> {
        if name.eq_ignore_ascii_case("PREDICT") {
            let hook = self
                .hook
                .as_ref()
                .ok_or_else(|| AimError::Model("no model runtime registered".into()))?;
            let model = args
                .first()
                .ok_or_else(|| AimError::Model("PREDICT needs a model name".into()))?
                .as_str()?;
            return hook.predict(model, &args[1..]);
        }
        BuiltinFns.call(name, args)
    }
}

/// Truncate raw SQL to a short trace label (whole chars, max 120).
fn trim_label(sql: &str) -> String {
    let trimmed = sql.trim();
    match trimmed.char_indices().nth(120) {
        Some((i, _)) => format!("{}…", &trimmed[..i]),
        None => trimmed.to_string(),
    }
}

/// Statement-kind label for traces entering through `execute_stmt`.
fn stmt_label(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::CreateTable { .. } => "CREATE TABLE",
        Statement::DropTable { .. } => "DROP TABLE",
        Statement::CreateIndex { .. } => "CREATE INDEX",
        Statement::DropIndex { .. } => "DROP INDEX",
        Statement::Insert { .. } => "INSERT",
        Statement::Select(_) => "SELECT",
        Statement::Update { .. } => "UPDATE",
        Statement::Delete { .. } => "DELETE",
        Statement::Begin => "BEGIN",
        Statement::Commit => "COMMIT",
        Statement::Rollback => "ROLLBACK",
        Statement::Explain(_) => "EXPLAIN",
        Statement::ExplainAnalyze(_) => "EXPLAIN ANALYZE",
        Statement::Analyze { .. } => "ANALYZE",
        Statement::Set { .. } => "SET",
        Statement::CreateModel { .. } => "CREATE MODEL",
        Statement::DropModel { .. } => "DROP MODEL",
        Statement::Predict { .. } => "PREDICT",
    }
}

/// Label for plans executed directly (no SQL text available).
fn plan_label(plan: &PhysicalPlan) -> String {
    format!("plan: {}", plan.describe())
}

/// An in-process database instance.
///
/// ```
/// use aimdb_engine::{Database, QueryResult};
///
/// let db = Database::new();
/// db.execute("CREATE TABLE t (a INT, b TEXT)").unwrap();
/// db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
/// let r = db.execute("SELECT COUNT(*) FROM t WHERE a > 1").unwrap();
/// assert_eq!(r.scalar().unwrap().as_i64().unwrap(), 1);
/// ```
pub struct Database {
    store: Arc<dyn PageStore>,
    pool: Arc<BufferPool>,
    pub catalog: Catalog,
    pub wal: Wal,
    pub knobs: Knobs,
    pub metrics: Metrics,
    /// Completed-query trace ring + slow-query log.
    pub tracer: Tracer,
    /// Clock used to time spans and operators (swappable for tests).
    clock: RwLock<Arc<dyn Clock>>,
    stats: RwLock<HashMap<String, TableStats>>,
    txn: Mutex<TxnManager>,
    /// Shared MVCC state: commit-timestamp counter, commit/checkpoint
    /// lock, active-transaction snapshots and write-sets.
    runtime: TxnRuntime,
    estimator: RwLock<Arc<dyn CardEstimator>>,
    hook: RwLock<Option<Arc<dyn ModelHook>>>,
    /// Crash-dump flight recorder: a bounded ring of recent structured
    /// events (statement begin/end, commit, conflict, recovery). Shared
    /// (`Arc`) so a `FaultInjector` crash hook can dump it post-mortem.
    flight: Arc<FlightRecorder>,
    /// Per-fingerprint statement statistics (bounded, least-called
    /// eviction).
    stmt_stats: StatementStore,
    /// Lock-order witness violations already reported to the flight
    /// recorder (the witness counter is monotone).
    witness_seen: AtomicU64,
}

thread_local! {
    /// Cost units charged by plan executions inside the current
    /// statement on this thread, drained into the statement's
    /// fingerprint entry at statement end.
    static STMT_COST: Cell<f64> = const { Cell::new(0.0) };
}

/// Carrier for the measurements opened by [`Database::begin_statement`]
/// and folded into the fingerprint store by [`Database::end_statement`].
struct StmtObservation {
    fp: u64,
    start_secs: f64,
    w0: WaitSet,
}

/// A concurrent transaction handle from [`Database::begin_txn`]: many
/// handles run at once under snapshot isolation, independent of the
/// session-level `BEGIN`/`COMMIT` statements. Reads through the handle
/// see the database as of `read_ts` plus the handle's own writes;
/// conflicting writes surface as retryable
/// [`AimError::WriteConflict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnHandle {
    /// Transaction id (also the id under which WAL records are logged).
    pub id: u64,
    /// The frozen read timestamp of this transaction's snapshot.
    pub read_ts: CommitTs,
}

impl TxnHandle {
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            txn: self.id,
            read_ts: self.read_ts,
        }
    }
}

/// RAII token for a plain-statement reader: while alive, the checkpoint
/// vacuum horizon stays at or below `ts`, so no row version this
/// reader's frozen snapshot may still need is removed.
struct ReadGuard<'a> {
    runtime: &'a TxnRuntime,
    ts: CommitTs,
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.runtime.reader_exit(self.ts);
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

/// What [`Database::recover`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact records scanned from the durable log.
    pub total_records: usize,
    /// Records applied (DDL + committed DML after the checkpoint).
    pub replayed: u64,
    /// Whether a checkpoint bounded the replay.
    pub from_checkpoint: bool,
    /// Committed transactions whose effects were redone.
    pub committed_txns: usize,
    /// Transactions that had begun but never committed (discarded).
    pub loser_txns: usize,
    /// Bytes dropped off a torn/corrupt log tail.
    pub corrupt_tail_bytes: usize,
}

impl Database {
    /// A fresh database over its own private disk, WAL-durable to that
    /// disk's log area.
    pub fn new() -> Self {
        Database::with_store(Arc::new(Disk::new()))
    }

    /// Open over an existing page store (possibly wrapped in a
    /// [`aimdb_storage::FaultInjector`]). The WAL writes through to the
    /// store's durable log area; this does NOT replay any existing log —
    /// use [`Database::recover`] for that.
    pub fn with_store(store: Arc<dyn PageStore>) -> Self {
        let knobs = Knobs::new();
        let cap = knobs.get("buffer_pool_pages").unwrap_or(64) as usize;
        let pool = Arc::new(BufferPool::new(Arc::clone(&store), cap));
        let wal = Wal::with_sink(Box::new(DiskSink::new(Arc::clone(&store))));
        let sync = knobs.get("wal_sync").map(|v| v != 0).unwrap_or(true);
        wal.set_sync_on_commit(sync);
        if let Ok(window) = knobs.get("group_commit_window") {
            wal.set_group_window_us(window as u64);
        }
        let metrics = Metrics::new();
        // Each WAL flush reports how many commits it made durable, so the
        // batch-size histogram shows whether group commit is batching.
        let reg = metrics.registry_handle();
        wal.set_flush_observer(Box::new(move |batch| {
            reg.observe(GROUP_COMMIT_BATCH, batch as f64);
        }));
        let tracer = Tracer::default();
        if let Ok(threshold) = knobs.get("slow_query_cost_threshold") {
            tracer.set_slow_threshold(threshold as f64);
        }
        Database {
            store,
            pool,
            catalog: Catalog::new(),
            wal,
            knobs,
            metrics,
            tracer,
            clock: RwLock::with_rank(Arc::new(WallClock::new()), LockRank::EngineClock),
            stats: RwLock::with_rank(HashMap::new(), LockRank::EngineStats),
            txn: Mutex::with_rank(TxnManager::new(), LockRank::TxnManager),
            runtime: TxnRuntime::new(),
            estimator: RwLock::with_rank(Arc::new(HistogramEstimator), LockRank::EngineEstimator),
            hook: RwLock::with_rank(None, LockRank::EngineHook),
            flight: Arc::new(FlightRecorder::default()),
            stmt_stats: StatementStore::default(),
            witness_seen: AtomicU64::new(0),
        }
    }

    /// ARIES-lite crash recovery: open a database over `store`, restoring
    /// state from its durable WAL.
    ///
    /// The durable log is scanned with CRC validation (a torn or corrupt
    /// tail is detected and dropped), state is restored from the last
    /// intact checkpoint, then committed transactions after it are redone
    /// in log order while uncommitted ones are discarded. Finally the log
    /// is compacted to a single fresh checkpoint of the recovered state.
    pub fn recover(store: Arc<dyn PageStore>) -> Result<(Database, RecoveryReport)> {
        let bytes = store.wal_bytes()?;
        let scan = scan_wal(&bytes);
        let db = Database::with_store(Arc::clone(&store));

        // Partition at the last intact checkpoint.
        let mut base: Option<&CheckpointData> = None;
        let mut tail_start = 0usize;
        for (i, (_, rec)) in scan.records.iter().enumerate() {
            if let LogRecord::Checkpoint(data) = rec {
                base = Some(data);
                tail_start = i + 1;
            }
        }
        let tail = &scan.records[tail_start..];

        // Winners: transactions with a durable Commit after the checkpoint.
        let mut committed: HashSet<u64> = HashSet::new();
        let mut begun: HashSet<u64> = HashSet::new();
        for (_, rec) in tail {
            match rec {
                LogRecord::Begin { txn } => {
                    begun.insert(*txn);
                }
                LogRecord::Commit { txn } => {
                    committed.insert(*txn);
                }
                LogRecord::Abort { txn } => {
                    begun.remove(txn);
                    // An Abort after a Commit for the same txn is the
                    // commit-durability failure path annulling the commit
                    // (see commit_mvcc): the live engine rolled the txn
                    // back and told the client it failed, so replaying it
                    // as committed would diverge from the pre-crash state.
                    // The later record wins.
                    committed.remove(txn);
                }
                _ => {}
            }
        }
        let losers = begun.iter().filter(|t| !committed.contains(t)).count();

        // Restore the checkpoint snapshot.
        if let Some(cp) = base {
            for t in &cp.tables {
                let table =
                    db.catalog
                        .create_table(&t.name, t.schema.clone(), Arc::clone(&db.pool))?;
                for row in &t.rows {
                    table.insert(row.values().to_vec())?;
                }
            }
            for idx in &cp.indexes {
                db.catalog
                    .create_index(&idx.name, &idx.table, &idx.column)?;
            }
        }

        // Redo: DDL unconditionally, DML for winners only, in log order.
        // Row ids were reassigned by the rebuild, so deletes/updates locate
        // their victim by before-image value.
        let mut replayed = 0u64;
        for (_, rec) in tail {
            match rec {
                LogRecord::CreateTable { name, schema } => {
                    match db
                        .catalog
                        .create_table(name, schema.clone(), Arc::clone(&db.pool))
                    {
                        Ok(_) => replayed += 1,
                        Err(AimError::AlreadyExists(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
                LogRecord::DropTable { name } => match db.catalog.drop_table(name) {
                    Ok(()) => replayed += 1,
                    Err(AimError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                },
                LogRecord::CreateIndex {
                    name,
                    table,
                    column,
                } => match db.catalog.create_index(name, table, column) {
                    Ok(()) => replayed += 1,
                    Err(AimError::AlreadyExists(_) | AimError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                },
                LogRecord::DropIndex { name } => match db.catalog.drop_index(name) {
                    Ok(()) => replayed += 1,
                    Err(AimError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                },
                LogRecord::Insert {
                    txn, table, row, ..
                } if committed.contains(txn) => match db.catalog.table(table) {
                    Ok(t) => {
                        t.insert(row.values().to_vec())?;
                        replayed += 1;
                    }
                    Err(AimError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                },
                LogRecord::Delete {
                    txn, table, before, ..
                } if committed.contains(txn) => match db.catalog.table(table) {
                    Ok(t) => {
                        if let Some(rid) = find_row(&t, before)? {
                            t.delete(rid)?;
                        }
                        replayed += 1;
                    }
                    Err(AimError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                },
                LogRecord::Update {
                    txn,
                    table,
                    before,
                    after,
                    ..
                } if committed.contains(txn) => match db.catalog.table(table) {
                    Ok(t) => {
                        if let Some(rid) = find_row(&t, before)? {
                            t.update(rid, after.values().to_vec())?;
                        }
                        replayed += 1;
                    }
                    Err(AimError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                },
                _ => {}
            }
        }

        // Never reuse a transaction id seen in the log.
        let max_seen = scan.records.iter().map(|(_, r)| r.txn()).max().unwrap_or(0);
        let floor = base.map_or(1, |cp| cp.next_txn).max(max_seen + 1);
        db.txn.lock().set_next_id(floor);

        // Compact: the old log (including any corrupt tail) is replaced by
        // one checkpoint of the recovered state.
        store.wal_truncate(0)?;
        db.checkpoint_now()?;

        db.metrics.record_recovery(replayed);
        db.flight.record(
            FlightKind::Recovery,
            replayed,
            scan.records.len() as u64,
            scan.corrupt_tail_bytes as u64,
        );
        let report = RecoveryReport {
            total_records: scan.records.len(),
            replayed,
            from_checkpoint: base.is_some(),
            committed_txns: committed.len(),
            loser_txns: losers,
            corrupt_tail_bytes: scan.corrupt_tail_bytes,
        };
        Ok((db, report))
    }

    /// Write a checkpoint record now: full logical state, so recovery can
    /// start from it instead of replaying the whole log.
    ///
    /// Checkpoints are quiescent: the call holds the commit lock and
    /// fails with [`AimError::TxnAborted`] if any transaction is in
    /// flight, so no transaction ever spans a checkpoint. Dead row
    /// versions are vacuumed first — the snapshot is exactly the
    /// committed-visible state.
    pub fn checkpoint_now(&self) -> Result<u64> {
        let _quiesce = self.runtime.commit_lock.lock();
        if self.runtime.active_count() > 0 {
            return Err(AimError::TxnAborted(format!(
                "checkpoint requires quiescence: {} transaction(s) in flight",
                self.runtime.active_count()
            )));
        }
        // Plain-statement readers do not block the checkpoint: the
        // vacuum horizon below keeps every version their frozen
        // snapshots may still need. Readers entering mid-vacuum
        // registered under `commit_lock` (held here), so they read the
        // final pre-vacuum timestamp and need nothing the vacuum takes.
        let horizon = self.runtime.vacuum_horizon();
        for name in self.catalog.table_names() {
            self.catalog.table(&name)?.vacuum(horizon)?;
        }
        let data = self.snapshot_state()?;
        self.wal.append(LogRecord::Checkpoint(Box::new(data)))
    }

    /// Checkpoint if the interval knob says so and the database is
    /// quiescent (no session transaction, no concurrent handles).
    pub fn maybe_checkpoint(&self) -> Result<bool> {
        let interval = self.knobs.get("checkpoint_interval")? as u64;
        if self.txn.lock().in_txn()
            || self.runtime.active_count() > 0
            || self.wal.records_since_checkpoint() < interval
        {
            return Ok(false);
        }
        match self.checkpoint_now() {
            Ok(_) => Ok(true),
            // A transaction slipped in between the check and the lock:
            // skip this round, the next statement retries.
            Err(AimError::TxnAborted(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    fn snapshot_state(&self) -> Result<CheckpointData> {
        let next_txn = self.txn.lock().next_id();
        let mut tables = Vec::new();
        for name in self.catalog.table_names() {
            let t = self.catalog.table(&name)?;
            let rows = t.scan_visible(None)?.into_iter().map(|(_, r)| r).collect();
            tables.push(TableSnapshot {
                name: t.name.clone(),
                schema: t.schema.clone(),
                rows,
            });
        }
        let indexes = self
            .catalog
            .indexes()
            .into_iter()
            .map(|(name, table, column)| IndexSnapshot {
                name,
                table,
                column,
            })
            .collect();
        Ok(CheckpointData {
            next_txn,
            tables,
            indexes,
        })
    }

    /// Open a concurrent transaction handle: a frozen snapshot plus a
    /// transaction id, independent of the session `BEGIN`/`COMMIT`
    /// statements. Any number of handles may be live at once; writes
    /// conflict under first-updater-wins and surface as retryable
    /// [`AimError::WriteConflict`].
    pub fn begin_txn(&self) -> Result<TxnHandle> {
        let id = self.txn.lock().fresh_id(&self.wal)?;
        let snap = self.runtime.register(id);
        Ok(TxnHandle {
            id,
            read_ts: snap.read_ts,
        })
    }

    /// Execute one DML or SELECT statement inside the transaction of
    /// `h`. Reads see the handle's snapshot plus its own writes; DDL and
    /// transaction-control statements are rejected.
    pub fn execute_in(&self, h: &TxnHandle, sql: &str) -> Result<QueryResult> {
        let obs = self.begin_statement(fingerprint::fingerprint(sql));
        let stmt = match parse_one(sql) {
            Ok(stmt) => stmt,
            Err(e) => {
                let out = Err(e);
                self.end_statement(obs, &fingerprint::normalize(sql), &out, None);
                return out;
            }
        };
        let out = match &stmt {
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.exec_insert(table, columns.as_deref(), rows, Some(h)),
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => self.exec_update(table, assignments, where_clause.as_ref(), Some(h)),
            Statement::Delete {
                table,
                where_clause,
            } => self.exec_delete(table, where_clause.as_ref(), Some(h)),
            Statement::Select(sel) => {
                let plan = self.plan(sel)?;
                let (rows, _) = self.exec_plan_traced(&plan, None, Some(h.snapshot()))?;
                Ok(QueryResult::Rows {
                    schema: plan.schema.clone(),
                    rows,
                })
            }
            other => Err(AimError::Execution(format!(
                "transaction handles support DML and SELECT, got {}",
                stmt_label(other)
            ))),
        };
        if out.is_err() {
            self.metrics.record_error();
        }
        self.end_statement(obs, &fingerprint::normalize(sql), &out, None);
        out
    }

    /// Commit the transaction of `h`: its commit record becomes durable
    /// (group-committed with concurrent transactions' records), then all
    /// its versions become visible atomically.
    pub fn commit_txn(&self, h: &TxnHandle) -> Result<CommitTs> {
        let cts = self.commit_mvcc(h.id)?;
        let _ = self.maybe_checkpoint();
        Ok(cts)
    }

    /// Roll back the transaction of `h`, reversing its writes and
    /// releasing its claims. After a [`AimError::WriteConflict`] the
    /// caller rolls back and retries on a fresh handle.
    pub fn rollback_txn(&self, h: &TxnHandle) -> Result<()> {
        self.rollback_mvcc(h.id)?;
        self.metrics.record_abort();
        Ok(())
    }

    /// MVCC commit: WAL durability first, then visibility.
    ///
    /// The `Commit` record is appended (and group-committed) *before*
    /// any version is stamped, so a crash can never expose effects whose
    /// commit record did not reach the log. Stamping and publishing the
    /// commit timestamp happen under the commit lock, making the whole
    /// transaction visible atomically: a reader snapshot either sees all
    /// of the transaction or none of it.
    fn commit_mvcc(&self, txn: u64) -> Result<CommitTs> {
        let clock = self.clock();
        let start = clock.now_secs();
        if let Err(e) = self.wal.append(LogRecord::Commit { txn }) {
            // A commit that cannot be made durable aborts instead: the
            // write-set is reversed and recovery discards the txn.
            let _ = self.rollback_writes(txn);
            let _ = self.wal.append(LogRecord::Abort { txn });
            self.metrics.record_abort();
            return Err(e);
        }
        let cts;
        {
            let _g = self.runtime.commit_lock.lock();
            cts = self.runtime.last_commit_ts() + 1;
            if let Some(info) = self.runtime.take(txn) {
                for op in &info.writes {
                    match op {
                        // The table may have been dropped after the write;
                        // its versions died with it.
                        WriteOp::Created { table, rid } => {
                            if let Ok(t) = self.catalog.table(table) {
                                t.mvcc_stamp_begin(*rid, cts);
                            }
                        }
                        WriteOp::Ended { table, rid } => {
                            if let Ok(t) = self.catalog.table(table) {
                                t.mvcc_stamp_end(*rid, cts);
                            }
                        }
                    }
                }
            }
            self.runtime.publish_commit_ts(cts);
        }
        self.metrics.record_commit();
        self.metrics
            .record_commit_latency((clock.now_secs() - start).max(0.0));
        self.flight.record(FlightKind::Commit, txn, cts, 0);
        Ok(cts)
    }

    /// MVCC rollback: reverse the write-set newest-first (drop created
    /// versions, release claims), then log the abort.
    fn rollback_mvcc(&self, txn: u64) -> Result<()> {
        self.rollback_writes(txn)?;
        self.wal.append(LogRecord::Abort { txn })?;
        self.flight.record(FlightKind::Abort, txn, 0, 0);
        Ok(())
    }

    fn rollback_writes(&self, txn: u64) -> Result<()> {
        if let Some(info) = self.runtime.take(txn) {
            for op in info.writes.iter().rev() {
                match op {
                    WriteOp::Created { table, rid } => {
                        if let Ok(t) = self.catalog.table(table) {
                            t.mvcc_drop_created(*rid)?;
                        }
                    }
                    WriteOp::Ended { table, rid } => {
                        if let Ok(t) = self.catalog.table(table) {
                            t.mvcc_unclaim(*rid, txn);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The snapshot a statement outside any handle reads through: the
    /// open session transaction's frozen view, or latest-committed.
    fn session_snapshot(&self) -> Option<Snapshot> {
        self.txn
            .lock()
            .current()
            .and_then(|id| self.runtime.snapshot_of(id))
    }

    /// A statement-scoped read view for plain (auto-commit) SELECTs.
    ///
    /// Freezing `read_ts` at statement start makes concurrent commits
    /// atomic to the reader: versions are stamped before the commit
    /// timestamp is published, so a half-stamped transaction lies
    /// entirely in the reader's future. Txn id 0 is never allocated
    /// (`TxnManager` starts at 1), so this snapshot owns no
    /// uncommitted writes.
    fn read_snapshot(&self) -> (Snapshot, ReadGuard<'_>) {
        let ts = self.runtime.reader_enter();
        let guard = ReadGuard {
            runtime: &self.runtime,
            ts,
        };
        (
            Snapshot {
                txn: 0,
                read_ts: ts,
            },
            guard,
        )
    }

    /// Resolve the transaction identity for one DML statement: an
    /// explicit handle, the open session transaction, or a fresh
    /// auto-commit transaction.
    fn stmt_txn(&self, h: Option<&TxnHandle>) -> Result<(u64, bool, Snapshot)> {
        if let Some(h) = h {
            return Ok((h.id, false, h.snapshot()));
        }
        let (txn, auto) = self.txn.lock().current_or_auto(&self.wal)?;
        let snap = match self.runtime.snapshot_of(txn) {
            Some(s) => s,
            None => self.runtime.register(txn),
        };
        Ok((txn, auto, snap))
    }

    /// Install a learned cardinality estimator (E5/E7); pass
    /// `Arc::new(HistogramEstimator)` to restore the default.
    pub fn set_estimator(&self, est: Arc<dyn CardEstimator>) {
        *self.estimator.write() = est;
    }

    /// Install the DB4AI model runtime.
    pub fn set_model_hook(&self, hook: Arc<dyn ModelHook>) {
        *self.hook.write() = Some(hook);
    }

    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The page store backing this database (a plain [`Disk`] unless a
    /// fault injector or other wrapper was supplied).
    pub fn disk(&self) -> &Arc<dyn PageStore> {
        &self.store
    }

    /// Current optimizer statistics (empty until ANALYZE).
    pub fn stats_snapshot(&self) -> HashMap<String, TableStats> {
        self.stats.read().clone()
    }

    /// KPI snapshot for monitors/tuners.
    pub fn kpis(&self) -> KpiSnapshot {
        let b = self.pool.stats();
        let d = self.store.stats();
        self.metrics.snapshot(b.hit_rate(), d.reads, d.writes)
    }

    /// Physical WAL fsyncs performed so far. Group commit merges many
    /// transactions into one flush, so under concurrent commit load this
    /// stays below `kpis().txns_committed`.
    pub fn wal_flush_count(&self) -> u64 {
        self.wal.flush_count()
    }

    /// Concurrent transaction handles currently in flight (sessions
    /// between `begin_txn` and commit/rollback). The server's session
    /// tests use this to prove a dropped connection released its
    /// transaction.
    pub fn active_txn_count(&self) -> usize {
        self.runtime.active_count()
    }

    /// The MVCC vacuum horizon: every row version superseded at or
    /// before this commit timestamp is reclaimable. Bounded by the
    /// oldest registered reader or in-flight transaction snapshot, so it
    /// advances only once those release — the observable signal that a
    /// dead session's snapshot is truly gone.
    pub fn vacuum_horizon(&self) -> CommitTs {
        self.runtime.vacuum_horizon()
    }

    /// A quantile from one of the engine's registry histograms, e.g.
    /// `metric_quantile(metrics::GROUP_COMMIT_BATCH, 0.5)` for the median
    /// group-commit batch size.
    pub fn metric_quantile(&self, name: &str, q: f64) -> f64 {
        self.metrics.registry().quantile(name, q)
    }

    /// Execute one SQL statement. With `query_tracing` on (the default)
    /// the whole lifecycle — parse, optimize, verify, execute — runs
    /// under a trace recorded into [`Database::tracer`].
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let obs = self.begin_statement(fingerprint::fingerprint(sql));
        if !self.tracing_enabled() {
            let stmt = match parse_one(sql) {
                Ok(stmt) => stmt,
                Err(e) => {
                    let out = Err(e);
                    self.end_statement(obs, &fingerprint::normalize(sql), &out, None);
                    return out;
                }
            };
            let out = self.dispatch(&stmt, None);
            if out.is_err() {
                self.metrics.record_error();
            }
            self.end_statement(obs, &fingerprint::normalize(sql), &out, None);
            return out;
        }
        let clock = self.clock();
        let mut tb = TraceBuilder::new(clock.as_ref(), trim_label(sql));
        let pid = tb.open("parse");
        let parsed = parse_one(sql);
        tb.close(pid);
        let stmt = match parsed {
            Ok(stmt) => stmt,
            Err(e) => {
                let out = Err(e);
                self.end_statement(obs, &fingerprint::normalize(sql), &out, Some(&mut tb));
                self.tracer.record(tb.finish());
                return out;
            }
        };
        let out = self.dispatch(&stmt, Some(&mut tb));
        if out.is_err() {
            self.metrics.record_error();
        }
        self.end_statement(obs, &fingerprint::normalize(sql), &out, Some(&mut tb));
        if self.tracing_enabled() {
            self.tracer.record(tb.finish());
        }
        out
    }

    /// Execute a `;`-separated script, returning each statement's result.
    pub fn run_script(&self, sql: &str) -> Result<Vec<QueryResult>> {
        parse(sql)?.iter().map(|s| self.execute_stmt(s)).collect()
    }

    /// Execute a parsed statement (traced like [`Database::execute`],
    /// minus the parse span).
    pub fn execute_stmt(&self, stmt: &Statement) -> Result<QueryResult> {
        // No raw SQL here, so statements fingerprint by kind label — the
        // same bounded-store surface, one shape per statement kind.
        let label = stmt_label(stmt);
        let obs = self.begin_statement(fingerprint::fingerprint(label));
        if !self.tracing_enabled() {
            let out = self.dispatch(stmt, None);
            if out.is_err() {
                self.metrics.record_error();
            }
            self.end_statement(obs, &fingerprint::normalize(label), &out, None);
            return out;
        }
        let clock = self.clock();
        let mut tb = TraceBuilder::new(clock.as_ref(), label);
        let out = self.dispatch(stmt, Some(&mut tb));
        if out.is_err() {
            self.metrics.record_error();
        }
        self.end_statement(obs, &fingerprint::normalize(label), &out, Some(&mut tb));
        if self.tracing_enabled() {
            self.tracer.record(tb.finish());
        }
        out
    }

    fn tracing_enabled(&self) -> bool {
        self.knobs.get("query_tracing").unwrap_or(1) != 0
    }

    /// Open the per-statement observation window: flight `StmtBegin`,
    /// a wait-set baseline, and a zeroed statement cost accumulator.
    fn begin_statement(&self, fp: u64) -> StmtObservation {
        self.flight.record(FlightKind::StmtBegin, fp, 0, 0);
        STMT_COST.with(|c| c.set(0.0));
        StmtObservation {
            fp,
            start_secs: self.clock().now_secs(),
            w0: wait::thread_snapshot(),
        }
    }

    /// Close the observation window: fold the statement into its
    /// fingerprint entry, emit flight events, feed the per-wait-class
    /// registry histograms, and attach the wait breakdown to the trace.
    fn end_statement(
        &self,
        obs: StmtObservation,
        normalized: &str,
        out: &Result<QueryResult>,
        tb: Option<&mut TraceBuilder<'_>>,
    ) {
        // A lost first-updater-wins race is a wait event: its cost is
        // the retry the caller now has to do. Record it before taking
        // the delta so it lands in this statement's wait set.
        if let Err(e) = out {
            if matches!(e, AimError::WriteConflict(_)) {
                wait::record_event(wait::WaitClass::WriteConflictRetry);
                self.flight.record(FlightKind::WriteConflict, obs.fp, 0, 0);
            }
        }
        let waits = wait::thread_snapshot().delta_since(&obs.w0);
        let elapsed_ns = ((self.clock().now_secs() - obs.start_secs).max(0.0) * 1e9) as u64;
        let rows = match out {
            Ok(QueryResult::Rows { rows, .. }) => rows.len() as u64,
            Ok(QueryResult::Affected(n)) => *n as u64,
            _ => 0,
        };
        let cost = STMT_COST.with(|c| c.take());
        let err = out.is_err();
        self.stmt_stats
            .observe(obs.fp, normalized, elapsed_ns, rows, cost, &waits, err);
        self.flight
            .record(FlightKind::StmtEnd, obs.fp, elapsed_ns, err as u64);
        if !waits.is_zero() {
            let reg = self.metrics.registry();
            for (class, ns, _count) in waits.entries() {
                // per-class blocked-time distribution across statements
                // (in ns: the log-linear histogram has no sub-1.0
                // resolution, so seconds would flatten everything)
                reg.observe(&format!("aimdb_wait_ns_{class}"), ns as f64);
            }
        }
        // Surface lock-order witness violations (debug builds) as flight
        // events: `a` = total observed, `b` = new since last statement.
        let seen = parking_lot::witness::violation_count() as u64;
        // ordering: Relaxed — monotone high-water mark, read/written only
        // for best-effort reporting.
        let prev = self.witness_seen.swap(seen, Ordering::Relaxed);
        if seen > prev {
            self.flight
                .record(FlightKind::LockOrderViolation, seen, seen - prev, 0);
        }
        if let Some(t) = tb {
            t.set_waits(waits);
        }
    }

    /// The injected clock used for span and operator timing.
    fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.clock.read())
    }

    /// Swap the timing clock (a `ManualClock` makes traces deterministic
    /// in tests).
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *self.clock.write() = clock;
    }

    fn dispatch(
        &self,
        stmt: &Statement,
        mut tb: Option<&mut TraceBuilder<'_>>,
    ) -> Result<QueryResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| {
                            let mut col = Column::new(c.name.clone(), c.data_type);
                            if c.not_null {
                                col = col.not_null();
                            }
                            col
                        })
                        .collect(),
                );
                self.catalog
                    .create_table(name, schema.clone(), Arc::clone(&self.pool))?;
                self.wal.append(LogRecord::CreateTable {
                    name: name.clone(),
                    schema,
                })?;
                Ok(QueryResult::Text(format!("created table {name}")))
            }
            Statement::DropTable { name } => {
                self.catalog.drop_table(name)?;
                self.stats.write().remove(&name.to_ascii_lowercase());
                self.wal
                    .append(LogRecord::DropTable { name: name.clone() })?;
                Ok(QueryResult::Text(format!("dropped table {name}")))
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                self.catalog.create_index(name, table, column)?;
                self.wal.append(LogRecord::CreateIndex {
                    name: name.clone(),
                    table: table.clone(),
                    column: column.clone(),
                })?;
                Ok(QueryResult::Text(format!(
                    "created index {name} on {table}({column})"
                )))
            }
            Statement::DropIndex { name } => {
                self.catalog.drop_index(name)?;
                self.wal
                    .append(LogRecord::DropIndex { name: name.clone() })?;
                Ok(QueryResult::Text(format!("dropped index {name}")))
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => self.exec_insert(table, columns.as_deref(), rows, None),
            Statement::Select(sel) => {
                let plan = {
                    let oid = tb.as_deref_mut().map(|t| t.open("optimize"));
                    let plan = self.plan(sel);
                    if let (Some(t), Some(id)) = (tb.as_deref_mut(), oid) {
                        t.close(id);
                    }
                    plan?
                };
                let (rows, _) = self.exec_plan_traced(&plan, tb, None)?;
                Ok(QueryResult::Rows {
                    schema: plan.schema.clone(),
                    rows,
                })
            }
            Statement::Update {
                table,
                assignments,
                where_clause,
            } => self.exec_update(table, assignments, where_clause.as_ref(), None),
            Statement::Delete {
                table,
                where_clause,
            } => self.exec_delete(table, where_clause.as_ref(), None),
            Statement::Begin => {
                let id = self.txn.lock().begin(&self.wal)?;
                self.runtime.register(id);
                Ok(QueryResult::Text("begin".into()))
            }
            Statement::Commit => {
                let id = self.txn.lock().take_active()?;
                let sid = tb.as_deref_mut().map(|t| t.open("commit"));
                let out = self.commit_mvcc(id);
                if let (Some(t), Some(s)) = (tb.as_deref_mut(), sid) {
                    t.close(s);
                }
                out?;
                // Best-effort: the commit is durable; a checkpoint failure
                // surfaces on the next statement instead.
                let _ = self.maybe_checkpoint();
                Ok(QueryResult::Text("commit".into()))
            }
            Statement::Rollback => {
                let id = self.txn.lock().take_active()?;
                let sid = tb.as_deref_mut().map(|t| t.open("rollback"));
                let out = self.rollback_mvcc(id);
                if let (Some(t), Some(s)) = (tb.as_deref_mut(), sid) {
                    t.close(s);
                }
                out?;
                self.metrics.record_abort();
                Ok(QueryResult::Text("rollback".into()))
            }
            Statement::Explain(inner) => match inner.as_ref() {
                Statement::Select(sel) => {
                    let plan = self.plan(sel)?;
                    Ok(QueryResult::Text(plan.explain()))
                }
                other => Ok(QueryResult::Text(format!("{other:?}"))),
            },
            Statement::ExplainAnalyze(inner) => match inner.as_ref() {
                Statement::Select(sel) => {
                    let report = self.explain_analyze_traced(sel, tb)?;
                    Ok(QueryResult::Text(report.text))
                }
                other => Err(AimError::Plan(format!(
                    "EXPLAIN ANALYZE supports SELECT statements, got {other:?}"
                ))),
            },
            Statement::Analyze { table } => {
                let names = match table {
                    Some(t) => vec![t.clone()],
                    None => self.catalog.table_names(),
                };
                for n in &names {
                    self.analyze_table(n)?;
                }
                Ok(QueryResult::Text(format!(
                    "analyzed {} table(s)",
                    names.len()
                )))
            }
            Statement::Set { knob, value } => {
                let applied = self.knobs.set(knob, value)?;
                if knob.eq_ignore_ascii_case("buffer_pool_pages") {
                    self.pool.resize(applied as usize)?;
                }
                if knob.eq_ignore_ascii_case("wal_sync") {
                    self.wal.set_sync_on_commit(applied != 0);
                }
                if knob.eq_ignore_ascii_case("group_commit_window") {
                    self.wal.set_group_window_us(applied as u64);
                }
                if knob.eq_ignore_ascii_case("slow_query_cost_threshold") {
                    self.tracer.set_slow_threshold(applied as f64);
                }
                Ok(QueryResult::Text(format!("set {knob} = {applied}")))
            }
            Statement::CreateModel {
                name,
                kind,
                table,
                features,
                label,
                params,
            } => {
                let hook = self
                    .hook
                    .read()
                    .clone()
                    .ok_or_else(|| AimError::Model("no model runtime registered".into()))?;
                let desc = hook.create_model(
                    self,
                    name,
                    *kind,
                    table,
                    features,
                    label.as_deref(),
                    params,
                )?;
                Ok(QueryResult::Text(desc))
            }
            Statement::DropModel { name } => {
                let hook = self
                    .hook
                    .read()
                    .clone()
                    .ok_or_else(|| AimError::Model("no model runtime registered".into()))?;
                hook.drop_model(name)?;
                Ok(QueryResult::Text(format!("dropped model {name}")))
            }
            Statement::Predict { model, inputs } => {
                let hook = self
                    .hook
                    .read()
                    .clone()
                    .ok_or_else(|| AimError::Model("no model runtime registered".into()))?;
                let vals: Vec<Value> = inputs
                    .iter()
                    .map(|e| e.eval(&Schema::default(), &Row::default(), &BuiltinFns))
                    .collect::<Result<_>>()?;
                let out = hook.predict(model, &vals)?;
                Ok(QueryResult::Rows {
                    schema: Schema::from_pairs(&[("prediction", aimdb_common::DataType::Float)]),
                    rows: vec![Row::new(vec![out])],
                })
            }
        }
    }

    /// Plan a SELECT with the current stats and estimator.
    pub fn plan(&self, sel: &Select) -> Result<PhysicalPlan> {
        let stats = self.stats.read();
        let est = self.estimator.read().clone();
        let planner = Planner::new(&self.catalog, &stats, est.as_ref());
        planner.plan_select(sel)
    }

    /// Execute a physical plan, recording metrics. Returns rows + schema.
    pub fn run_plan(&self, plan: &PhysicalPlan) -> Result<QueryResult> {
        let (rows, _) = self.exec_plan(plan)?;
        Ok(QueryResult::Rows {
            schema: plan.schema.clone(),
            rows,
        })
    }

    /// Plan + execute returning the measured cost units — the latency
    /// signal learned optimizers train on.
    pub fn execute_select_measured(&self, sel: &Select) -> Result<(Vec<Row>, f64)> {
        let plan = self.plan(sel)?;
        self.exec_plan(&plan)
    }

    /// Execute an externally built physical plan and return measured cost
    /// units (used by learned join-ordering / NEO experiments).
    pub fn run_plan_measured(&self, plan: &PhysicalPlan) -> Result<(Vec<Row>, f64)> {
        self.exec_plan(plan)
    }

    /// The single plan-execution path. Entry point for callers that hold
    /// a plan but no statement-level trace (tuners, learned-optimizer
    /// experiments): starts its own trace when tracing is enabled.
    fn exec_plan(&self, plan: &PhysicalPlan) -> Result<(Vec<Row>, f64)> {
        if !self.tracing_enabled() {
            return self.exec_plan_traced(plan, None, None);
        }
        let clock = self.clock();
        let mut tb = TraceBuilder::new(clock.as_ref(), plan_label(plan));
        let w0 = wait::thread_snapshot();
        let out = self.exec_plan_traced(plan, Some(&mut tb), None);
        tb.set_waits(wait::thread_snapshot().delta_since(&w0));
        self.tracer.record(tb.finish());
        out
    }

    /// Verify (debug builds), dispatch to the vectorized or row executor
    /// per the `vectorized_exec` knob, flush per-operator and per-query
    /// metrics, and — when a trace is active — record verify/execute
    /// spans, buffer-pool deltas and the operator profile.
    fn exec_plan_traced(
        &self,
        plan: &PhysicalPlan,
        mut tb: Option<&mut TraceBuilder<'_>>,
        snap: Option<Snapshot>,
    ) -> Result<(Vec<Row>, f64)> {
        // Reads go through a snapshot when a transaction supplies one
        // (handle or session BEGIN); otherwise a statement-scoped
        // read snapshot so concurrent commits appear atomically. The
        // guard keeps the checkpoint vacuum at bay until the scan ends.
        let (snap, _read_guard) = match snap.or_else(|| self.session_snapshot()) {
            Some(s) => (s, None),
            None => {
                let (s, g) = self.read_snapshot();
                (s, Some(g))
            }
        };
        let snap = Some(snap);
        // Debug builds statically verify every plan before running it, so
        // the whole test suite doubles as a verifier soak test.
        #[cfg(debug_assertions)]
        {
            let vid = tb.as_deref_mut().map(|t| t.open("verify"));
            crate::verify::verify(plan, &self.catalog)?;
            if let (Some(t), Some(id)) = (tb.as_deref_mut(), vid) {
                t.close(id);
            }
        }
        let fns = EngineFns {
            hook: self.hook.read().clone(),
        };
        let vectorized = self.knobs.get("vectorized_exec").unwrap_or(1) != 0;
        let clock = self.clock();
        let eid = tb.as_deref_mut().map(|t| t.open("execute"));
        let pool_before = tb.is_some().then(|| self.pool.stats());
        let (rows, cost, ops) = if vectorized {
            let bs = self.knobs.get("exec_batch_size").unwrap_or(1024) as usize;
            let workers = self.exec_workers();
            let ctx = ExecContext::with_clock(&self.catalog, &fns, clock.as_ref());
            ctx.set_snapshot(snap);
            let rows = execute_batched_parallel(plan, &ctx, bs, workers)?;
            let ops = ctx.take_op_stats();
            self.flush_op_stats(&ops);
            self.note_worker_spans(ctx.take_worker_spans(), tb.as_deref_mut());
            let cost = ctx.cost_units();
            (rows, cost, ops)
        } else {
            let ctx = ExecContext::new(&self.catalog, &fns);
            ctx.set_snapshot(snap);
            let rows = execute(plan, &ctx)?;
            let cost = ctx.cost_units();
            (rows, cost, Vec::new())
        };
        if let Some(t) = tb {
            t.add_rows(rows.len() as u64);
            t.add_batches(ops.iter().map(|(_, st)| st.batches).max().unwrap_or(0));
            t.add_cost(cost);
            if let Some(before) = pool_before {
                let after = self.pool.stats();
                t.add_buffer(
                    after.hits.saturating_sub(before.hits),
                    after.misses.saturating_sub(before.misses),
                );
            }
            if let Some(id) = eid {
                t.close(id);
            }
            t.set_ops(crate::analyze::op_profiles(plan, &ops));
        }
        self.metrics.record_query(rows.len() as u64, cost);
        STMT_COST.with(|c| c.set(c.get() + cost));
        Ok((rows, cost))
    }

    fn flush_op_stats(&self, ops: &[(OpKey, OpStats)]) {
        for &((name, node, worker), stats) in ops {
            self.metrics.record_operator(name, node, worker, stats);
        }
    }

    /// Resolve the `exec_parallelism` knob to a morsel worker count:
    /// 0 means one worker per available core (capped at the knob max).
    fn exec_workers(&self) -> usize {
        let n = self.knobs.get("exec_parallelism").unwrap_or(0);
        if n > 0 {
            n as usize
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(64)
        }
    }

    /// Attach morsel-worker wall-clock footprints to the active trace —
    /// as pre-timed (and mutually overlapping) children of the open
    /// `execute` span — and refresh the `aimdb_worker_busy_ratio` gauge:
    /// the fraction of the workers' combined wall-clock window spent
    /// processing morsels rather than waiting on the dispenser.
    fn note_worker_spans(&self, spans: Vec<WorkerSpan>, tb: Option<&mut TraceBuilder<'_>>) {
        if spans.is_empty() {
            return;
        }
        if let Some(t) = tb {
            for s in &spans {
                t.push_span_at(&format!("worker-{}", s.worker), s.start_ns, s.end_ns, 0);
            }
        }
        let mut window = 0u64;
        let mut busy = 0u64;
        for s in &spans {
            window += s.end_ns.saturating_sub(s.start_ns);
            busy += s.busy_ns;
        }
        if window > 0 {
            self.metrics.registry().set_gauge(
                "aimdb_worker_busy_ratio",
                (busy as f64 / window as f64).min(1.0),
            );
            // The idle remainder of the workers' combined window is time
            // spent starved for morsels — attribute it to the statement.
            if window > busy {
                wait::record_ns(wait::WaitClass::MorselStarvation, window - busy);
            }
        }
    }

    /// `EXPLAIN ANALYZE` as an API: execute `sel` through the
    /// instrumented vectorized pipeline and return the plan annotated
    /// with per-node actuals and `QEvalError`s. Metrics are recorded as
    /// for a normal execution.
    pub fn explain_analyze(&self, sel: &Select) -> Result<AnalyzeReport> {
        self.explain_analyze_traced(sel, None)
    }

    fn explain_analyze_traced(
        &self,
        sel: &Select,
        mut tb: Option<&mut TraceBuilder<'_>>,
    ) -> Result<AnalyzeReport> {
        let plan = {
            let oid = tb.as_deref_mut().map(|t| t.open("optimize"));
            let plan = self.plan(sel);
            if let (Some(t), Some(id)) = (tb.as_deref_mut(), oid) {
                t.close(id);
            }
            plan?
        };
        #[cfg(debug_assertions)]
        crate::verify::verify(&plan, &self.catalog)?;
        let fns = EngineFns {
            hook: self.hook.read().clone(),
        };
        // Always the instrumented vectorized pipeline: the per-operator
        // actuals are the point, whatever `vectorized_exec` says.
        let clock = self.clock();
        let bs = self.knobs.get("exec_batch_size").unwrap_or(1024) as usize;
        let eid = tb.as_deref_mut().map(|t| t.open("execute"));
        let workers = self.exec_workers();
        let ctx = ExecContext::with_clock(&self.catalog, &fns, clock.as_ref());
        let (snap, _read_guard) = match self.session_snapshot() {
            Some(s) => (s, None),
            None => {
                let (s, g) = self.read_snapshot();
                (s, Some(g))
            }
        };
        ctx.set_snapshot(Some(snap));
        let rows = execute_batched_parallel(&plan, &ctx, bs, workers)?;
        let ops = ctx.take_op_stats();
        self.flush_op_stats(&ops);
        self.note_worker_spans(ctx.take_worker_spans(), tb.as_deref_mut());
        let cost = ctx.cost_units();
        if let Some(t) = tb {
            t.add_rows(rows.len() as u64);
            t.add_cost(cost);
            if let Some(id) = eid {
                t.close(id);
            }
            t.set_ops(crate::analyze::op_profiles(&plan, &ops));
        }
        self.metrics.record_query(rows.len() as u64, cost);
        STMT_COST.with(|c| c.set(c.get() + cost));
        Ok(crate::analyze::build_report(
            &plan,
            &ops,
            rows.len() as u64,
            cost,
        ))
    }

    /// Prometheus-style text exposition of every engine metric: query /
    /// txn / recovery counters, the cost histogram with p50/p95/p99,
    /// buffer and disk gauges, and per-operator counters labelled by
    /// operator name and plan-node id. The output always passes
    /// [`aimdb_trace::validate_exposition`].
    pub fn metrics_text(&self) -> String {
        let b = self.pool.stats();
        let d = self.store.stats();
        let reg = self.metrics.registry();
        reg.set_gauge("aimdb_buffer_hit_rate", b.hit_rate());
        reg.set_gauge("aimdb_disk_reads", d.reads as f64);
        reg.set_gauge("aimdb_disk_writes", d.writes as f64);
        // Sync the process-wide contended-acquire total from the lock shim
        // into the registry (counters are monotone, so apply the delta).
        let contention = parking_lot::contention_counts();
        let total: u64 = contention.iter().map(|(_, n)| n).sum();
        let cur = reg.counter(crate::metrics::LOCK_CONTENTION_TOTAL);
        reg.inc_counter(
            crate::metrics::LOCK_CONTENTION_TOTAL,
            total.saturating_sub(cur),
        );
        // Same delta-sync for contended-acquire *time*: acquisition counts
        // alone rank a hot uncontended lock above a slow contended one.
        let wait_by_rank = parking_lot::contention_wait_ns();
        let wait_total: u64 = wait_by_rank.iter().map(|(_, ns)| ns).sum();
        let cur = reg.counter(crate::metrics::LOCK_WAIT_NS_TOTAL);
        reg.inc_counter(
            crate::metrics::LOCK_WAIT_NS_TOTAL,
            wait_total.saturating_sub(cur),
        );
        let mut out = reg.render();
        out.push_str("# TYPE aimdb_lock_contention_rank_total counter\n");
        for (rank, n) in &contention {
            out.push_str(&format!(
                "aimdb_lock_contention_rank_total{{rank=\"{rank}\"}} {n}\n"
            ));
        }
        out.push_str("# TYPE aimdb_lock_wait_ns_rank_total counter\n");
        for (rank, ns) in &wait_by_rank {
            out.push_str(&format!(
                "aimdb_lock_wait_ns_rank_total{{rank=\"{rank}\"}} {ns}\n"
            ));
        }
        // Process-wide wait-class attribution. Every class is always
        // exposed (zeros included) so scrapes see a stable label set.
        let waits = wait::global_totals();
        out.push_str("# TYPE aimdb_wait_ns_total counter\n");
        for class in wait::WaitClass::ALL {
            let (ns, _) = waits.get(class);
            out.push_str(&format!(
                "aimdb_wait_ns_total{{class=\"{}\"}} {ns}\n",
                class.name()
            ));
        }
        out.push_str("# TYPE aimdb_wait_events_total counter\n");
        for class in wait::WaitClass::ALL {
            let (_, n) = waits.get(class);
            out.push_str(&format!(
                "aimdb_wait_events_total{{class=\"{}\"}} {n}\n",
                class.name()
            ));
        }
        // Top statement fingerprints by call count, so a scrape alone
        // identifies the hot statements without the stats API.
        for st in self.stmt_stats.snapshot().into_iter().take(5) {
            out.push_str(&format!(
                "aimdb_statement_calls_total{{fingerprint=\"{:016x}\"}} {}\n",
                st.fingerprint, st.calls
            ));
            out.push_str(&format!(
                "aimdb_statement_ns_total{{fingerprint=\"{:016x}\"}} {}\n",
                st.fingerprint, st.total_ns
            ));
        }
        let ops = self.metrics.operator_stats();
        if !ops.is_empty() {
            for (family, pick) in [
                ("aimdb_operator_rows_total", 0usize),
                ("aimdb_operator_batches_total", 1),
                ("aimdb_operator_ns_total", 2),
            ] {
                out.push_str(&format!("# TYPE {family} counter\n"));
                for &((name, node, worker), st) in &ops {
                    let v = match pick {
                        0 => st.rows,
                        1 => st.batches,
                        _ => st.ns,
                    };
                    out.push_str(&format!(
                        "{family}{{op=\"{name}\",node=\"{node}\",worker=\"{worker}\"}} {v}\n"
                    ));
                }
            }
        }
        debug_assert!(validate_exposition(&out).is_ok());
        out
    }

    /// Recently completed query traces, oldest first.
    pub fn recent_traces(&self) -> Vec<Arc<QueryTrace>> {
        self.tracer.recent()
    }

    /// Per-fingerprint statement statistics, most-called first: call /
    /// error / row counts, cost units, latency quantiles and the
    /// wait-class breakdown accumulated across executions.
    pub fn statement_stats(&self) -> Vec<StatementStat> {
        self.stmt_stats.snapshot()
    }

    /// The database's flight recorder. Hold a clone to dump post-mortem
    /// snapshots (e.g. from a [`FaultInjector`](aimdb_storage::FaultInjector)
    /// crash hook) after the `Database` itself is gone.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.flight)
    }

    /// Structured JSON slow-query log lines, oldest first (queries whose
    /// cost crossed `slow_query_cost_threshold`).
    pub fn slow_query_log(&self) -> Vec<String> {
        self.tracer.slow_query_log()
    }

    fn analyze_table(&self, name: &str) -> Result<()> {
        let t = self.catalog.table(name)?;
        let st = TableStats::analyze(&t, 32)?;
        self.stats.write().insert(name.to_ascii_lowercase(), st);
        Ok(())
    }

    fn exec_insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<Expr>],
        h: Option<&TxnHandle>,
    ) -> Result<QueryResult> {
        let t = self.catalog.table(table)?;
        let (txn, auto, _snap) = self.stmt_txn(h)?;
        let body = || -> Result<usize> {
            let mut n = 0;
            for exprs in rows {
                let vals: Vec<Value> = exprs
                    .iter()
                    .map(|e| e.eval(&Schema::default(), &Row::default(), &BuiltinFns))
                    .collect::<Result<_>>()?;
                let full = match columns {
                    None => vals,
                    Some(cols) => {
                        if cols.len() != vals.len() {
                            return Err(AimError::Plan(format!(
                                "INSERT column list has {} names but {} values",
                                cols.len(),
                                vals.len()
                            )));
                        }
                        let mut full = vec![Value::Null; t.schema.len()];
                        for (c, v) in cols.iter().zip(vals) {
                            full[t.schema.index_of(c)?] = v;
                        }
                        full
                    }
                };
                let rid = t.mvcc_insert(full, txn)?;
                self.runtime.record_write(
                    txn,
                    WriteOp::Created {
                        table: table.to_string(),
                        rid,
                    },
                );
                // Log the stored row (the schema may have coerced values),
                // so redo reproduces exactly what was persisted.
                let stored = t.heap.get(rid)?.ok_or_else(|| {
                    AimError::Storage(format!("row {rid:?} vanished after insert"))
                })?;
                log_insert(&self.wal, txn, table, rid, stored)?;
                n += 1;
            }
            Ok(n)
        };
        self.finish_dml(txn, auto, body())
    }

    /// Batched ingest: insert many pre-built rows into `table` as one
    /// auto-commit transaction, bypassing SQL parsing and expression
    /// evaluation. Each row must list every column in schema order
    /// (values are coerced by the schema exactly like `INSERT`). The
    /// whole batch commits atomically through the MVCC path and is WAL
    /// logged row-by-row, so crash recovery replays it all or nothing.
    /// Built for the macro-benchmark loaders, where per-statement parse
    /// and per-row commit dominate bulk-load time.
    pub fn insert_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let t = self.catalog.table(table)?;
        let (txn, auto, _snap) = self.stmt_txn(None)?;
        let body = || -> Result<usize> {
            let mut n = 0;
            for full in rows {
                let rid = t.mvcc_insert(full, txn)?;
                self.runtime.record_write(
                    txn,
                    WriteOp::Created {
                        table: table.to_string(),
                        rid,
                    },
                );
                // Log the stored row (the schema may have coerced values),
                // so redo reproduces exactly what was persisted.
                let stored = t.heap.get(rid)?.ok_or_else(|| {
                    AimError::Storage(format!("row {rid:?} vanished after insert"))
                })?;
                log_insert(&self.wal, txn, table, rid, stored)?;
                n += 1;
            }
            Ok(n)
        };
        match self.finish_dml(txn, auto, body())? {
            QueryResult::Affected(n) => Ok(n),
            _ => Err(AimError::Execution("insert_rows: non-DML result".into())),
        }
    }

    /// Close out a DML statement. Auto-commit statements commit (or, on
    /// failure, roll back) their implicit transaction through the MVCC
    /// path, so a mid-statement storage fault cannot leave half a
    /// statement visible. Statements inside an open transaction or
    /// handle leave the error to the caller, who decides between
    /// ROLLBACK and retrying the statement.
    fn finish_dml(&self, txn: u64, auto: bool, out: Result<usize>) -> Result<QueryResult> {
        match out {
            Ok(n) => {
                if auto {
                    self.commit_mvcc(txn)?;
                    let _ = self.maybe_checkpoint();
                }
                Ok(QueryResult::Affected(n))
            }
            Err(e) => {
                if auto {
                    // Best-effort: on an injected crash these fail too, and
                    // recovery discards the unfinished transaction anyway.
                    let _ = self.rollback_mvcc(txn);
                    self.metrics.record_abort();
                }
                Err(e)
            }
        }
    }

    fn exec_update(
        &self,
        table: &str,
        assignments: &[(String, Expr)],
        where_clause: Option<&Expr>,
        h: Option<&TxnHandle>,
    ) -> Result<QueryResult> {
        let t = self.catalog.table(table)?;
        let fns = EngineFns {
            hook: self.hook.read().clone(),
        };
        let pred = match where_clause {
            Some(w) => Some(bind_expr(w, &t.schema)?),
            None => None,
        };
        let bound_assign: Vec<(usize, Expr)> = assignments
            .iter()
            .map(|(c, e)| Ok((t.schema.index_of(c)?, bind_expr(e, &t.schema)?)))
            .collect::<Result<_>>()?;
        let (txn, auto, snap) = self.stmt_txn(h)?;
        let body = || -> Result<usize> {
            let mut n = 0;
            // Materialized snapshot scan: new versions inserted below are
            // never rescanned (no Halloween problem).
            for (rid, row) in t.scan_visible(Some(snap))? {
                let keep = match &pred {
                    Some(p) => p.eval_predicate(&t.schema, &row, &fns)?,
                    None => true,
                };
                if !keep {
                    continue;
                }
                let mut vals = row.values().to_vec();
                for (ci, e) in &bound_assign {
                    vals[*ci] = e.eval(&t.schema, &row, &fns)?;
                }
                // First-updater-wins: claim the old version, then write
                // the new one as a fresh row version.
                t.mvcc_claim(rid, &snap)?;
                self.runtime.record_write(
                    txn,
                    WriteOp::Ended {
                        table: table.to_string(),
                        rid,
                    },
                );
                let new_rid = t.mvcc_insert(vals, txn)?;
                self.runtime.record_write(
                    txn,
                    WriteOp::Created {
                        table: table.to_string(),
                        rid: new_rid,
                    },
                );
                let after = t.heap.get(new_rid)?.ok_or_else(|| {
                    AimError::Storage(format!("row {new_rid:?} vanished after update"))
                })?;
                log_update(&self.wal, txn, table, rid, new_rid, row, after)?;
                n += 1;
            }
            Ok(n)
        };
        self.finish_dml(txn, auto, body())
    }

    fn exec_delete(
        &self,
        table: &str,
        where_clause: Option<&Expr>,
        h: Option<&TxnHandle>,
    ) -> Result<QueryResult> {
        let t = self.catalog.table(table)?;
        let fns = EngineFns {
            hook: self.hook.read().clone(),
        };
        let pred = match where_clause {
            Some(w) => Some(bind_expr(w, &t.schema)?),
            None => None,
        };
        let (txn, auto, snap) = self.stmt_txn(h)?;
        let body = || -> Result<usize> {
            let mut n = 0;
            for (rid, row) in t.scan_visible(Some(snap))? {
                let keep = match &pred {
                    Some(p) => p.eval_predicate(&t.schema, &row, &fns)?,
                    None => true,
                };
                if keep {
                    // MVCC delete is a claim: the version stays in the
                    // heap for concurrent snapshots and is physically
                    // removed by the checkpoint vacuum.
                    t.mvcc_claim(rid, &snap)?;
                    self.runtime.record_write(
                        txn,
                        WriteOp::Ended {
                            table: table.to_string(),
                            rid,
                        },
                    );
                    log_delete(&self.wal, txn, table, rid, row)?;
                    n += 1;
                }
            }
            Ok(n)
        };
        self.finish_dml(txn, auto, body())
    }
}

/// Locate a row by value (multiset semantics: any one match). Recovery
/// replays deletes/updates this way because row ids are reassigned when
/// tables are rebuilt from a checkpoint.
fn find_row(t: &Table, target: &Row) -> Result<Option<RowId>> {
    for (rid, row) in t.scan()? {
        if &row == target {
            return Ok(Some(rid));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_users() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE users (id INT NOT NULL, name TEXT, age INT)")
            .unwrap();
        for i in 0..100 {
            db.execute(&format!(
                "INSERT INTO users VALUES ({i}, 'user{i}', {})",
                20 + (i % 50)
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn select_with_filter_and_order() {
        let db = db_with_users();
        let r = db
            .execute("SELECT id, age FROM users WHERE age >= 65 ORDER BY id DESC LIMIT 3")
            .unwrap();
        let rows = r.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(0), &Value::Int(99));
        assert!(rows.iter().all(|r| r.get(1).as_i64().unwrap() >= 65));
    }

    #[test]
    fn aggregates_and_group_by() {
        let db = db_with_users();
        let r = db
            .execute("SELECT COUNT(*), AVG(age), MIN(id), MAX(id) FROM users")
            .unwrap();
        let row = &r.rows()[0];
        assert_eq!(row.get(0), &Value::Int(100));
        assert_eq!(row.get(2), &Value::Int(0));
        assert_eq!(row.get(3), &Value::Int(99));
        let r = db
            .execute("SELECT age, COUNT(*) AS n FROM users GROUP BY age ORDER BY n DESC, age")
            .unwrap();
        assert_eq!(r.rows().len(), 50);
        assert_eq!(r.rows()[0].get(1), &Value::Int(2));
    }

    #[test]
    fn join_two_tables() {
        let db = db_with_users();
        db.execute("CREATE TABLE orders (oid INT, user_id INT, amount FLOAT)")
            .unwrap();
        for i in 0..50 {
            db.execute(&format!(
                "INSERT INTO orders VALUES ({i}, {}, {})",
                i % 10,
                (i as f64) * 1.5
            ))
            .unwrap();
        }
        let r = db
            .execute(
                "SELECT u.name, SUM(o.amount) AS total FROM users u JOIN orders o \
                 ON u.id = o.user_id GROUP BY u.name ORDER BY total DESC LIMIT 2",
            )
            .unwrap();
        assert_eq!(r.rows().len(), 2);
        // user 9 gets orders 9,19,29,39,49 → 1.5*(9+19+29+39+49)=217.5
        assert_eq!(r.rows()[0].get(0), &Value::Text("user9".into()));
        assert_eq!(r.rows()[0].get(1), &Value::Float(217.5));
    }

    #[test]
    fn insert_rows_batched_ingest() {
        let db = Database::new();
        db.execute("CREATE TABLE items (id INT, name TEXT, price FLOAT)")
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Text(format!("item{i}")),
                    Value::Float(i as f64 * 0.5),
                ]
            })
            .collect();
        assert_eq!(db.insert_rows("items", rows).unwrap(), 500);
        let r = db.execute("SELECT COUNT(*), SUM(id) FROM items").unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Int(500));
        assert_eq!(r.rows()[0].get(1), &Value::Int(500 * 499 / 2));
        // schema coercion matches INSERT: an Int into a FLOAT column lands
        // as Float
        db.insert_rows(
            "items",
            vec![vec![
                Value::Int(1000),
                Value::Text("x".into()),
                Value::Int(3),
            ]],
        )
        .unwrap();
        let r = db
            .execute("SELECT price FROM items WHERE id = 1000")
            .unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Float(3.0));
        // arity mismatch is a schema error, and the batch rolls back whole
        let bad = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        assert!(db.insert_rows("items", bad).is_err());
        let r = db.execute("SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(501));
        // batch survives recovery through the WAL
        let report = db.checkpoint_now();
        assert!(report.is_ok());
        let (db2, _) = Database::recover(Arc::clone(db.disk())).unwrap();
        let r = db2.execute("SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(501));
    }

    #[test]
    fn annulled_commit_stays_aborted_after_recovery() {
        use aimdb_storage::{Disk, FaultInjector, FaultPlan};

        // A commit whose group flush fails transiently is rolled back and
        // annulled with an Abort record — but the Commit record is already
        // in the flush buffer and becomes durable on the next successful
        // flush. Recovery must honor the later Abort, or the failed txn's
        // effects resurrect after a crash and diverge from the pre-crash
        // live state (found by the macro-bench crash harness).
        let disk = Arc::new(Disk::new());
        let inj = Arc::new(FaultInjector::new(Arc::clone(&disk), FaultPlan::default()));
        let db = Database::with_store(inj.clone() as Arc<dyn PageStore>);
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1)").unwrap();

        // Next mutating store op (the commit flush) fails once.
        inj.arm(FaultPlan::default().with_io_error_at(vec![1]));
        let h = db.begin_txn().unwrap();
        db.execute_in(&h, "INSERT INTO t VALUES (2)").unwrap();
        assert!(db.commit_txn(&h).is_err(), "commit flush failure surfaces");

        // Live state: the failed txn rolled back.
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(1));

        // A later commit flushes the retained buffer — including the
        // annulled txn's Commit AND its Abort.
        db.execute("INSERT INTO t VALUES (3)").unwrap();
        drop(db);

        let (db2, _) = Database::recover(Arc::clone(&disk) as Arc<dyn PageStore>).unwrap();
        let r = db2.execute("SELECT COUNT(*) FROM t ").unwrap();
        assert_eq!(
            r.scalar().unwrap(),
            &Value::Int(2),
            "annulled commit must not resurrect at recovery"
        );
        let r = db2.execute("SELECT COUNT(*) FROM t WHERE id = 2").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(0));
    }

    #[test]
    fn update_and_delete() {
        let db = db_with_users();
        let r = db
            .execute("UPDATE users SET age = age + 100 WHERE id < 10")
            .unwrap();
        assert_eq!(r, QueryResult::Affected(10));
        let r = db
            .execute("SELECT COUNT(*) FROM users WHERE age >= 120")
            .unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(10));
        let r = db.execute("DELETE FROM users WHERE id >= 50").unwrap();
        assert_eq!(r, QueryResult::Affected(50));
        let r = db.execute("SELECT COUNT(*) FROM users").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(50));
    }

    #[test]
    fn transaction_rollback_restores_data() {
        let db = db_with_users();
        db.execute("BEGIN").unwrap();
        db.execute("DELETE FROM users WHERE id < 50").unwrap();
        db.execute("INSERT INTO users VALUES (1000, 'temp', 1)")
            .unwrap();
        db.execute("UPDATE users SET age = 0 WHERE id = 60")
            .unwrap();
        db.execute("ROLLBACK").unwrap();
        let r = db.execute("SELECT COUNT(*) FROM users").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(100));
        let r = db.execute("SELECT age FROM users WHERE id = 60").unwrap();
        assert_ne!(r.rows()[0].get(0), &Value::Int(0));
        let r = db
            .execute("SELECT COUNT(*) FROM users WHERE id = 1000")
            .unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(0));
    }

    #[test]
    fn transaction_commit_persists() {
        let db = db_with_users();
        db.execute("BEGIN").unwrap();
        db.execute("DELETE FROM users WHERE id < 10").unwrap();
        db.execute("COMMIT").unwrap();
        let r = db.execute("SELECT COUNT(*) FROM users").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(90));
    }

    #[test]
    fn index_used_after_analyze() {
        let db = Database::new();
        db.execute("CREATE TABLE big (id INT, v INT)").unwrap();
        let tuples: Vec<String> = (0..5000).map(|i| format!("({i}, {})", i % 7)).collect();
        db.execute(&format!("INSERT INTO big VALUES {}", tuples.join(",")))
            .unwrap();
        db.execute("CREATE INDEX idx_id ON big (id)").unwrap();
        db.execute("ANALYZE big").unwrap();
        let r = db
            .execute("EXPLAIN SELECT * FROM big WHERE id = 5")
            .unwrap();
        let QueryResult::Text(plan) = r else { panic!() };
        assert!(plan.contains("IndexScan"), "plan: {plan}");
        // and still correct
        let r = db.execute("SELECT v FROM big WHERE id = 5").unwrap();
        assert_eq!(r.rows()[0].get(0), &Value::Int(5));
        // on a tiny table the optimizer must prefer the sequential scan
        let db2 = db_with_users();
        db2.execute("CREATE INDEX idx2 ON users (id)").unwrap();
        db2.execute("ANALYZE users").unwrap();
        let QueryResult::Text(plan) = db2
            .execute("EXPLAIN SELECT * FROM users WHERE id = 5")
            .unwrap()
        else {
            panic!()
        };
        assert!(plan.contains("SeqScan"), "plan: {plan}");
    }

    #[test]
    fn seq_scan_for_unselective_predicate() {
        let db = db_with_users();
        db.execute("CREATE INDEX idx_age ON users (age)").unwrap();
        db.execute("ANALYZE").unwrap();
        let r = db
            .execute("EXPLAIN SELECT * FROM users WHERE age >= 20")
            .unwrap();
        let QueryResult::Text(plan) = r else { panic!() };
        assert!(plan.contains("SeqScan"), "plan: {plan}");
    }

    #[test]
    fn knobs_via_set() {
        let db = Database::new();
        db.execute("SET buffer_pool_pages = 8").unwrap();
        assert_eq!(db.buffer_pool().capacity(), 8);
        assert!(db.execute("SET no_such_knob = 1").is_err());
    }

    #[test]
    fn kpis_reflect_activity() {
        let db = db_with_users();
        let before = db.kpis();
        db.execute("SELECT * FROM users").unwrap();
        let after = db.kpis();
        assert_eq!(after.queries_executed, before.queries_executed + 1);
        assert!(after.rows_emitted >= before.rows_emitted + 100);
        assert!(after.total_cost_units > before.total_cost_units);
    }

    #[test]
    fn run_script_multiple() {
        let db = Database::new();
        let rs = db
            .run_script(
                "CREATE TABLE t (a INT); INSERT INTO t VALUES (1), (2); SELECT COUNT(*) FROM t;",
            )
            .unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs[2].scalar().unwrap(), &Value::Int(2));
    }

    #[test]
    fn predict_without_hook_errors() {
        let db = Database::new();
        assert!(db.execute("PREDICT m GIVEN (1)").is_err());
        assert!(db
            .execute("CREATE MODEL m KIND LINEAR ON t (a) LABEL b")
            .is_err());
    }

    #[test]
    fn insert_with_column_list() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INT, b TEXT, c FLOAT)")
            .unwrap();
        db.execute("INSERT INTO t (c, a) VALUES (1.5, 7)").unwrap();
        let r = db.execute("SELECT a, b, c FROM t").unwrap();
        let row = &r.rows()[0];
        assert_eq!(row.get(0), &Value::Int(7));
        assert_eq!(row.get(1), &Value::Null);
        assert_eq!(row.get(2), &Value::Float(1.5));
    }

    #[test]
    fn select_expression_only() {
        let db = Database::new();
        let r = db.execute("SELECT 1 + 2 AS three").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(3));
    }

    #[test]
    fn error_statements_recorded() {
        let db = Database::new();
        let _ = db.execute("SELECT * FROM missing");
        assert_eq!(db.kpis().errors, 1);
    }

    fn observability_fixture() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE ev (id INT, grp INT, amt FLOAT)")
            .unwrap();
        let rows: Vec<String> = (0..500)
            .map(|i| format!("({i}, {}, {:.1})", i % 5, (i % 90) as f64))
            .collect();
        db.execute(&format!("INSERT INTO ev VALUES {}", rows.join(",")))
            .unwrap();
        db.execute("ANALYZE").unwrap();
        db
    }

    #[test]
    fn explain_analyze_annotates_every_node() {
        let db = observability_fixture();
        let r = db
            .execute(
                "EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM ev WHERE amt > 10.0 GROUP BY grp ORDER BY grp",
            )
            .unwrap();
        let text = match r {
            QueryResult::Text(t) => t,
            other => panic!("expected text, got {other:?}"),
        };
        // a 3+-operator plan where every node line carries estimates,
        // actuals and the per-node QEvalError
        let node_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("actual rows="))
            .collect();
        assert!(node_lines.len() >= 3, "plan too small:\n{text}");
        for line in &node_lines {
            assert!(line.contains("rows≈"), "missing estimate: {line}");
            assert!(line.contains("actual rows="), "missing actuals: {line}");
            assert!(line.contains("time="), "missing timing: {line}");
            assert!(line.contains("cost="), "missing cost: {line}");
        }
        assert!(text.contains("Total: rows=5"), "{text}");
    }

    #[test]
    fn explain_analyze_api_reports_exact_row_counts() {
        let db = observability_fixture();
        let sel = match parse_one("SELECT id FROM ev WHERE grp = 3").unwrap() {
            Statement::Select(sel) => sel,
            other => panic!("{other:?}"),
        };
        let expected = db.execute("SELECT id FROM ev WHERE grp = 3").unwrap();
        let report = db.explain_analyze(&sel).unwrap();
        assert_eq!(report.result_rows, expected.rows().len() as u64);
        let root = report.root().unwrap();
        assert_eq!(root.rows, report.result_rows);
        assert_eq!(root.node, 0);
        assert!(root.q_error >= 1.0);
        // node ids are preorder and parents precede children
        for n in &report.nodes {
            if let Some(p) = n.parent {
                assert!(p < n.node);
            }
        }
    }

    #[test]
    fn explain_analyze_names_match_executor() {
        // analyze::op_name must agree with the names exec_batch records
        let db = observability_fixture();
        db.execute("CREATE INDEX idx_grp ON ev(grp)").unwrap();
        for sql in [
            "SELECT * FROM ev",
            "SELECT id FROM ev WHERE grp = 2 ORDER BY id DESC LIMIT 3",
            "SELECT a.id FROM ev a, ev b WHERE a.id = b.id AND a.amt > 80.0",
            "SELECT grp, SUM(amt) FROM ev GROUP BY grp",
        ] {
            let sel = match parse_one(sql).unwrap() {
                Statement::Select(sel) => sel,
                other => panic!("{other:?}"),
            };
            let report = db.explain_analyze(&sel).unwrap();
            for node in &report.nodes {
                if node.batches > 0 {
                    // an executed node matched a recorded (name, node) key,
                    // so the mapping agrees
                    continue;
                }
                // unexecuted nodes are allowed only zeros
                assert_eq!(node.rows, 0, "{sql}: {node:?}");
            }
            assert!(report.max_q_error() >= 1.0);
        }
    }

    #[test]
    fn metrics_text_parses_and_exposes_quantiles() {
        let db = observability_fixture();
        for _ in 0..20 {
            db.execute("SELECT COUNT(*) FROM ev WHERE amt > 50.0")
                .unwrap();
        }
        let page = db.metrics_text();
        let samples = aimdb_trace::validate_exposition(&page).expect("page parses");
        assert!(samples > 10, "only {samples} samples:\n{page}");
        assert!(page.contains("aimdb_queries_total"));
        assert!(page.contains("aimdb_query_cost_units{quantile=\"0.95\"}"));
        assert!(page.contains("aimdb_buffer_hit_rate"));
        assert!(page.contains("aimdb_operator_rows_total{op=\"seq_scan\",node="));
        assert!(page.contains("aimdb_operator_ns_total{op=\"project\",node=\"0\",worker=\"0\"}"));
        assert!(page.contains("aimdb_lock_contention_total"));
        assert!(page.contains("aimdb_lock_contention_rank_total{rank=\"commit_lock\"}"));
        assert!(page.contains("aimdb_lock_wait_ns_total"));
        // all seven wait classes are always exposed, zero or not
        for class in wait::WaitClass::ALL {
            assert!(
                page.contains(&format!(
                    "aimdb_wait_ns_total{{class=\"{}\"}}",
                    class.name()
                )),
                "missing wait class {} in:\n{page}",
                class.name()
            );
        }
        assert!(page.contains("aimdb_wait_events_total{class=\"wal_fsync\"}"));
        assert!(page.contains("aimdb_statement_calls_total{fingerprint=\""));
        let kpis = db.kpis();
        assert!(kpis.p50_cost_per_query > 0.0);
        assert!(kpis.p50_cost_per_query <= kpis.p99_cost_per_query);
    }

    #[test]
    fn statement_stats_aggregate_by_fingerprint() {
        let db = observability_fixture();
        for i in 0..7 {
            db.execute(&format!("SELECT id FROM ev WHERE amt > {i}.0"))
                .unwrap();
        }
        db.execute("SELECT grp FROM ev WHERE grp = 3").unwrap();
        let stats = db.statement_stats();
        let hot = stats
            .iter()
            .find(|s| s.normalized == "select id from ev where amt > ?")
            .expect("literal-varied statements share one fingerprint");
        assert_eq!(hot.calls, 7);
        assert!(hot.rows > 0);
        assert!(hot.cost_units > 0.0);
        assert_eq!(hot.latency.count, 7);
        assert!(hot.latency.p50 <= hot.latency.p99);
        // the INSERT from the fixture went through the WAL, so its
        // fingerprint entry attributes commit-path waits
        let ins = stats
            .iter()
            .find(|s| s.normalized.starts_with("insert into ev values"))
            .expect("insert fingerprinted");
        assert_eq!(ins.errors, 0);
        assert!(
            ins.waits.get(wait::WaitClass::WalFsync).1 > 0
                || ins.waits.get(wait::WaitClass::GroupCommitFollower).1 > 0,
            "insert saw no commit-path waits: {:?}",
            ins.waits
        );
        // parse errors are observed too, under their own fingerprint
        let _ = db.execute("SELEC id FROM ev");
        let stats = db.statement_stats();
        let bad = stats
            .iter()
            .find(|s| s.normalized == "selec id from ev")
            .expect("parse error fingerprinted");
        assert_eq!(bad.errors, 1);
    }

    #[test]
    fn flight_recorder_captures_statement_lifecycle() {
        let db = observability_fixture();
        db.execute("SELECT COUNT(*) FROM ev").unwrap();
        let flight = db.flight_recorder();
        let dump = flight.dump_json("unit_test").to_string_pretty();
        let doc = aimdb_common::json::Json::parse(&dump).expect("dump round-trips");
        assert_eq!(doc.field("reason").unwrap().as_str().unwrap(), "unit_test");
        let events = flight.events();
        let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert!(kinds.contains(&"stmt_begin"));
        assert!(kinds.contains(&"stmt_end"));
        assert!(kinds.contains(&"commit"), "fixture INSERT commits");
        // stmt_end carries the fingerprint and elapsed time
        let end = events
            .iter()
            .rev()
            .find(|e| e.kind.name() == "stmt_end")
            .unwrap();
        assert_eq!(
            end.a,
            crate::fingerprint::fingerprint("SELECT COUNT(*) FROM ev")
        );
        assert_eq!(end.c, 0, "statement did not error");
    }

    #[test]
    fn traces_record_lifecycle_spans() {
        let db = observability_fixture();
        db.set_clock(Arc::new(aimdb_common::ManualClock::new()));
        db.execute("SELECT COUNT(*) FROM ev").unwrap();
        let trace = db.tracer.last().expect("trace recorded");
        assert!(trace.label.starts_with("SELECT COUNT(*)"));
        for phase in ["parse", "optimize", "execute"] {
            assert!(trace.span(phase).is_some(), "missing {phase} span");
        }
        let exec = trace.span("execute").unwrap();
        assert_eq!(exec.rows, 1);
        assert!(exec.cost_units > 0.0);
        assert!(!trace.ops.is_empty());
        assert_eq!(trace.ops[0].node, 0);
    }

    #[test]
    fn query_tracing_knob_disables_tracing() {
        let db = observability_fixture();
        db.tracer.clear();
        db.execute("SET query_tracing = 0").unwrap();
        db.execute("SELECT COUNT(*) FROM ev").unwrap();
        assert!(db.tracer.is_empty());
        db.execute("SET query_tracing = 1").unwrap();
        db.execute("SELECT COUNT(*) FROM ev").unwrap();
        assert_eq!(db.tracer.len(), 1);
    }

    #[test]
    fn slow_query_log_honours_threshold_knob() {
        let db = observability_fixture();
        assert!(db.slow_query_log().is_empty());
        db.execute("SET slow_query_cost_threshold = 1").unwrap();
        db.execute("SELECT COUNT(*) FROM ev").unwrap();
        let log = db.slow_query_log();
        assert_eq!(log.len(), 1);
        let event = aimdb_common::json::Json::parse(&log[0]).expect("valid json");
        assert!(event
            .field("label")
            .and_then(aimdb_common::json::Json::as_str)
            .unwrap()
            .contains("SELECT COUNT(*)"));
        assert!(event.field("cost_units").unwrap().as_f64().unwrap() >= 1.0);
    }

    #[test]
    fn two_filters_in_one_plan_keep_separate_counters() {
        let db = observability_fixture();
        // self-join where both sides carry a filter: two seq_scan nodes
        // with embedded predicates at distinct node ids
        db.execute("SELECT a.id FROM ev a, ev b WHERE a.id = b.id AND a.amt > 10.0 AND b.grp = 1")
            .unwrap();
        let scans: Vec<_> = db
            .metrics
            .operator_stats()
            .into_iter()
            .filter(|((name, _, _), _)| *name == "seq_scan")
            .collect();
        assert!(scans.len() >= 2, "scans merged: {scans:?}");
        let nodes: std::collections::HashSet<usize> =
            scans.iter().map(|((_, node, _), _)| *node).collect();
        assert_eq!(nodes.len(), scans.len(), "node ids collide");
    }
}
