//! The cost-based optimizer: lowering, predicate pushdown, access-path
//! selection, dynamic-programming join ordering, and aggregate planning.
//!
//! This is the *traditional empirical* optimizer of the reproduction — the
//! baseline every learned component competes with. Two seams exist for the
//! AI4DB crate:
//!
//! - [`CardEstimator`] abstracts cardinality estimation; the default
//!   [`HistogramEstimator`] multiplies per-predicate selectivities under an
//!   independence assumption (exactly the weakness the tutorial says
//!   learned estimators fix);
//! - hypothetical indexes make [`Planner`] usable as a *what-if* costing
//!   service for index advisors (E2) without touching physical storage.

use std::collections::{HashMap, HashSet};

use aimdb_common::{AimError, Result, Row, Schema, Value};
use aimdb_sql::ast::{AggFunc, OrderKey, Select, SelectItem};
use aimdb_sql::expr::BinaryOp;
use aimdb_sql::logical::AggExpr;
use aimdb_sql::Expr;

use crate::catalog::Catalog;
use crate::plan::{bind_expr, default_output_name, qualify_schema, PhysOp, PhysicalPlan};
use crate::stats::TableStats;

/// Cost-model constants (cost units ≈ sequential page reads).
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    pub seq_page_cost: f64,
    pub random_page_cost: f64,
    pub cpu_tuple_cost: f64,
    pub rows_per_page: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            rows_per_page: 64.0,
        }
    }
}

/// A conjunct on a single table, reduced to the shape estimators reason
/// about. Column names are bare (unqualified).
#[derive(Debug, Clone, PartialEq)]
pub enum SimplePred {
    Eq {
        column: String,
        value: Value,
    },
    Range {
        column: String,
        lo: Option<f64>,
        hi: Option<f64>,
    },
    /// Anything else (LIKE, IN, OR trees, expressions...).
    Other,
}

/// Cardinality estimation seam. Implementations must be pure functions of
/// their inputs so plans are reproducible.
pub trait CardEstimator: Send + Sync {
    /// Combined selectivity of the conjuncts applied to one table's scan.
    fn scan_selectivity(
        &self,
        table: &str,
        preds: &[SimplePred],
        stats: Option<&TableStats>,
    ) -> f64;

    /// Selectivity of an equi-join edge `l.lc = r.rc`.
    fn join_selectivity(
        &self,
        left: (&str, &str),
        right: (&str, &str),
        stats: &HashMap<String, TableStats>,
    ) -> f64;
}

/// The classical estimator: histogram/distinct-count selectivities
/// multiplied under attribute-independence.
#[derive(Debug, Default, Clone, Copy)]
pub struct HistogramEstimator;

impl CardEstimator for HistogramEstimator {
    fn scan_selectivity(
        &self,
        _table: &str,
        preds: &[SimplePred],
        stats: Option<&TableStats>,
    ) -> f64 {
        // Same-column range conjuncts (`k >= lo AND k <= hi` arrives as
        // two half-open ranges) are maximally dependent: multiplying
        // them under independence turns a narrow interval into the
        // product of two wide tails. Intersect them into one interval
        // per column first, then apply independence across columns.
        let mut ranges: HashMap<&str, (Option<f64>, Option<f64>)> = HashMap::new();
        let mut sel = 1.0;
        for p in preds {
            match p {
                SimplePred::Range { column, lo, hi } => {
                    let entry = ranges.entry(column.as_str()).or_insert((None, None));
                    entry.0 = match (entry.0, *lo) {
                        (Some(a), Some(b)) => Some(a.max(b)),
                        (a, b) => a.or(b),
                    };
                    entry.1 = match (entry.1, *hi) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    };
                }
                SimplePred::Eq { column, .. } => {
                    sel *= match stats {
                        Some(st) => st.eq_selectivity(column),
                        None => 0.05,
                    };
                }
                SimplePred::Other => sel *= 0.33,
            }
        }
        for (column, (lo, hi)) in ranges {
            sel *= match stats {
                Some(st) => st.range_selectivity(column, lo, hi),
                None => 0.33,
            };
        }
        sel.clamp(1e-9, 1.0)
    }

    fn join_selectivity(
        &self,
        left: (&str, &str),
        right: (&str, &str),
        stats: &HashMap<String, TableStats>,
    ) -> f64 {
        let nd = |t: &str, c: &str| {
            stats
                .get(&t.to_ascii_lowercase())
                .and_then(|s| s.column(c))
                .map(|cs| cs.n_distinct)
                .unwrap_or(10)
        };
        let d = nd(left.0, left.1).max(nd(right.0, right.1)).max(1);
        (1.0 / d as f64).clamp(1e-9, 1.0)
    }
}

/// One table reference in the query, with its qualified schema.
#[derive(Debug, Clone)]
struct AliasInfo {
    alias: String,
    table: String,
    schema: Schema, // qualified: alias.col
    base_rows: f64,
}

/// An equi-join edge between two aliases.
#[derive(Debug, Clone)]
struct JoinEdge {
    left_alias: usize,
    left_col: String, // bare
    right_alias: usize,
    right_col: String, // bare
}

/// The query planner. Construct one per statement (cheap).
pub struct Planner<'a> {
    pub catalog: &'a Catalog,
    pub stats: &'a HashMap<String, TableStats>,
    pub estimator: &'a dyn CardEstimator,
    pub cost: CostParams,
    /// `(table, column)` pairs treated as indexed during costing even if
    /// no physical index exists (what-if mode for index advisors).
    pub hypothetical_indexes: HashSet<(String, String)>,
    /// When true, access-path selection ignores physical indexes and uses
    /// only `hypothetical_indexes` (pure what-if costing).
    pub hypothetical_only: bool,
}

impl<'a> Planner<'a> {
    pub fn new(
        catalog: &'a Catalog,
        stats: &'a HashMap<String, TableStats>,
        estimator: &'a dyn CardEstimator,
    ) -> Self {
        Planner {
            catalog,
            stats,
            estimator,
            cost: CostParams::default(),
            hypothetical_indexes: HashSet::new(),
            hypothetical_only: false,
        }
    }

    fn table_stats(&self, table: &str) -> Option<&TableStats> {
        self.stats.get(&table.to_ascii_lowercase())
    }

    fn has_index(&self, table: &str, column: &str) -> bool {
        let key = (table.to_ascii_lowercase(), column.to_ascii_lowercase());
        if self.hypothetical_indexes.contains(&key) {
            return true;
        }
        if self.hypothetical_only {
            return false;
        }
        self.catalog
            .table(table)
            .map(|t| t.index_on(column).is_some())
            .unwrap_or(false)
    }

    /// Plan a SELECT into a physical plan.
    pub fn plan_select(&self, select: &Select) -> Result<PhysicalPlan> {
        // 1. collect alias infos
        let mut aliases: Vec<AliasInfo> = Vec::new();
        let mut all_refs = select.from.clone();
        all_refs.extend(select.joins.iter().map(|j| j.table.clone()));
        for tref in &all_refs {
            let table = self.catalog.table(&tref.name)?;
            let alias = tref.effective_name().to_string();
            if aliases.iter().any(|a| a.alias.eq_ignore_ascii_case(&alias)) {
                return Err(AimError::Plan(format!("duplicate table alias {alias}")));
            }
            let base_rows = self
                .table_stats(&tref.name)
                .map(|s| s.row_count as f64)
                .unwrap_or_else(|| table.row_count().map(|n| n as f64).unwrap_or(1000.0))
                .max(1.0);
            aliases.push(AliasInfo {
                schema: qualify_schema(&table.schema, &alias),
                alias,
                table: tref.name.clone(),
                base_rows,
            });
        }
        if aliases.is_empty() {
            // SELECT without FROM: single literal row
            return self.plan_projection_only(select);
        }

        // 2. gather conjuncts from WHERE and JOIN ... ON
        let mut conjuncts: Vec<Expr> = Vec::new();
        if let Some(w) = &select.where_clause {
            conjuncts.extend(w.conjuncts().into_iter().cloned());
        }
        for j in &select.joins {
            conjuncts.extend(j.on.conjuncts().into_iter().cloned());
        }

        // 3. classify conjuncts
        let mut per_alias: Vec<Vec<Expr>> = vec![Vec::new(); aliases.len()];
        let mut edges: Vec<JoinEdge> = Vec::new();
        let mut residual: Vec<Expr> = Vec::new();
        for c in conjuncts {
            match self.conjunct_aliases(&c, &aliases)? {
                refs if refs.len() == 1 => match refs.iter().next() {
                    Some(&i) => per_alias[i].push(c),
                    None => residual.push(c),
                },
                refs if refs.len() == 2 => {
                    if let Some(edge) = self.as_equi_edge(&c, &aliases)? {
                        edges.push(edge);
                    } else {
                        residual.push(c);
                    }
                }
                _ => residual.push(c),
            }
        }

        // 4. base access paths
        let scans: Vec<PhysicalPlan> = aliases
            .iter()
            .enumerate()
            .map(|(i, a)| self.plan_scan(a, &per_alias[i]))
            .collect::<Result<_>>()?;

        // 5. join ordering
        let mut plan = if aliases.len() == 1 {
            scans
                .into_iter()
                .next()
                .ok_or_else(|| AimError::Plan("single-table query produced no scan".into()))?
        } else if aliases.len() <= 10 {
            self.dp_join(&aliases, scans, &edges)?
        } else {
            self.greedy_join(&aliases, scans, &edges)?
        };

        // 6. residual predicates
        if let Some(pred) = Expr::conjunction(residual) {
            let bound = bind_expr(&pred, &plan.schema)?;
            plan = self.add_filter(plan, bound);
        }

        // 7. aggregation / projection
        plan = self.plan_projection(select, plan)?;

        // 8. order by, limit
        if !select.order_by.is_empty() {
            let keys: Vec<OrderKey> = select
                .order_by
                .iter()
                .map(|k| {
                    Ok(OrderKey {
                        expr: bind_expr(&k.expr, &plan.schema)?,
                        desc: k.desc,
                    })
                })
                .collect::<Result<_>>()?;
            let rows = plan.est_rows;
            let cost = plan.est_cost + rows * (rows.max(2.0)).log2() * 0.005;
            plan = PhysicalPlan {
                schema: plan.schema.clone(),
                op: PhysOp::Sort {
                    input: Box::new(plan),
                    keys,
                },
                est_rows: rows,
                est_cost: cost,
            };
        }
        if let Some(n) = select.limit {
            let rows = plan.est_rows.min(n as f64);
            let cost = plan.est_cost;
            plan = PhysicalPlan {
                schema: plan.schema.clone(),
                op: PhysOp::Limit {
                    input: Box::new(plan),
                    n,
                },
                est_rows: rows,
                est_cost: cost,
            };
        }
        // 9. mark parallelizable scan regions with Exchange boundaries
        Ok(insert_exchanges(plan))
    }

    /// Which aliases a conjunct references.
    fn conjunct_aliases(&self, e: &Expr, aliases: &[AliasInfo]) -> Result<HashSet<usize>> {
        let mut out = HashSet::new();
        for (q, name) in e.referenced_columns() {
            out.insert(self.resolve_alias(q, name, aliases)?.0);
        }
        Ok(out)
    }

    /// Resolve a column reference to `(alias index, bare column name)`.
    fn resolve_alias(
        &self,
        qualifier: Option<&str>,
        name: &str,
        aliases: &[AliasInfo],
    ) -> Result<(usize, String)> {
        match qualifier {
            Some(q) => {
                let idx = aliases
                    .iter()
                    .position(|a| a.alias.eq_ignore_ascii_case(q))
                    .ok_or_else(|| AimError::NotFound(format!("table alias {q}")))?;
                // verify the column exists
                let table = self.catalog.table(&aliases[idx].table)?;
                let ci = table.schema.index_of(name)?;
                Ok((idx, table.schema.columns()[ci].name.clone()))
            }
            None => {
                let mut found: Option<(usize, String)> = None;
                for (i, a) in aliases.iter().enumerate() {
                    let table = self.catalog.table(&a.table)?;
                    if let Ok(ci) = table.schema.index_of(name) {
                        if found.is_some() {
                            return Err(AimError::Plan(format!("ambiguous column {name}")));
                        }
                        found = Some((i, table.schema.columns()[ci].name.clone()));
                    }
                }
                found.ok_or_else(|| AimError::NotFound(format!("column {name}")))
            }
        }
    }

    /// Try to interpret a two-alias conjunct as an equi-join edge.
    fn as_equi_edge(&self, e: &Expr, aliases: &[AliasInfo]) -> Result<Option<JoinEdge>> {
        if let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = e
        {
            if let (
                Expr::Column {
                    qualifier: ql,
                    name: nl,
                },
                Expr::Column {
                    qualifier: qr,
                    name: nr,
                },
            ) = (left.as_ref(), right.as_ref())
            {
                let (la, lc) = self.resolve_alias(ql.as_deref(), nl, aliases)?;
                let (ra, rc) = self.resolve_alias(qr.as_deref(), nr, aliases)?;
                if la != ra {
                    return Ok(Some(JoinEdge {
                        left_alias: la,
                        left_col: lc,
                        right_alias: ra,
                        right_col: rc,
                    }));
                }
            }
        }
        Ok(None)
    }

    /// Classify single-table conjuncts into [`SimplePred`]s (bare column
    /// names) for the estimator.
    pub fn classify_preds(conjuncts: &[Expr]) -> Vec<SimplePred> {
        conjuncts
            .iter()
            .map(|c| match c {
                Expr::Binary { left, op, right } => {
                    let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                        (Expr::Column { name, .. }, Expr::Literal(v)) => (name, v, *op),
                        (Expr::Literal(v), Expr::Column { name, .. }) => (name, v, flip(*op)),
                        _ => return SimplePred::Other,
                    };
                    let bare = bare_name(col);
                    match op {
                        BinaryOp::Eq => SimplePred::Eq {
                            column: bare,
                            value: lit.clone(),
                        },
                        BinaryOp::Lt | BinaryOp::Lte => match lit.as_f64() {
                            Ok(f) => SimplePred::Range {
                                column: bare,
                                lo: None,
                                hi: Some(f),
                            },
                            Err(_) => SimplePred::Other,
                        },
                        BinaryOp::Gt | BinaryOp::Gte => match lit.as_f64() {
                            Ok(f) => SimplePred::Range {
                                column: bare,
                                lo: Some(f),
                                hi: None,
                            },
                            Err(_) => SimplePred::Other,
                        },
                        _ => SimplePred::Other,
                    }
                }
                Expr::Between { expr, lo, hi } => {
                    if let (Expr::Column { name, .. }, Expr::Literal(l), Expr::Literal(h)) =
                        (expr.as_ref(), lo.as_ref(), hi.as_ref())
                    {
                        match (l.as_f64(), h.as_f64()) {
                            (Ok(l), Ok(h)) => SimplePred::Range {
                                column: bare_name(name),
                                lo: Some(l),
                                hi: Some(h),
                            },
                            _ => SimplePred::Other,
                        }
                    } else {
                        SimplePred::Other
                    }
                }
                _ => SimplePred::Other,
            })
            .collect()
    }

    /// Plan the access path for one table with its pushed-down conjuncts.
    fn plan_scan(&self, a: &AliasInfo, conjuncts: &[Expr]) -> Result<PhysicalPlan> {
        let preds = Self::classify_preds(conjuncts);
        let stats = self.table_stats(&a.table);
        let sel = self.estimator.scan_selectivity(&a.table, &preds, stats);
        let est_rows = (a.base_rows * sel).max(0.0);
        let filter = match Expr::conjunction(conjuncts.to_vec()) {
            Some(p) => Some(bind_expr(&p, &a.schema)?),
            None => None,
        };

        // candidate index predicates: Eq first, then the narrowest range
        let mut best_index: Option<(String, Option<Value>, Option<Value>, f64)> = None;
        for p in &preds {
            match p {
                SimplePred::Eq { column, value } if self.has_index(&a.table, column) => {
                    let s =
                        self.estimator
                            .scan_selectivity(&a.table, std::slice::from_ref(p), stats);
                    if best_index.as_ref().is_none_or(|b| s < b.3) {
                        best_index =
                            Some((column.clone(), Some(value.clone()), Some(value.clone()), s));
                    }
                }
                SimplePred::Range { column, lo, hi } if self.has_index(&a.table, column) => {
                    let s =
                        self.estimator
                            .scan_selectivity(&a.table, std::slice::from_ref(p), stats);
                    if best_index.as_ref().is_none_or(|b| s < b.3) {
                        best_index = Some((
                            column.clone(),
                            lo.map(Value::Float),
                            hi.map(Value::Float),
                            s,
                        ));
                    }
                }
                _ => {}
            }
        }

        let seq_cost = self.seq_scan_cost(a.base_rows);
        if let Some((column, lo, hi, isel)) = best_index {
            let matched = a.base_rows * isel;
            let idx_cost = self.index_scan_cost(matched);
            if idx_cost < seq_cost {
                return Ok(PhysicalPlan {
                    op: PhysOp::IndexScan {
                        table: a.table.clone(),
                        alias: a.alias.clone(),
                        column,
                        lo,
                        hi,
                        filter,
                    },
                    schema: a.schema.clone(),
                    est_rows,
                    est_cost: idx_cost,
                });
            }
        }
        Ok(PhysicalPlan {
            op: PhysOp::SeqScan {
                table: a.table.clone(),
                alias: a.alias.clone(),
                filter,
            },
            schema: a.schema.clone(),
            est_rows,
            est_cost: seq_cost + conjuncts.len() as f64 * a.base_rows * 0.002,
        })
    }

    pub fn seq_scan_cost(&self, rows: f64) -> f64 {
        (rows / self.cost.rows_per_page).ceil().max(1.0) * self.cost.seq_page_cost
            + rows * self.cost.cpu_tuple_cost
    }

    pub fn index_scan_cost(&self, matched_rows: f64) -> f64 {
        3.0 * self.cost.random_page_cost
            + matched_rows * self.cost.random_page_cost * 0.3
            + matched_rows * self.cost.cpu_tuple_cost
    }

    fn add_filter(&self, input: PhysicalPlan, predicate: Expr) -> PhysicalPlan {
        let rows = (input.est_rows * 0.33).max(0.0);
        let cost = input.est_cost + input.est_rows * 0.005;
        PhysicalPlan {
            schema: input.schema.clone(),
            op: PhysOp::Filter {
                input: Box::new(input),
                predicate,
            },
            est_rows: rows,
            est_cost: cost,
        }
    }

    /// Build a join of two sub-plans, using the crossing equi edges.
    fn make_join(
        &self,
        left: PhysicalPlan,
        right: PhysicalPlan,
        crossing: &[(&JoinEdge, bool)], // (edge, edge.left is in `left`)
        aliases: &[AliasInfo],
    ) -> Result<PhysicalPlan> {
        let mut sel = 1.0;
        for (e, _) in crossing {
            sel *= self.estimator.join_selectivity(
                (&aliases[e.left_alias].table, &e.left_col),
                (&aliases[e.right_alias].table, &e.right_col),
                self.stats,
            );
        }
        let est_rows = (left.est_rows * right.est_rows * sel).max(0.0);
        let schema = left.schema.join(&right.schema);
        if let Some((first, first_left_in_left)) = crossing.first() {
            let (lkey_alias, lkey_col, rkey_alias, rkey_col) = if *first_left_in_left {
                (
                    first.left_alias,
                    &first.left_col,
                    first.right_alias,
                    &first.right_col,
                )
            } else {
                (
                    first.right_alias,
                    &first.right_col,
                    first.left_alias,
                    &first.left_col,
                )
            };
            let left_key = bind_expr(
                &Expr::qcol(&aliases[lkey_alias].alias, lkey_col),
                &left.schema,
            )?;
            let right_key = bind_expr(
                &Expr::qcol(&aliases[rkey_alias].alias, rkey_col),
                &right.schema,
            )?;
            let residual = if crossing.len() > 1 {
                let preds: Vec<Expr> = crossing[1..]
                    .iter()
                    .map(|(e, _)| {
                        bind_expr(
                            &Expr::binary(
                                Expr::qcol(&aliases[e.left_alias].alias, &e.left_col),
                                BinaryOp::Eq,
                                Expr::qcol(&aliases[e.right_alias].alias, &e.right_col),
                            ),
                            &schema,
                        )
                    })
                    .collect::<Result<_>>()?;
                Expr::conjunction(preds)
            } else {
                None
            };
            let cost = left.est_cost
                + right.est_cost
                + (left.est_rows + right.est_rows) * 0.015
                + est_rows * self.cost.cpu_tuple_cost;
            Ok(PhysicalPlan {
                op: PhysOp::HashJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    left_key,
                    right_key,
                    residual,
                },
                schema,
                est_rows,
                est_cost: cost,
            })
        } else {
            // cross join
            let est_rows = left.est_rows * right.est_rows;
            let cost = left.est_cost
                + right.est_cost
                + left.est_rows * right.est_rows * self.cost.cpu_tuple_cost;
            Ok(PhysicalPlan {
                op: PhysOp::NestedLoopJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    on: None,
                },
                schema,
                est_rows,
                est_cost: cost,
            })
        }
    }

    fn crossing_edges(
        edges: &[JoinEdge],
        left_mask: u64,
        right_mask: u64,
    ) -> Vec<(&JoinEdge, bool)> {
        edges
            .iter()
            .filter_map(|e| {
                let lb = 1u64 << e.left_alias;
                let rb = 1u64 << e.right_alias;
                if lb & left_mask != 0 && rb & right_mask != 0 {
                    Some((e, true))
                } else if lb & right_mask != 0 && rb & left_mask != 0 {
                    Some((e, false))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Exact DP over connected subsets (textbook DPsize). Cartesian
    /// products are never considered while an edge-connected merge can
    /// cover the subset — a tiny dimension✕dimension cross product can
    /// look cheap in isolation but forces the fact table through an
    /// unfiltered product later. Only when the first pass cannot reach
    /// the full mask (the join graph is genuinely disconnected) does a
    /// second pass stitch the remaining components with cross joins.
    fn dp_join(
        &self,
        aliases: &[AliasInfo],
        scans: Vec<PhysicalPlan>,
        edges: &[JoinEdge],
    ) -> Result<PhysicalPlan> {
        let n = aliases.len();
        let full: u64 = (1 << n) - 1;
        let mut best: HashMap<u64, PhysicalPlan> = HashMap::new();
        for (i, s) in scans.into_iter().enumerate() {
            best.insert(1 << i, s);
        }
        // remember which singletons exist — needed for the diagnostic if
        // the DP table never reaches the full mask
        let have_scan: u64 = best.keys().fold(0, |acc, m| acc | m);
        // Pass 1: edge-connected merges only.
        self.dp_pass(&mut best, full, aliases, edges, false)?;
        if !best.contains_key(&full) {
            // Pass 2: disconnected graph — allow cross joins to stitch
            // the already-optimal connected components together.
            self.dp_pass(&mut best, full, aliases, edges, true)?;
        }
        match best.remove(&full) {
            Some(plan) => Ok(plan),
            None => Err(Self::dp_disconnected_error(aliases, edges, have_scan)),
        }
    }

    /// One DPsize sweep over all subset masks. With `allow_cross` false,
    /// only splits linked by at least one equi edge are merged; masks
    /// already solved by an earlier pass are kept as-is.
    fn dp_pass(
        &self,
        best: &mut HashMap<u64, PhysicalPlan>,
        full: u64,
        aliases: &[AliasInfo],
        edges: &[JoinEdge],
        allow_cross: bool,
    ) -> Result<()> {
        for mask in 1..=full {
            if mask.count_ones() < 2 || best.contains_key(&mask) {
                continue;
            }
            let mut candidate: Option<PhysicalPlan> = None;
            // enumerate proper sub-splits
            let mut sub = (mask - 1) & mask;
            while sub > 0 {
                let other = mask ^ sub;
                if let (Some(l), Some(r)) = (best.get(&sub), best.get(&other)) {
                    let crossing = Self::crossing_edges(edges, sub, other);
                    if !crossing.is_empty() || allow_cross {
                        let plan = self.make_join(l.clone(), r.clone(), &crossing, aliases)?;
                        if candidate
                            .as_ref()
                            .is_none_or(|c| plan.est_cost < c.est_cost)
                        {
                            candidate = Some(plan);
                        }
                    }
                }
                sub = (sub - 1) & mask;
            }
            if let Some(c) = candidate {
                best.insert(mask, c);
            }
        }
        Ok(())
    }

    /// Diagnose a DP failure to cover the full mask: name the aliases in
    /// each connected component of the join graph and flag any alias with
    /// no base access path, instead of the old bare "failed to cover all
    /// tables". Unreachable from `plan_select` under normal operation
    /// (every alias gets a scan and the cross-join fallback connects any
    /// pair of covered masks), but kept informative for direct callers
    /// and future candidate-pruning rules.
    fn dp_disconnected_error(
        aliases: &[AliasInfo],
        edges: &[JoinEdge],
        have_scan: u64,
    ) -> AimError {
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let n = aliases.len();
        let mut parent: Vec<usize> = (0..n).collect();
        for e in edges {
            if e.left_alias < n && e.right_alias < n {
                let (a, b) = (
                    find(&mut parent, e.left_alias),
                    find(&mut parent, e.right_alias),
                );
                parent[a] = b;
            }
        }
        let mut groups: HashMap<usize, Vec<String>> = HashMap::new();
        for (i, a) in aliases.iter().enumerate() {
            let root = find(&mut parent, i);
            let label = if have_scan & (1 << i) == 0 {
                format!("{} (no access path)", a.alias)
            } else {
                a.alias.clone()
            };
            groups.entry(root).or_default().push(label);
        }
        let mut parts: Vec<String> = groups
            .into_values()
            .map(|g| format!("[{}]", g.join(", ")))
            .collect();
        parts.sort();
        AimError::Plan(format!(
            "join DP failed to cover all tables: join graph has {} disconnected component(s): {}",
            parts.len(),
            parts.join(" ")
        ))
    }

    /// Greedy join ordering for wide queries (> 10 tables).
    fn greedy_join(
        &self,
        aliases: &[AliasInfo],
        scans: Vec<PhysicalPlan>,
        edges: &[JoinEdge],
    ) -> Result<PhysicalPlan> {
        let mut remaining: Vec<(u64, PhysicalPlan)> = scans
            .into_iter()
            .enumerate()
            .map(|(i, s)| (1u64 << i, s))
            .collect();
        while remaining.len() > 1 {
            let mut best: Option<(usize, usize, PhysicalPlan)> = None;
            for i in 0..remaining.len() {
                for j in i + 1..remaining.len() {
                    let crossing = Self::crossing_edges(edges, remaining[i].0, remaining[j].0);
                    if crossing.is_empty() && remaining.len() > 2 {
                        continue; // defer cross joins
                    }
                    let plan = self.make_join(
                        remaining[i].1.clone(),
                        remaining[j].1.clone(),
                        &crossing,
                        aliases,
                    )?;
                    if best
                        .as_ref()
                        .is_none_or(|(_, _, b)| plan.est_cost < b.est_cost)
                    {
                        best = Some((i, j, plan));
                    }
                }
            }
            let (i, j, plan) = match best {
                Some(b) => b,
                None => {
                    // all pairs are cross joins; take the two smallest
                    let crossing = Self::crossing_edges(edges, remaining[0].0, remaining[1].0);
                    let plan = self.make_join(
                        remaining[0].1.clone(),
                        remaining[1].1.clone(),
                        &crossing,
                        aliases,
                    )?;
                    (0, 1, plan)
                }
            };
            let mask = remaining[i].0 | remaining[j].0;
            // remove j first (j > i)
            remaining.remove(j);
            remaining.remove(i);
            remaining.push((mask, plan));
        }
        Ok(remaining
            .pop()
            .ok_or_else(|| AimError::Plan("no tables to join".into()))?
            .1)
    }

    /// SELECT without FROM.
    fn plan_projection_only(&self, select: &Select) -> Result<PhysicalPlan> {
        let mut exprs = Vec::new();
        let mut cols = Vec::new();
        for (i, item) in select.items.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    return Err(AimError::Plan("SELECT * requires FROM".into()))
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias
                        .clone()
                        .unwrap_or_else(|| default_output_name(expr, i));
                    cols.push((name, expr.clone()));
                    exprs.push(expr.clone());
                }
            }
        }
        let schema = Schema::new(
            cols.iter()
                .map(|(n, _)| aimdb_common::Column::new(n.clone(), aimdb_common::DataType::Float))
                .collect(),
        );
        let empty = Schema::default();
        let values = PhysicalPlan {
            op: PhysOp::Values {
                rows: vec![Row::new(vec![])],
            },
            schema: empty,
            est_rows: 1.0,
            est_cost: 0.0,
        };
        Ok(PhysicalPlan {
            op: PhysOp::Project {
                input: Box::new(values),
                exprs,
            },
            schema,
            est_rows: 1.0,
            est_cost: 0.01,
        })
    }

    /// Plan aggregation + final projection over `input`.
    fn plan_projection(&self, select: &Select, input: PhysicalPlan) -> Result<PhysicalPlan> {
        // detect aggregates in select items
        let mut agg_calls: Vec<(AggFunc, Option<Expr>)> = Vec::new();
        for item in &select.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggs(expr, &mut agg_calls);
            }
        }
        for k in &select.order_by {
            collect_aggs(&k.expr, &mut agg_calls);
        }
        let has_agg = !agg_calls.is_empty() || !select.group_by.is_empty();

        if !has_agg {
            // simple projection
            let mut exprs = Vec::new();
            let mut columns = Vec::new();
            for (i, item) in select.items.iter().enumerate() {
                match item {
                    SelectItem::Wildcard => {
                        for c in input.schema.columns() {
                            exprs.push(Expr::col(&c.name));
                            let mut col = c.clone();
                            col.name = bare_name(&c.name);
                            columns.push(col);
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let bound = bind_expr(expr, &input.schema)?;
                        let name = alias
                            .clone()
                            .unwrap_or_else(|| default_output_name(&bound, i));
                        exprs.push(bound);
                        columns.push(aimdb_common::Column::new(
                            name,
                            aimdb_common::DataType::Float,
                        ));
                    }
                }
            }
            // de-duplicate bare output names from wildcard joins
            dedup_names(&mut columns);
            let rows = input.est_rows;
            let cost = input.est_cost + rows * 0.005 * exprs.len() as f64;
            return Ok(PhysicalPlan {
                schema: Schema::new(columns),
                op: PhysOp::Project {
                    input: Box::new(input),
                    exprs,
                },
                est_rows: rows,
                est_cost: cost,
            });
        }

        // aggregate plan: group exprs then agg exprs
        let group_exprs: Vec<Expr> = select
            .group_by
            .iter()
            .map(|g| bind_expr(g, &input.schema))
            .collect::<Result<_>>()?;
        // dedup agg calls structurally
        let mut uniq: Vec<(AggFunc, Option<Expr>)> = Vec::new();
        for (f, arg) in agg_calls {
            let bound = match &arg {
                Some(a) => Some(bind_expr(a, &input.schema)?),
                None => None,
            };
            if !uniq.iter().any(|(uf, ua)| *uf == f && *ua == bound) {
                uniq.push((f, bound));
            }
        }
        let aggs: Vec<AggExpr> = uniq
            .iter()
            .enumerate()
            .map(|(i, (f, arg))| AggExpr {
                func: *f,
                arg: arg.clone(),
                name: format!("__agg{i}"),
            })
            .collect();

        // aggregate output schema: __g0.. then __agg0..
        let mut agg_cols = Vec::new();
        for (i, _) in group_exprs.iter().enumerate() {
            agg_cols.push(aimdb_common::Column::new(
                format!("__g{i}"),
                aimdb_common::DataType::Float,
            ));
        }
        for a in &aggs {
            agg_cols.push(aimdb_common::Column::new(
                a.name.clone(),
                aimdb_common::DataType::Float,
            ));
        }
        let agg_schema = Schema::new(agg_cols);
        let group_card = if group_exprs.is_empty() {
            1.0
        } else {
            (input.est_rows / 10.0).max(1.0)
        };
        let agg_plan = PhysicalPlan {
            op: PhysOp::Aggregate {
                input: Box::new(input.clone()),
                group_exprs: group_exprs.clone(),
                aggs: aggs.clone(),
            },
            schema: agg_schema.clone(),
            est_rows: group_card,
            est_cost: input.est_cost + input.est_rows * 0.02,
        };

        // final projection: substitute agg calls and group exprs
        let mut exprs = Vec::new();
        let mut columns = Vec::new();
        for (i, item) in select.items.iter().enumerate() {
            let (expr, alias) = match item {
                SelectItem::Wildcard => {
                    return Err(AimError::Plan(
                        "SELECT * cannot be combined with aggregation".into(),
                    ))
                }
                SelectItem::Expr { expr, alias } => (expr, alias),
            };
            let sub = substitute_agg(expr, &select.group_by, &group_exprs, &uniq, &input.schema)?;
            let bound = bind_expr(&sub, &agg_schema)?;
            let name = alias
                .clone()
                .unwrap_or_else(|| default_output_name(expr, i));
            exprs.push(bound);
            columns.push(aimdb_common::Column::new(
                name,
                aimdb_common::DataType::Float,
            ));
        }
        dedup_names(&mut columns);
        let rows = agg_plan.est_rows;
        let cost = agg_plan.est_cost + rows * 0.005;
        Ok(PhysicalPlan {
            schema: Schema::new(columns),
            op: PhysOp::Project {
                input: Box::new(agg_plan),
                exprs,
            },
            est_rows: rows,
            est_cost: cost,
        })
    }
}

fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Lte => BinaryOp::Gte,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Gte => BinaryOp::Lte,
        other => other,
    }
}

fn bare_name(name: &str) -> String {
    match name.rsplit_once('.') {
        Some((_, b)) => b.to_string(),
        None => name.to_string(),
    }
}

/// Is this subtree a parallelizable morsel region — a (possibly empty)
/// chain of Filter / Project nodes over a SeqScan? Index scans stay
/// serial (their row order comes from the index, not heap pages), as do
/// joins and pipeline breakers, which instead consume a region's
/// morsel-ordered output.
fn is_parallel_region(plan: &PhysicalPlan) -> bool {
    match &plan.op {
        PhysOp::SeqScan { .. } => true,
        PhysOp::Filter { input, .. } | PhysOp::Project { input, .. } => is_parallel_region(input),
        _ => false,
    }
}

/// Wrap every maximal parallelizable region in an [`PhysOp::Exchange`]
/// boundary. The executor decides the worker count at run time (the
/// `exec_parallelism` knob); with one worker the exchange is a pure
/// passthrough, so inserting the node is free for serial execution.
fn insert_exchanges(plan: PhysicalPlan) -> PhysicalPlan {
    if is_parallel_region(&plan) {
        let (est_rows, est_cost) = (plan.est_rows, plan.est_cost);
        return PhysicalPlan {
            schema: plan.schema.clone(),
            op: PhysOp::Exchange {
                input: Box::new(plan),
            },
            est_rows,
            est_cost,
        };
    }
    let PhysicalPlan {
        op,
        schema,
        est_rows,
        est_cost,
    } = plan;
    let op = match op {
        PhysOp::Filter { input, predicate } => PhysOp::Filter {
            input: Box::new(insert_exchanges(*input)),
            predicate,
        },
        PhysOp::Project { input, exprs } => PhysOp::Project {
            input: Box::new(insert_exchanges(*input)),
            exprs,
        },
        PhysOp::NestedLoopJoin { left, right, on } => PhysOp::NestedLoopJoin {
            left: Box::new(insert_exchanges(*left)),
            right: Box::new(insert_exchanges(*right)),
            on,
        },
        PhysOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => PhysOp::HashJoin {
            left: Box::new(insert_exchanges(*left)),
            right: Box::new(insert_exchanges(*right)),
            left_key,
            right_key,
            residual,
        },
        PhysOp::Aggregate {
            input,
            group_exprs,
            aggs,
        } => PhysOp::Aggregate {
            input: Box::new(insert_exchanges(*input)),
            group_exprs,
            aggs,
        },
        PhysOp::Sort { input, keys } => PhysOp::Sort {
            input: Box::new(insert_exchanges(*input)),
            keys,
        },
        PhysOp::Limit { input, n } => PhysOp::Limit {
            input: Box::new(insert_exchanges(*input)),
            n,
        },
        leaf @ (PhysOp::SeqScan { .. }
        | PhysOp::IndexScan { .. }
        | PhysOp::Values { .. }
        | PhysOp::Exchange { .. }) => leaf,
    };
    PhysicalPlan {
        op,
        schema,
        est_rows,
        est_cost,
    }
}

fn dedup_names(columns: &mut [aimdb_common::Column]) {
    let mut seen: HashMap<String, usize> = HashMap::new();
    for c in columns.iter_mut() {
        let key = c.name.to_ascii_lowercase();
        let n = seen.entry(key).or_insert(0);
        if *n > 0 {
            c.name = format!("{}_{}", c.name, n);
        }
        *n += 1;
    }
}

/// Collect aggregate calls in an expression.
fn collect_aggs(e: &Expr, out: &mut Vec<(AggFunc, Option<Expr>)>) {
    match e {
        Expr::Function { name, args } => {
            if let Some(f) = AggFunc::parse(name) {
                out.push((f, args.first().cloned()));
            } else {
                for a in args {
                    collect_aggs(a, out);
                }
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out);
            collect_aggs(right, out);
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_aggs(expr, out),
        Expr::Between { expr, lo, hi } => {
            collect_aggs(expr, out);
            collect_aggs(lo, out);
            collect_aggs(hi, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out);
            for a in list {
                collect_aggs(a, out);
            }
        }
        Expr::Like { expr, .. } => collect_aggs(expr, out),
        Expr::Column { .. } | Expr::Literal(_) => {}
    }
}

/// Rewrite a select item over the aggregate output schema: aggregate calls
/// become `__aggN` refs, group-by expressions become `__gN` refs.
fn substitute_agg(
    e: &Expr,
    group_raw: &[Expr],
    group_bound: &[Expr],
    aggs: &[(AggFunc, Option<Expr>)],
    input_schema: &Schema,
) -> Result<Expr> {
    // whole expression equals a raw group-by expression?
    for (i, g) in group_raw.iter().enumerate() {
        if e == g {
            return Ok(Expr::col(&format!("__g{i}")));
        }
    }
    // also match against the bound form (qualified spellings)
    if let Ok(bound) = bind_expr(e, input_schema) {
        for (i, g) in group_bound.iter().enumerate() {
            if &bound == g {
                return Ok(Expr::col(&format!("__g{i}")));
            }
        }
    }
    match e {
        Expr::Function { name, args } => {
            if let Some(f) = AggFunc::parse(name) {
                let bound_arg = match args.first() {
                    Some(a) => Some(bind_expr(a, input_schema)?),
                    None => None,
                };
                let idx = aggs
                    .iter()
                    .position(|(uf, ua)| *uf == f && *ua == bound_arg)
                    .ok_or_else(|| AimError::Plan("aggregate not planned".into()))?;
                Ok(Expr::col(&format!("__agg{idx}")))
            } else {
                Ok(Expr::Function {
                    name: name.clone(),
                    args: args
                        .iter()
                        .map(|a| substitute_agg(a, group_raw, group_bound, aggs, input_schema))
                        .collect::<Result<_>>()?,
                })
            }
        }
        Expr::Binary { left, op, right } => Ok(Expr::Binary {
            left: Box::new(substitute_agg(
                left,
                group_raw,
                group_bound,
                aggs,
                input_schema,
            )?),
            op: *op,
            right: Box::new(substitute_agg(
                right,
                group_raw,
                group_bound,
                aggs,
                input_schema,
            )?),
        }),
        Expr::Unary { op, expr } => Ok(Expr::Unary {
            op: *op,
            expr: Box::new(substitute_agg(
                expr,
                group_raw,
                group_bound,
                aggs,
                input_schema,
            )?),
        }),
        Expr::Literal(_) => Ok(e.clone()),
        other => Err(AimError::Plan(format!(
            "expression {other:?} must appear in GROUP BY or be an aggregate"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimdb_common::{Column, DataType};

    fn alias(name: &str) -> AliasInfo {
        AliasInfo {
            alias: name.to_string(),
            table: name.to_string(),
            schema: Schema::new(vec![Column::new(format!("{name}.k"), DataType::Int)]),
            base_rows: 100.0,
        }
    }

    fn scan_of(a: &AliasInfo) -> PhysicalPlan {
        PhysicalPlan {
            op: PhysOp::Values { rows: vec![] },
            schema: a.schema.clone(),
            est_rows: a.base_rows,
            est_cost: 1.0,
        }
    }

    fn edge(l: usize, r: usize) -> JoinEdge {
        JoinEdge {
            left_alias: l,
            left_col: "k".into(),
            right_alias: r,
            right_col: "k".into(),
        }
    }

    #[test]
    fn dp_join_error_names_disconnected_aliases() {
        let catalog = Catalog::new();
        let stats = HashMap::new();
        let planner = Planner::new(&catalog, &stats, &HistogramEstimator);
        let aliases = vec![alias("a"), alias("b"), alias("c")];
        // alias `c` has no base access path: full mask can never be covered
        let scans = vec![scan_of(&aliases[0]), scan_of(&aliases[1])];
        let err = planner
            .dp_join(&aliases, scans, &[edge(0, 1)])
            .expect_err("full mask is uncoverable");
        let msg = format!("{err}");
        assert!(msg.contains("disconnected"), "got: {msg}");
        assert!(msg.contains("[a, b]"), "connected pair named: {msg}");
        assert!(
            msg.contains("c (no access path)"),
            "missing scan flagged: {msg}"
        );
    }

    #[test]
    fn dp_join_error_groups_join_graph_components() {
        let catalog = Catalog::new();
        let stats = HashMap::new();
        let planner = Planner::new(&catalog, &stats, &HistogramEstimator);
        let aliases = vec![alias("a"), alias("b"), alias("c"), alias("d")];
        // two 2-alias components, and only component {a,b} has scans
        let scans = vec![scan_of(&aliases[0]), scan_of(&aliases[1])];
        let err = planner
            .dp_join(&aliases, scans, &[edge(0, 1), edge(2, 3)])
            .expect_err("full mask is uncoverable");
        let msg = format!("{err}");
        assert!(msg.contains("2 disconnected component(s)"), "got: {msg}");
        assert!(
            msg.contains("[c (no access path), d (no access path)]"),
            "scanless component named: {msg}"
        );
    }

    #[test]
    fn dp_join_covers_disconnected_graph_when_scans_exist() {
        // With every singleton present, the cross-join fallback still
        // covers a disconnected join graph — the error fires only when a
        // base access path is missing.
        let catalog = Catalog::new();
        let stats = HashMap::new();
        let planner = Planner::new(&catalog, &stats, &HistogramEstimator);
        let aliases = vec![alias("a"), alias("b"), alias("c")];
        let scans = aliases.iter().map(scan_of).collect();
        let plan = planner
            .dp_join(&aliases, scans, &[edge(0, 1)])
            .expect("cross-join fallback covers alias c");
        assert_eq!(plan.schema.len(), 3);
    }
}
