//! Static plan verification.
//!
//! `verify` walks a [`PhysicalPlan`] bottom-up and checks it against the
//! catalog *before* execution: every column reference must resolve, every
//! predicate must be boolean-typed, join keys must be comparable, operator
//! schemas must be wired consistently (a `Filter` cannot change its
//! input's schema, a `Project` must emit exactly one column per
//! expression), and aggregate/index arguments must be well-typed. A plan
//! that passes cannot fail at runtime with a name-resolution or
//! type-dispatch error — the class of bug a learned planner (or a planner
//! refactor) is most likely to introduce.
//!
//! ## Type reliability
//!
//! The planner types *computed* output columns nominally as `Float`
//! (projection items, `__g{i}`/`__agg{i}` aggregate columns), so declared
//! operator schemas above a projection or aggregation do not carry true
//! types. The verifier therefore tracks its own per-column type lattice:
//! `Some(t)` where the type is statically known (scan columns, inferred
//! expression results), `None` where it is not. Strict type checks only
//! fire on known types — an unknown type is compatible with everything,
//! which keeps the verifier free of false positives at the cost of some
//! completeness above aggregations.
//!
//! The executor gates every plan through `verify` in debug builds (see
//! `Database::run_plan`), and `scripts/check.sh` sweeps a ~1k-query
//! synthetic corpus through it in release.

use aimdb_common::{AimError, DataType, Result, Schema, Value};
use aimdb_sql::ast::AggFunc;
use aimdb_sql::expr::{BinaryOp, UnaryOp};
use aimdb_sql::Expr;

use crate::catalog::Catalog;
use crate::plan::{qualify_schema, PhysOp, PhysicalPlan};

/// Verify a physical plan against the catalog. Returns the first
/// inconsistency found as an `AimError::Plan` with a precise diagnostic.
pub fn verify(plan: &PhysicalPlan, catalog: &Catalog) -> Result<()> {
    check_node(plan, catalog).map(|_| ())
}

/// Statically-known column types for an operator's output, parallel to
/// its schema. `None` = unknown (nominal typing above aggregations).
type ColTypes = Vec<Option<DataType>>;

fn err(op: &str, detail: impl Into<String>) -> AimError {
    AimError::Plan(format!("verify: {op}: {}", detail.into()))
}

fn check_node(plan: &PhysicalPlan, catalog: &Catalog) -> Result<ColTypes> {
    match &plan.op {
        PhysOp::SeqScan {
            table,
            alias,
            filter,
        } => {
            let types = check_scan_schema("SeqScan", catalog, table, alias, &plan.schema)?;
            if let Some(f) = filter {
                check_predicate("SeqScan filter", f, &plan.schema, &types)?;
            }
            Ok(types)
        }
        PhysOp::IndexScan {
            table,
            alias,
            column,
            lo,
            hi,
            filter,
        } => {
            let types = check_scan_schema("IndexScan", catalog, table, alias, &plan.schema)?;
            let t = catalog.table(table)?;
            let col_idx = t
                .schema
                .index_of(column)
                .map_err(|_| err("IndexScan", format!("no column {column} in table {table}")))?;
            if t.index_on(column).is_none() {
                return Err(err("IndexScan", format!("no index on {table}.{column}")));
            }
            let col_type = t.schema.columns()[col_idx].data_type;
            for (which, bound) in [("lo", lo), ("hi", hi)] {
                if let Some(v) = bound {
                    if !value_matches(v, col_type) {
                        return Err(err(
                            "IndexScan",
                            format!(
                                "{which} bound {v} is incomparable with {table}.{column}: {col_type:?}"
                            ),
                        ));
                    }
                }
            }
            if let Some(f) = filter {
                check_predicate("IndexScan filter", f, &plan.schema, &types)?;
            }
            Ok(types)
        }
        PhysOp::Filter { input, predicate } => {
            let types = check_node(input, catalog)?;
            check_schema_passthrough("Filter", &plan.schema, &input.schema)?;
            check_predicate("Filter", predicate, &input.schema, &types)?;
            Ok(types)
        }
        PhysOp::Project { input, exprs } => {
            let in_types = check_node(input, catalog)?;
            if plan.schema.len() != exprs.len() {
                return Err(err(
                    "Project",
                    format!(
                        "schema has {} column(s) but {} expression(s)",
                        plan.schema.len(),
                        exprs.len()
                    ),
                ));
            }
            exprs
                .iter()
                .map(|e| {
                    let t = infer_expr("Project", e, &input.schema, &in_types)?;
                    check_batch_compile("Project", e, &input.schema)?;
                    Ok(t)
                })
                .collect()
        }
        PhysOp::NestedLoopJoin { left, right, on } => {
            let lt = check_node(left, catalog)?;
            let rt = check_node(right, catalog)?;
            let types = check_join_schema("NestedLoopJoin", plan, left, right, lt, rt)?;
            if let Some(p) = on {
                check_predicate("NestedLoopJoin on", p, &plan.schema, &types)?;
            }
            Ok(types)
        }
        PhysOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let lt = check_node(left, catalog)?;
            let rt = check_node(right, catalog)?;
            let lk = infer_expr("HashJoin left key", left_key, &left.schema, &lt)?;
            let rk = infer_expr("HashJoin right key", right_key, &right.schema, &rt)?;
            check_batch_compile("HashJoin left key", left_key, &left.schema)?;
            check_batch_compile("HashJoin right key", right_key, &right.schema)?;
            if let (Some(a), Some(b)) = (lk, rk) {
                if !comparable(a, b) {
                    return Err(err(
                        "HashJoin",
                        format!(
                            "join keys disagree: {left_key:?} is {a:?} but {right_key:?} is {b:?}"
                        ),
                    ));
                }
            }
            let types = check_join_schema("HashJoin", plan, left, right, lt, rt)?;
            if let Some(p) = residual {
                check_predicate("HashJoin residual", p, &plan.schema, &types)?;
            }
            Ok(types)
        }
        PhysOp::Aggregate {
            input,
            group_exprs,
            aggs,
        } => {
            let in_types = check_node(input, catalog)?;
            let expected = group_exprs.len() + aggs.len();
            if plan.schema.len() != expected {
                return Err(err(
                    "Aggregate",
                    format!(
                        "schema has {} column(s) but {} group(s) + {} aggregate(s)",
                        plan.schema.len(),
                        group_exprs.len(),
                        aggs.len()
                    ),
                ));
            }
            let mut out = Vec::with_capacity(expected);
            for g in group_exprs {
                let t = infer_expr("Aggregate group key", g, &input.schema, &in_types)?;
                check_batch_compile("Aggregate group key", g, &input.schema)?;
                out.push(t);
            }
            for a in aggs {
                let arg_type = match (&a.arg, a.func) {
                    (None, AggFunc::Count) => None,
                    (None, f) => {
                        return Err(err(
                            "Aggregate",
                            format!("{f:?} requires an argument (only COUNT may take *)"),
                        ))
                    }
                    (Some(e), _) => {
                        let t = infer_expr("Aggregate argument", e, &input.schema, &in_types)?;
                        check_batch_compile("Aggregate argument", e, &input.schema)?;
                        t
                    }
                };
                if matches!(a.func, AggFunc::Sum | AggFunc::Avg) && arg_type == Some(DataType::Text)
                {
                    return Err(err(
                        "Aggregate",
                        format!("{:?} over Text argument {:?}", a.func, a.arg),
                    ));
                }
                out.push(match a.func {
                    AggFunc::Count => Some(DataType::Int),
                    AggFunc::Sum | AggFunc::Avg => Some(DataType::Float),
                    AggFunc::Min | AggFunc::Max => arg_type,
                });
            }
            Ok(out)
        }
        PhysOp::Sort { input, keys } => {
            let types = check_node(input, catalog)?;
            check_schema_passthrough("Sort", &plan.schema, &input.schema)?;
            if keys.is_empty() {
                return Err(err("Sort", "no sort keys"));
            }
            for k in keys {
                // every value type is sortable; keys just need to resolve
                infer_expr("Sort key", &k.expr, &input.schema, &types)?;
                check_batch_compile("Sort key", &k.expr, &input.schema)?;
            }
            Ok(types)
        }
        PhysOp::Limit { input, .. } => {
            let types = check_node(input, catalog)?;
            check_schema_passthrough("Limit", &plan.schema, &input.schema)?;
            Ok(types)
        }
        PhysOp::Values { rows } => {
            let declared: ColTypes = plan
                .schema
                .columns()
                .iter()
                .map(|c| Some(c.data_type))
                .collect();
            for (ri, row) in rows.iter().enumerate() {
                if row.len() != plan.schema.len() {
                    return Err(err(
                        "Values",
                        format!(
                            "row {ri} has {} value(s) for {} column(s)",
                            row.len(),
                            plan.schema.len()
                        ),
                    ));
                }
                for (ci, col) in plan.schema.columns().iter().enumerate() {
                    let v = row.get(ci);
                    if !v.is_null() && !value_matches(v, col.data_type) {
                        return Err(err(
                            "Values",
                            format!(
                                "row {ri} column {}: {v} is not {:?}",
                                col.name, col.data_type
                            ),
                        ));
                    }
                }
            }
            Ok(declared)
        }
        PhysOp::Exchange { input } => {
            let types = check_node(input, catalog)?;
            check_schema_passthrough("Exchange", &plan.schema, &input.schema)?;
            check_exchange_region(input)?;
            Ok(types)
        }
    }
}

/// An Exchange must sit over a morsel-parallelizable region: a chain of
/// Filter / Project nodes bottoming out in a SeqScan, with no nested
/// Exchange, no pipeline breaker, and no index scan (whose order comes
/// from the index, not heap pages) inside the region.
fn check_exchange_region(plan: &PhysicalPlan) -> Result<()> {
    match &plan.op {
        PhysOp::SeqScan { .. } => Ok(()),
        PhysOp::Filter { input, .. } | PhysOp::Project { input, .. } => {
            check_exchange_region(input)
        }
        other => Err(err(
            "Exchange",
            format!(
                "region contains a non-parallelizable operator: {}",
                op_label(other)
            ),
        )),
    }
}

fn op_label(op: &PhysOp) -> &'static str {
    crate::analyze::op_name(op)
}

/// A scan's output schema must be the table schema qualified by the alias.
fn check_scan_schema(
    op: &str,
    catalog: &Catalog,
    table: &str,
    alias: &str,
    schema: &Schema,
) -> Result<ColTypes> {
    let t = catalog
        .table(table)
        .map_err(|_| err(op, format!("unknown table {table}")))?;
    let expected = qualify_schema(&t.schema, alias);
    if *schema != expected {
        return Err(err(
            op,
            format!(
                "schema mismatch for {table} as {alias}: plan carries {:?}, catalog says {:?}",
                names(schema),
                names(&expected)
            ),
        ));
    }
    Ok(schema.columns().iter().map(|c| Some(c.data_type)).collect())
}

/// Filter/Sort/Limit must not alter their input schema.
fn check_schema_passthrough(op: &str, schema: &Schema, input: &Schema) -> Result<()> {
    if schema != input {
        return Err(err(
            op,
            format!(
                "output schema {:?} differs from input schema {:?}",
                names(schema),
                names(input)
            ),
        ));
    }
    Ok(())
}

/// Joins concatenate their children's schemas; their column types are the
/// concatenation of the children's type vectors.
fn check_join_schema(
    op: &str,
    plan: &PhysicalPlan,
    left: &PhysicalPlan,
    right: &PhysicalPlan,
    lt: ColTypes,
    rt: ColTypes,
) -> Result<ColTypes> {
    let expected = left.schema.join(&right.schema);
    if plan.schema != expected {
        return Err(err(
            op,
            format!(
                "output schema {:?} is not the concatenation of its inputs {:?}",
                names(&plan.schema),
                names(&expected)
            ),
        ));
    }
    let mut types = lt;
    types.extend(rt);
    Ok(types)
}

/// A predicate expression must type to Bool (or unknown).
fn check_predicate(op: &str, pred: &Expr, schema: &Schema, types: &ColTypes) -> Result<()> {
    // infer first: its diagnostics are richer when a column is unresolved
    let inferred = infer_expr(op, pred, schema, types)?;
    check_batch_compile(op, pred, schema)?;
    match inferred {
        Some(DataType::Bool) | None => Ok(()),
        Some(other) => Err(err(
            op,
            format!("predicate {pred:?} has type {other:?}, expected Bool"),
        )),
    }
}

/// The vectorized executor compiles every expression to positional column
/// kernels against its operator's input schema before running. Run the
/// same compilation here so a plan that passes verification is guaranteed
/// to wire into the batch pipeline too (compile fails exactly when a
/// column reference does not resolve in the input schema).
fn check_batch_compile(op: &str, expr: &Expr, schema: &Schema) -> Result<()> {
    aimdb_sql::vexpr::compile(expr, schema)
        .map(|_| ())
        .map_err(|e| err(op, format!("does not compile for batch execution: {e}")))
}

fn names(schema: &Schema) -> Vec<&str> {
    schema.columns().iter().map(|c| c.name.as_str()).collect()
}

fn numeric(t: DataType) -> bool {
    matches!(t, DataType::Int | DataType::Float)
}

/// Can values of these two types be compared by `Value::sql_cmp` without
/// being constantly NULL? (Numeric types compare cross-type.)
fn comparable(a: DataType, b: DataType) -> bool {
    a == b || (numeric(a) && numeric(b))
}

/// Does a literal value match a column type, up to numeric widening?
/// (The planner stores index bounds as `Float` even over `Int` columns.)
fn value_matches(v: &Value, t: DataType) -> bool {
    match v.data_type() {
        None => true, // NULL matches any column
        Some(vt) => comparable(vt, t),
    }
}

/// Infer the static type of `expr` against an operator's schema and
/// known column types. `Ok(None)` means the type cannot be determined
/// statically (NULL literal or a column of unknown type); errors are
/// genuine plan defects: unresolved columns, wrong arity, or operations
/// guaranteed to fail or degenerate at runtime.
fn infer_expr(
    op: &str,
    expr: &Expr,
    schema: &Schema,
    types: &ColTypes,
) -> Result<Option<DataType>> {
    match expr {
        Expr::Column { qualifier, name } => {
            // mirror the executor's resolution: qualified spelling first,
            // then the bare name
            let full = match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            };
            let idx = schema
                .index_of(&full)
                .or_else(|_| schema.index_of(name))
                .map_err(|_| {
                    err(
                        op,
                        format!("unresolved column {full} (schema: {:?})", names(schema)),
                    )
                })?;
            Ok(types.get(idx).copied().flatten())
        }
        Expr::Literal(v) => Ok(v.data_type()),
        Expr::Binary {
            left,
            op: bop,
            right,
        } => {
            let l = infer_expr(op, left, schema, types)?;
            let r = infer_expr(op, right, schema, types)?;
            infer_binary(op, *bop, l, r, expr)
        }
        Expr::Unary {
            op: uop,
            expr: inner,
        } => {
            let t = infer_expr(op, inner, schema, types)?;
            match (uop, t) {
                (UnaryOp::Not, Some(DataType::Bool) | None) => Ok(Some(DataType::Bool)),
                (UnaryOp::Not, Some(other)) => {
                    Err(err(op, format!("NOT applied to {other:?} in {expr:?}")))
                }
                (UnaryOp::Neg, Some(t @ (DataType::Int | DataType::Float))) => Ok(Some(t)),
                (UnaryOp::Neg, None) => Ok(None),
                (UnaryOp::Neg, Some(other)) => {
                    Err(err(op, format!("negation of {other:?} in {expr:?}")))
                }
            }
        }
        Expr::IsNull { expr: inner, .. } => {
            infer_expr(op, inner, schema, types)?;
            Ok(Some(DataType::Bool))
        }
        Expr::Between { expr: v, lo, hi } => {
            let vt = infer_expr(op, v, schema, types)?;
            for bound in [lo, hi] {
                let bt = infer_expr(op, bound, schema, types)?;
                if let (Some(a), Some(b)) = (vt, bt) {
                    if !comparable(a, b) {
                        return Err(err(
                            op,
                            format!("BETWEEN bound {bound:?} ({b:?}) incomparable with {a:?}"),
                        ));
                    }
                }
            }
            Ok(Some(DataType::Bool))
        }
        Expr::InList { expr: v, list, .. } => {
            let vt = infer_expr(op, v, schema, types)?;
            for item in list {
                let it = infer_expr(op, item, schema, types)?;
                if let (Some(a), Some(b)) = (vt, it) {
                    if !comparable(a, b) {
                        return Err(err(
                            op,
                            format!("IN list item {item:?} ({b:?}) incomparable with {a:?}"),
                        ));
                    }
                }
            }
            Ok(Some(DataType::Bool))
        }
        Expr::Like { expr: inner, .. } => match infer_expr(op, inner, schema, types)? {
            Some(DataType::Text) | None => Ok(Some(DataType::Bool)),
            Some(other) => Err(err(op, format!("LIKE applied to {other:?} in {expr:?}"))),
        },
        Expr::Function { name, args } => infer_function(op, name, args, schema, types),
    }
}

fn infer_binary(
    op: &str,
    bop: BinaryOp,
    l: Option<DataType>,
    r: Option<DataType>,
    expr: &Expr,
) -> Result<Option<DataType>> {
    use BinaryOp::*;
    match bop {
        And | Or => {
            for t in [l, r].into_iter().flatten() {
                if t != DataType::Bool {
                    return Err(err(
                        op,
                        format!("{bop:?} operand has type {t:?} in {expr:?}"),
                    ));
                }
            }
            Ok(Some(DataType::Bool))
        }
        Eq | Neq | Lt | Lte | Gt | Gte => {
            if let (Some(a), Some(b)) = (l, r) {
                if !comparable(a, b) {
                    return Err(err(
                        op,
                        format!("comparison of {a:?} with {b:?} is always NULL in {expr:?}"),
                    ));
                }
            }
            Ok(Some(DataType::Bool))
        }
        Add | Sub | Mul | Div | Mod => {
            for side in [l, r] {
                if side == Some(DataType::Text) {
                    return Err(err(op, format!("arithmetic on Text in {expr:?}")));
                }
            }
            match (l, r) {
                // Int op Int stays Int; Bool coerces to numeric (as_f64)
                (Some(DataType::Int), Some(DataType::Int)) => Ok(Some(DataType::Int)),
                (Some(_), Some(_)) => Ok(Some(DataType::Float)),
                _ => Ok(None),
            }
        }
    }
}

fn infer_function(
    op: &str,
    name: &str,
    args: &[Expr],
    schema: &Schema,
    types: &ColTypes,
) -> Result<Option<DataType>> {
    let arg_types: Vec<Option<DataType>> = args
        .iter()
        .map(|a| infer_expr(op, a, schema, types))
        .collect::<Result<_>>()?;
    let argc = |n: usize| -> Result<()> {
        if args.len() != n {
            Err(err(
                op,
                format!("{name} expects {n} argument(s), got {}", args.len()),
            ))
        } else {
            Ok(())
        }
    };
    let numeric_arg = |i: usize| -> Result<()> {
        if arg_types[i] == Some(DataType::Text) {
            Err(err(op, format!("{name} applied to Text argument")))
        } else {
            Ok(())
        }
    };
    let text_arg = |i: usize| -> Result<()> {
        match arg_types[i] {
            Some(DataType::Text) | None => Ok(()),
            Some(other) => Err(err(op, format!("{name} applied to {other:?} argument"))),
        }
    };
    match name.to_ascii_uppercase().as_str() {
        "ABS" => {
            argc(1)?;
            numeric_arg(0)?;
            Ok(match arg_types[0] {
                Some(DataType::Int) => Some(DataType::Int),
                Some(_) => Some(DataType::Float),
                None => None,
            })
        }
        "FLOOR" | "CEIL" | "ROUND" | "SQRT" | "LN" | "EXP" => {
            argc(1)?;
            numeric_arg(0)?;
            Ok(Some(DataType::Float))
        }
        "LOWER" | "UPPER" => {
            argc(1)?;
            text_arg(0)?;
            Ok(Some(DataType::Text))
        }
        "LENGTH" => {
            argc(1)?;
            text_arg(0)?;
            Ok(Some(DataType::Int))
        }
        "PREDICT" => {
            if args.is_empty() {
                return Err(err(op, "PREDICT needs a model name"));
            }
            text_arg(0)?;
            Ok(Some(DataType::Float))
        }
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => Err(err(
            op,
            format!("aggregate {name} in scalar context (planner must hoist it)"),
        )),
        other => Err(err(op, format!("unknown scalar function {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimdb_common::Column;

    fn schema(pairs: &[(&str, DataType)]) -> (Schema, ColTypes) {
        let s = Schema::new(pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect());
        let types = s.columns().iter().map(|c| Some(c.data_type)).collect();
        (s, types)
    }

    #[test]
    fn infer_basic_types() {
        let (s, t) = schema(&[("a.x", DataType::Int), ("a.name", DataType::Text)]);
        let e = Expr::binary(Expr::col("a.x"), BinaryOp::Add, Expr::lit(1i64));
        assert_eq!(infer_expr("t", &e, &s, &t).unwrap(), Some(DataType::Int));
        let e = Expr::binary(Expr::col("a.x"), BinaryOp::Lt, Expr::lit(2.5));
        assert_eq!(infer_expr("t", &e, &s, &t).unwrap(), Some(DataType::Bool));
    }

    #[test]
    fn rejects_text_arithmetic_and_incomparable() {
        let (s, t) = schema(&[("a.x", DataType::Int), ("a.name", DataType::Text)]);
        let e = Expr::binary(Expr::col("a.name"), BinaryOp::Add, Expr::lit(1i64));
        assert!(infer_expr("t", &e, &s, &t).is_err());
        let e = Expr::binary(Expr::col("a.name"), BinaryOp::Eq, Expr::lit(1i64));
        assert!(infer_expr("t", &e, &s, &t).is_err());
    }

    #[test]
    fn unknown_types_are_permissive() {
        let (s, _) = schema(&[("c0", DataType::Float)]);
        let t: ColTypes = vec![None];
        let e = Expr::binary(Expr::col("c0"), BinaryOp::Eq, Expr::lit("x"));
        assert_eq!(infer_expr("t", &e, &s, &t).unwrap(), Some(DataType::Bool));
    }
}
