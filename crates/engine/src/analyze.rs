//! `EXPLAIN ANALYZE`: render a physical plan annotated with the actual
//! rows / batches / wall time / cost units each operator produced,
//! next to the optimizer's estimates.
//!
//! The estimate-vs-actual gap per node is surfaced as `QEvalError` — the
//! Q-error `max(est, actual) / min(est, actual)` (both clamped to ≥ 1) —
//! which is exactly the training signal learned cardinality estimation
//! (E3) consumes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use aimdb_common::WaitSet;
use aimdb_trace::OpProfile;

use crate::exec::{OpKey, OpStats};
use crate::plan::{PhysOp, PhysicalPlan};

/// Estimates, actuals and the Q-error for one plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeActuals {
    /// Preorder plan-node id (root = 0), matching `EXPLAIN` line order.
    pub node: usize,
    /// Preorder id of the parent node; `None` for the root.
    pub parent: Option<usize>,
    /// Executor operator name (e.g. `hash_join`).
    pub name: &'static str,
    pub est_rows: f64,
    pub est_cost: f64,
    pub rows: u64,
    pub batches: u64,
    /// Inclusive wall time spent in this node's subtree.
    pub ns: u64,
    /// Inclusive cost units charged in this node's subtree.
    pub cost_units: f64,
    /// Inclusive blocked time by wait class in this node's subtree;
    /// `ns - wait.total_ns()` approximates on-cpu time.
    pub wait: WaitSet,
    /// `QEvalError`: Q-error between estimated and actual cardinality.
    pub q_error: f64,
}

/// The result of `EXPLAIN ANALYZE`: the annotated plan text plus the
/// per-node actuals in preorder.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeReport {
    pub text: String,
    pub nodes: Vec<NodeActuals>,
    /// Rows the query returned.
    pub result_rows: u64,
    /// Total cost units charged by the execution.
    pub total_cost: f64,
}

impl AnalyzeReport {
    /// The root node's actuals.
    pub fn root(&self) -> Option<&NodeActuals> {
        self.nodes.first()
    }

    /// Worst per-node cardinality Q-error in the plan.
    pub fn max_q_error(&self) -> f64 {
        self.nodes.iter().map(|n| n.q_error).fold(1.0, f64::max)
    }
}

/// Q-error between an estimated and an actual cardinality, both clamped
/// to ≥ 1 so empty results don't divide by zero: `max(e,a) / min(e,a)`.
pub fn q_error(est: f64, actual: f64) -> f64 {
    let e = est.max(1.0);
    let a = actual.max(1.0);
    (e / a).max(a / e)
}

/// Executor operator name for a plan node — must match the names the
/// vectorized executor records (`exec_batch::build`); checked by the
/// `explain_analyze_names_match_executor` test in `db.rs`.
pub(crate) fn op_name(op: &PhysOp) -> &'static str {
    match op {
        PhysOp::SeqScan { .. } => "seq_scan",
        PhysOp::IndexScan { .. } => "index_scan",
        PhysOp::Filter { .. } => "filter",
        PhysOp::Project { .. } => "project",
        PhysOp::NestedLoopJoin { .. } => "nested_loop_join",
        PhysOp::HashJoin { .. } => "hash_join",
        PhysOp::Aggregate { .. } => "aggregate",
        PhysOp::Sort { .. } => "sort",
        PhysOp::Limit { .. } => "limit",
        PhysOp::Values { .. } => "values",
        PhysOp::Exchange { .. } => "exchange",
    }
}

/// Per-node actuals in preorder, from the executor's (operator, node,
/// worker) keyed counters. A node run by several morsel workers reports
/// the *sum* across workers; nodes the executor never pulled report
/// zeros.
pub(crate) fn node_actuals(plan: &PhysicalPlan, ops: &[(OpKey, OpStats)]) -> Vec<NodeActuals> {
    let mut by_node: BTreeMap<usize, OpStats> = BTreeMap::new();
    for &((_, node, _worker), st) in ops {
        let e = by_node.entry(node).or_default();
        e.rows += st.rows;
        e.batches += st.batches;
        e.ns += st.ns;
        e.cost_units += st.cost_units;
        e.wait.merge(&st.wait);
    }
    let mut out = Vec::with_capacity(plan.node_count());
    walk(plan, None, &mut 0, &by_node, &mut out);
    out
}

fn walk(
    plan: &PhysicalPlan,
    parent: Option<usize>,
    next_id: &mut usize,
    by_node: &BTreeMap<usize, OpStats>,
    out: &mut Vec<NodeActuals>,
) {
    let node = *next_id;
    *next_id += 1;
    let st = by_node.get(&node).copied().unwrap_or_default();
    out.push(NodeActuals {
        node,
        parent,
        name: op_name(&plan.op),
        est_rows: plan.est_rows,
        est_cost: plan.est_cost,
        rows: st.rows,
        batches: st.batches,
        ns: st.ns,
        cost_units: st.cost_units,
        wait: st.wait,
        q_error: q_error(plan.est_rows, st.rows as f64),
    });
    for child in plan.children() {
        walk(child, Some(node), next_id, by_node, out);
    }
}

/// The operator profile attached to query traces: same preorder walk,
/// without estimates.
pub(crate) fn op_profiles(plan: &PhysicalPlan, ops: &[(OpKey, OpStats)]) -> Vec<OpProfile> {
    node_actuals(plan, ops)
        .into_iter()
        .map(|n| OpProfile {
            node: n.node,
            parent: n.parent,
            name: n.name,
            rows: n.rows,
            batches: n.batches,
            ns: n.ns,
            cost_units: n.cost_units,
            wait: n.wait,
        })
        .collect()
}

/// Assemble the report: annotated plan tree + per-node actuals.
pub(crate) fn build_report(
    plan: &PhysicalPlan,
    ops: &[(OpKey, OpStats)],
    result_rows: u64,
    total_cost: f64,
) -> AnalyzeReport {
    let nodes = node_actuals(plan, ops);
    let mut text = String::new();
    render(plan, &nodes, &mut 0, 0, &mut text);
    let max_q = nodes.iter().map(|n| n.q_error).fold(1.0, f64::max);
    let _ = writeln!(
        text,
        "Total: rows={result_rows} cost={total_cost:.1} max QEvalError={max_q:.2}"
    );
    AnalyzeReport {
        text,
        nodes,
        result_rows,
        total_cost,
    }
}

fn render(
    plan: &PhysicalPlan,
    nodes: &[NodeActuals],
    next_id: &mut usize,
    depth: usize,
    out: &mut String,
) {
    let node = *next_id;
    *next_id += 1;
    let pad = "  ".repeat(depth);
    let line = plan.describe();
    if let Some(n) = nodes.get(node) {
        let ms = n.ns as f64 / 1e6;
        let _ = write!(
            out,
            "{pad}{line}  (rows≈{:.0} cost≈{:.1}) (actual rows={} batches={} time={ms:.3}ms cost={:.1}) QEvalError={:.2}",
            n.est_rows, n.est_cost, n.rows, n.batches, n.cost_units, n.q_error
        );
        // cpu-vs-wait split: only rendered when the node actually blocked
        if !n.wait.is_zero() {
            let cpu_ms = n.ns.saturating_sub(n.wait.total_ns()) as f64 / 1e6;
            let _ = write!(out, " cpu={cpu_ms:.3}ms waits[");
            for (i, (class, ns, count)) in n.wait.entries().into_iter().enumerate() {
                if i > 0 {
                    let _ = write!(out, " ");
                }
                let _ = write!(out, "{class}={:.3}ms/{count}", ns as f64 / 1e6);
            }
            let _ = write!(out, "]");
        }
        let _ = writeln!(out);
    } else {
        let _ = writeln!(
            out,
            "{pad}{line}  (rows≈{:.0} cost≈{:.1})",
            plan.est_rows, plan.est_cost
        );
    }
    for child in plan.children() {
        render(child, nodes, next_id, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        // both sides clamp to >= 1: empty estimates/results are finite
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(0.0, 5.0), 5.0);
        assert_eq!(q_error(5.0, 0.0), 5.0);
    }
}
