//! # aimdb-engine
//!
//! The relational database kernel every AI4DB technique in this workspace
//! optimizes: a catalog over slotted-page heap files, secondary B+tree
//! indexes, equi-depth-histogram statistics, a cost-based optimizer with
//! dynamic-programming join ordering, an operator-at-a-time executor with a
//! per-operator metrics tap, WAL-backed transactions, and a live-tunable
//! knob surface.
//!
//! Design hooks for the learned components:
//! - [`CardEstimator`](optimizer::CardEstimator) lets a learned
//!   cardinality model replace the histogram estimator (E5/E7);
//! - hypothetical indexes in [`optimizer::what_if_cost`] support index
//!   advisors without building anything (E2);
//! - [`Knobs`](knobs::Knobs) exposes the tuning space (E1);
//! - [`KpiSnapshot`](metrics::KpiSnapshot) is the monitoring surface
//!   (E11/E12), extended with histogram quantiles from the
//!   [`aimdb_trace`] registry;
//! - [`Database::tracer`](db::Database) streams completed
//!   [`QueryTrace`](aimdb_trace::QueryTrace)s (parse → verify →
//!   optimize → execute spans plus per-operator profiles) to learners,
//!   and [`Database::explain_analyze`](db::Database) surfaces the
//!   estimate-vs-actual `QEvalError` signal per plan node (E3);
//! - [`ModelHook`](db::ModelHook) lets the DB4AI crate plug model
//!   training/inference into `CREATE MODEL` / `PREDICT` statements.

pub mod analyze;
pub mod catalog;
pub mod db;
pub mod exec;
pub mod exec_batch;
pub mod fingerprint;
pub mod knobs;
pub mod metrics;
pub mod mvcc;
pub mod optimizer;
pub mod plan;
pub mod stats;
pub mod txn;
pub mod verify;

pub use aimdb_trace as trace;

pub use analyze::{q_error, AnalyzeReport, NodeActuals};
pub use catalog::{Catalog, Table};
pub use db::{Database, ModelHook, QueryResult, RecoveryReport, TxnHandle};
pub use exec_batch::{execute_batched, execute_batched_parallel};
pub use fingerprint::{fingerprint, normalize, StatementStat, StatementStore};
pub use knobs::Knobs;
pub use metrics::KpiSnapshot;
pub use mvcc::{CommitTs, Snapshot};
pub use optimizer::CardEstimator;
pub use plan::PhysicalPlan;
