//! Operator-at-a-time executor.
//!
//! Each operator materializes its output and charges *actual* cost units
//! (proportional to rows touched and I/O performed) to the execution
//! context. Those measured units are the "latency" feedback signal the
//! learned optimizer (E7) and the performance predictors (E12) train on —
//! the analogue of NEO's execution-latency feedback loop.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};

use aimdb_common::{AimError, Clock, Result, Row, Schema, Value, WaitSet};
use aimdb_sql::ast::AggFunc;
use aimdb_sql::expr::ScalarFns;
use aimdb_sql::logical::AggExpr;

use crate::catalog::Catalog;
use crate::mvcc::Snapshot;
use crate::plan::{PhysOp, PhysicalPlan};

/// Per-operator execution counters accumulated by the vectorized
/// executor: output rows, non-empty output batches, wall time and cost
/// units spent in the operator subtree (both inclusive of children; ns
/// is 0 when the context has no clock).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpStats {
    pub rows: u64,
    pub batches: u64,
    pub ns: u64,
    pub cost_units: f64,
    /// Blocked time by wait class incurred while pulling from this
    /// operator's subtree (inclusive of children, like `ns`).
    pub wait: WaitSet,
}

/// Key for per-operator counters: operator name, the preorder plan-node
/// id (root = 0, matching `EXPLAIN` line order), and the worker id that
/// did the work (0 = the main thread / serial pipeline; morsel workers
/// are numbered from 1). Two filters in one plan — or two workers
/// running the same plan node — keep separate counters.
pub type OpKey = (&'static str, usize, usize);

/// The worker id the serial pipeline (and every main-thread operator)
/// reports under.
pub const MAIN_WORKER: usize = 0;

/// Wall-clock footprint of one morsel worker inside a parallel region:
/// when it started and stopped (context clock, ns), and how much of that
/// window it spent processing morsels (`busy_ns`) rather than waiting on
/// the dispenser. Feeds the per-worker trace spans and the
/// `worker_busy_ratio` gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSpan {
    /// 1-based worker id (matching the `OpKey` worker dimension).
    pub worker: usize,
    pub start_ns: u64,
    pub end_ns: u64,
    pub busy_ns: u64,
}

/// Execution context: catalog access, scalar-function registry, and the
/// actual-cost accumulator.
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    pub fns: &'a dyn ScalarFns,
    cost_units: Cell<f64>,
    clock: Option<&'a dyn Clock>,
    /// MVCC read view for scans: `Some` inside a transaction (snapshot
    /// isolation), `None` for latest-committed reads.
    snapshot: Cell<Option<Snapshot>>,
    op_stats: RefCell<BTreeMap<OpKey, OpStats>>,
    worker_spans: RefCell<Vec<WorkerSpan>>,
}

impl<'a> ExecContext<'a> {
    pub fn new(catalog: &'a Catalog, fns: &'a dyn ScalarFns) -> Self {
        ExecContext {
            catalog,
            fns,
            cost_units: Cell::new(0.0),
            clock: None,
            snapshot: Cell::new(None),
            op_stats: RefCell::new(BTreeMap::new()),
            worker_spans: RefCell::new(Vec::new()),
        }
    }

    /// Pin the MVCC snapshot every scan in this context reads through.
    pub fn set_snapshot(&self, snap: Option<Snapshot>) {
        self.snapshot.set(snap);
    }

    /// The context's MVCC read view, if one is pinned.
    pub fn snapshot(&self) -> Option<Snapshot> {
        self.snapshot.get()
    }

    /// A context that also timestamps per-operator work (used by the
    /// vectorized executor to fill the engine's operator metrics).
    pub fn with_clock(catalog: &'a Catalog, fns: &'a dyn ScalarFns, clock: &'a dyn Clock) -> Self {
        ExecContext {
            clock: Some(clock),
            ..Self::new(catalog, fns)
        }
    }

    pub(crate) fn charge(&self, units: f64) {
        self.cost_units.set(self.cost_units.get() + units);
    }

    /// Actual cost units charged so far (the measured "latency").
    pub fn cost_units(&self) -> f64 {
        self.cost_units.get()
    }

    /// Current clock reading in nanoseconds (0 without a clock).
    pub(crate) fn clock_ns(&self) -> u64 {
        match self.clock {
            Some(c) => (c.now_secs() * 1e9) as u64,
            None => 0,
        }
    }

    /// The injected clock, if any. `Clock` is `Send + Sync`, so the
    /// reference can be shared with scoped morsel workers.
    pub(crate) fn clock(&self) -> Option<&'a dyn Clock> {
        self.clock
    }

    /// Fold one operator observation into the per-operator counters,
    /// keyed by (operator name, plan-node id, worker id). Also merges
    /// worker-accumulated bundles on the main thread after a parallel
    /// region's workers joined — the merge order (and thus the counter
    /// state) stays deterministic.
    pub(crate) fn record_op_stats(&self, key: OpKey, st: OpStats) {
        let mut stats = self.op_stats.borrow_mut();
        let e = stats.entry(key).or_default();
        e.rows += st.rows;
        e.batches += st.batches;
        e.ns += st.ns;
        e.cost_units += st.cost_units;
        e.wait.merge(&st.wait);
    }

    /// Record one morsel worker's wall-clock footprint.
    pub(crate) fn note_worker_span(&self, span: WorkerSpan) {
        self.worker_spans.borrow_mut().push(span);
    }

    /// Drain the per-operator counters (the engine flushes them into
    /// [`crate::metrics::Metrics`] after each query).
    pub fn take_op_stats(&self) -> Vec<(OpKey, OpStats)> {
        std::mem::take(&mut *self.op_stats.borrow_mut())
            .into_iter()
            .collect()
    }

    /// Drain the per-worker spans recorded by parallel regions (the
    /// engine turns them into child trace spans and the busy gauge).
    pub fn take_worker_spans(&self) -> Vec<WorkerSpan> {
        std::mem::take(&mut *self.worker_spans.borrow_mut())
    }
}

/// Execute a physical plan to completion.
pub fn execute(plan: &PhysicalPlan, ctx: &ExecContext) -> Result<Vec<Row>> {
    match &plan.op {
        PhysOp::SeqScan { table, filter, .. } => {
            let t = ctx.catalog.table(table)?;
            let rows = t.scan_visible(ctx.snapshot())?;
            ctx.charge(rows.len() as f64 * 0.01 + (rows.len() as f64 / 64.0).ceil());
            let out: Vec<Row> = match filter {
                Some(f) => rows
                    .into_iter()
                    .map(|(_, r)| r)
                    .filter_map(|r| match f.eval_predicate(&plan.schema, &r, ctx.fns) {
                        Ok(true) => Some(Ok(r)),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    })
                    .collect::<Result<_>>()?,
                None => rows.into_iter().map(|(_, r)| r).collect(),
            };
            Ok(out)
        }
        PhysOp::IndexScan {
            table,
            column,
            lo,
            hi,
            filter,
            ..
        } => {
            let t = ctx.catalog.table(table)?;
            let idx = t.index_on(column).ok_or_else(|| {
                AimError::Execution(format!("planned index on {table}.{column} missing"))
            })?;
            let mut rids = match (lo, hi) {
                (Some(l), Some(h)) if l == h => idx.lookup(l),
                (l, h) => {
                    let lo_v = l.clone().unwrap_or(Value::Float(f64::NEG_INFINITY));
                    let hi_v = h.clone().unwrap_or(Value::Float(f64::INFINITY));
                    idx.range(&lo_v, &hi_v)
                }
            };
            let vis = t.visibility(ctx.snapshot())?;
            rids.retain(|r| vis.allows(*r));
            ctx.charge(3.0 + rids.len() as f64 * 0.06);
            let mut out = Vec::with_capacity(rids.len());
            for rid in rids {
                if let Some(row) = t.heap.get(rid)? {
                    let keep = match filter {
                        Some(f) => f.eval_predicate(&plan.schema, &row, ctx.fns)?,
                        None => true,
                    };
                    if keep {
                        out.push(row);
                    }
                }
            }
            Ok(out)
        }
        PhysOp::Filter { input, predicate } => {
            let rows = execute(input, ctx)?;
            ctx.charge(rows.len() as f64 * 0.005);
            rows.into_iter()
                .filter_map(
                    |r| match predicate.eval_predicate(&input.schema, &r, ctx.fns) {
                        Ok(true) => Some(Ok(r)),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    },
                )
                .collect()
        }
        PhysOp::Project { input, exprs } => {
            let rows = execute(input, ctx)?;
            ctx.charge(rows.len() as f64 * 0.005 * exprs.len().max(1) as f64);
            rows.iter()
                .map(|r| {
                    let vals: Vec<Value> = exprs
                        .iter()
                        .map(|e| e.eval(&input.schema, r, ctx.fns))
                        .collect::<Result<_>>()?;
                    Ok(Row::new(vals))
                })
                .collect()
        }
        PhysOp::NestedLoopJoin { left, right, on } => {
            let lrows = execute(left, ctx)?;
            let rrows = execute(right, ctx)?;
            ctx.charge(lrows.len() as f64 * rrows.len() as f64 * 0.01);
            let mut out = Vec::new();
            for l in &lrows {
                for r in &rrows {
                    let joined = l.join(r);
                    let keep = match on {
                        Some(p) => p.eval_predicate(&plan.schema, &joined, ctx.fns)?,
                        None => true,
                    };
                    if keep {
                        out.push(joined);
                    }
                }
            }
            Ok(out)
        }
        PhysOp::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => {
            let lrows = execute(left, ctx)?;
            let rrows = execute(right, ctx)?;
            ctx.charge((lrows.len() + rrows.len()) as f64 * 0.015);
            // build on the smaller side
            let (
                build_rows,
                build_schema,
                build_key,
                probe_rows,
                probe_schema,
                probe_key,
                build_is_left,
            ) = if lrows.len() <= rrows.len() {
                (
                    &lrows,
                    &left.schema,
                    left_key,
                    &rrows,
                    &right.schema,
                    right_key,
                    true,
                )
            } else {
                (
                    &rrows,
                    &right.schema,
                    right_key,
                    &lrows,
                    &left.schema,
                    left_key,
                    false,
                )
            };
            let mut table: HashMap<Value, Vec<&Row>> = HashMap::new();
            for r in build_rows {
                let k = build_key.eval(build_schema, r, ctx.fns)?;
                if k.is_null() {
                    continue; // NULL never joins
                }
                table.entry(k).or_default().push(r);
            }
            let mut out = Vec::new();
            for p in probe_rows {
                let k = probe_key.eval(probe_schema, p, ctx.fns)?;
                if k.is_null() {
                    continue;
                }
                if let Some(matches) = table.get(&k) {
                    for b in matches {
                        let joined = if build_is_left { b.join(p) } else { p.join(b) };
                        let keep = match residual {
                            Some(r) => r.eval_predicate(&plan.schema, &joined, ctx.fns)?,
                            None => true,
                        };
                        if keep {
                            ctx.charge(0.01);
                            out.push(joined);
                        }
                    }
                }
            }
            Ok(out)
        }
        PhysOp::Aggregate {
            input,
            group_exprs,
            aggs,
        } => {
            let rows = execute(input, ctx)?;
            ctx.charge(rows.len() as f64 * 0.02);
            aggregate(&rows, &input.schema, group_exprs, aggs, ctx)
        }
        PhysOp::Sort { input, keys } => {
            let mut rows = execute(input, ctx)?;
            let n = rows.len() as f64;
            ctx.charge(n * n.max(2.0).log2() * 0.005);
            // precompute sort keys
            let mut keyed: Vec<(Vec<Value>, Row)> = rows
                .drain(..)
                .map(|r| {
                    let ks: Result<Vec<Value>> = keys
                        .iter()
                        .map(|k| k.expr.eval(&input.schema, &r, ctx.fns))
                        .collect();
                    Ok((ks?, r))
                })
                .collect::<Result<_>>()?;
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, k) in keys.iter().enumerate() {
                    let ord = a[i].cmp(&b[i]);
                    let ord = if k.desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(keyed.into_iter().map(|(_, r)| r).collect())
        }
        PhysOp::Limit { input, n } => {
            let mut rows = execute(input, ctx)?;
            rows.truncate(*n);
            Ok(rows)
        }
        PhysOp::Values { rows } => Ok(rows.clone()),
        // a pure passthrough for the row executor: parallelism is a
        // batch-pipeline concern, and the region below emits the same
        // rows in the same order either way
        PhysOp::Exchange { input } => execute(input, ctx),
    }
}

#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(u64),
    Sum(f64),
    /// (sum, count) for AVG
    Avg(f64, u64),
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub(crate) fn new(f: AggFunc) -> AggState {
        match f {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum(0.0),
            AggFunc::Avg => AggState::Avg(0.0, 0),
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    pub(crate) fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                // COUNT(*) counts rows (v=None); COUNT(x) skips NULLs
                match v {
                    Some(val) if val.is_null() => {}
                    _ => *n += 1,
                }
            }
            AggState::Sum(s) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *s += val.as_f64()?;
                    }
                }
            }
            AggState::Avg(s, n) => {
                if let Some(val) = v {
                    if !val.is_null() {
                        *s += val.as_f64()?;
                        *n += 1;
                    }
                }
            }
            AggState::Min(m) => {
                if let Some(val) = v {
                    if !val.is_null() && m.as_ref().is_none_or(|cur| val < cur) {
                        *m = Some(val.clone());
                    }
                }
            }
            AggState::Max(m) => {
                if let Some(val) = v {
                    if !val.is_null() && m.as_ref().is_none_or(|cur| val > cur) {
                        *m = Some(val.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Fold a partial state — computed over a *later* contiguous run of
    /// rows — into `self`. Exact for COUNT / MIN / MAX (order-free) and
    /// for SUM / AVG whose partial sums are exactly representable (Int
    /// arguments below 2^53); the parallel executor only partial-
    /// aggregates in those cases, feeding everything else through the
    /// serial fold so float results stay bit-identical.
    pub(crate) fn merge(&mut self, other: AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::Sum(a), AggState::Sum(b)) => *a += b,
            (AggState::Avg(s, n), AggState::Avg(s2, n2)) => {
                *s += s2;
                *n += n2;
            }
            (AggState::Min(m), AggState::Min(o)) => {
                // strict `<` keeps the earlier-seen value on ties, like
                // the serial fold (merges run in morsel order)
                if let Some(v) = o {
                    if m.as_ref().is_none_or(|cur| v < *cur) {
                        *m = Some(v);
                    }
                }
            }
            (AggState::Max(m), AggState::Max(o)) => {
                if let Some(v) = o {
                    if m.as_ref().is_none_or(|cur| v > *cur) {
                        *m = Some(v);
                    }
                }
            }
            _ => {
                return Err(AimError::Execution(
                    "mismatched aggregate states in partial-aggregate merge".into(),
                ))
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n as i64),
            AggState::Sum(s) => Value::Float(s),
            AggState::Avg(s, n) => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(s / n as f64)
                }
            }
            AggState::Min(m) => m.unwrap_or(Value::Null),
            AggState::Max(m) => m.unwrap_or(Value::Null),
        }
    }
}

fn aggregate(
    rows: &[Row],
    schema: &Schema,
    group_exprs: &[aimdb_sql::Expr],
    aggs: &[AggExpr],
    ctx: &ExecContext,
) -> Result<Vec<Row>> {
    let mut groups: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new(); // first-seen group order
    for r in rows {
        let key: Vec<Value> = group_exprs
            .iter()
            .map(|g| g.eval(schema, r, ctx.fns))
            .collect::<Result<_>>()?;
        let entry = match groups.get_mut(&key) {
            Some(e) => e,
            None => {
                order.push(key.clone());
                groups
                    .entry(key.clone())
                    .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect())
            }
        };
        for (st, a) in entry.iter_mut().zip(aggs) {
            let v = match &a.arg {
                Some(e) => Some(e.eval(schema, r, ctx.fns)?),
                None => None,
            };
            st.update(v.as_ref())?;
        }
    }
    // global aggregate over zero rows still yields one row
    if groups.is_empty() && group_exprs.is_empty() {
        let states: Vec<AggState> = aggs.iter().map(|a| AggState::new(a.func)).collect();
        let vals: Vec<Value> = states.into_iter().map(AggState::finish).collect();
        return Ok(vec![Row::new(vals)]);
    }
    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let states = groups
            .remove(&key)
            .ok_or_else(|| AimError::Execution("group key vanished during aggregation".into()))?;
        let mut vals = key;
        vals.extend(states.into_iter().map(AggState::finish));
        out.push(Row::new(vals));
    }
    Ok(out)
}
