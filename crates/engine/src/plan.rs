//! Physical plans and the name binder.
//!
//! Operator output schemas carry *qualified* column names (`alias.col`)
//! below the final projection; the binder rewrites every column reference
//! in every expression to the exact schema spelling so the executor does
//! plain positional lookups at runtime.

use std::fmt;

use aimdb_common::{AimError, Column, Result, Row, Schema};
use aimdb_sql::ast::OrderKey;
use aimdb_sql::logical::AggExpr;
use aimdb_sql::Expr;

/// A physical plan node with its estimated cardinality and cost.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    pub op: PhysOp,
    /// Output schema (qualified names below the final project).
    pub schema: Schema,
    pub est_rows: f64,
    pub est_cost: f64,
}

/// Physical operators.
#[derive(Debug, Clone)]
pub enum PhysOp {
    /// Full-table scan with an optional pushed-down predicate.
    SeqScan {
        table: String,
        alias: String,
        filter: Option<Expr>,
    },
    /// B+tree index scan: equality or inclusive range on one column, plus
    /// an optional residual predicate.
    IndexScan {
        table: String,
        alias: String,
        column: String,
        lo: Option<aimdb_common::Value>,
        hi: Option<aimdb_common::Value>,
        filter: Option<Expr>,
    },
    Filter {
        input: Box<PhysicalPlan>,
        predicate: Expr,
    },
    Project {
        input: Box<PhysicalPlan>,
        exprs: Vec<Expr>,
    },
    NestedLoopJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        on: Option<Expr>,
    },
    HashJoin {
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_key: Expr,
        right_key: Expr,
        residual: Option<Expr>,
    },
    Aggregate {
        input: Box<PhysicalPlan>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggExpr>,
    },
    Sort {
        input: Box<PhysicalPlan>,
        keys: Vec<OrderKey>,
    },
    Limit {
        input: Box<PhysicalPlan>,
        n: usize,
    },
    /// Pre-materialized literal rows.
    Values {
        rows: Vec<Row>,
    },
    /// Parallelism boundary: the subtree below (a scan → filter →
    /// project region) may be executed by a pool of morsel-driven
    /// workers whose outputs are merged back in morsel order, so the
    /// emitted row order is identical to serial execution at any worker
    /// count. Schema and row set are a pure passthrough of the input.
    Exchange {
        input: Box<PhysicalPlan>,
    },
}

impl PhysicalPlan {
    /// Human-readable plan tree (EXPLAIN output).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use fmt::Write;
        let pad = "  ".repeat(depth);
        let line = self.describe();
        let _ = writeln!(
            out,
            "{pad}{line}  (rows≈{:.0} cost≈{:.1})",
            self.est_rows, self.est_cost
        );
        for child in self.children() {
            child.explain_into(out, depth + 1);
        }
    }

    /// One-line description of this node's operator (no estimates, no
    /// children) — shared by `EXPLAIN` and `EXPLAIN ANALYZE` rendering.
    pub fn describe(&self) -> String {
        match &self.op {
            PhysOp::SeqScan { table, filter, .. } => format!(
                "SeqScan {table}{}",
                filter
                    .as_ref()
                    .map_or(String::new(), |f| format!(" filter={f:?}"))
            ),
            PhysOp::IndexScan {
                table,
                column,
                lo,
                hi,
                ..
            } => {
                format!("IndexScan {table}.{column} [{lo:?}..{hi:?}]")
            }
            PhysOp::Filter { predicate, .. } => format!("Filter {predicate:?}"),
            PhysOp::Project { .. } => {
                let names: Vec<&str> = self
                    .schema
                    .columns()
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect();
                format!("Project [{}]", names.join(", "))
            }
            PhysOp::NestedLoopJoin { on, .. } => match on {
                Some(e) => format!("NestedLoopJoin on {e:?}"),
                None => "NestedLoopJoin (cross)".to_string(),
            },
            PhysOp::HashJoin {
                left_key,
                right_key,
                ..
            } => {
                format!("HashJoin {left_key:?} = {right_key:?}")
            }
            PhysOp::Aggregate {
                group_exprs, aggs, ..
            } => {
                format!("Aggregate groups={} aggs={}", group_exprs.len(), aggs.len())
            }
            PhysOp::Sort { keys, .. } => format!("Sort ({} keys)", keys.len()),
            PhysOp::Limit { n, .. } => format!("Limit {n}"),
            PhysOp::Values { rows } => format!("Values ({} rows)", rows.len()),
            PhysOp::Exchange { .. } => "Exchange".to_string(),
        }
    }

    /// Child plans, left to right.
    pub fn children(&self) -> Vec<&PhysicalPlan> {
        match &self.op {
            PhysOp::SeqScan { .. } | PhysOp::IndexScan { .. } | PhysOp::Values { .. } => vec![],
            PhysOp::Filter { input, .. }
            | PhysOp::Project { input, .. }
            | PhysOp::Aggregate { input, .. }
            | PhysOp::Sort { input, .. }
            | PhysOp::Limit { input, .. }
            | PhysOp::Exchange { input } => vec![input],
            PhysOp::NestedLoopJoin { left, right, .. } | PhysOp::HashJoin { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Total number of operators.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }
}

/// Resolve every column reference in `expr` to the exact spelling used by
/// `schema`, so the executor can evaluate by direct name lookup.
///
/// Resolution order for a bare name: exact match, then unique `*.name`
/// suffix match (ambiguity is an error). Qualified names must match
/// `qualifier.name` exactly.
pub fn bind_expr(expr: &Expr, schema: &Schema) -> Result<Expr> {
    let out = match expr {
        Expr::Column { qualifier, name } => {
            let spelling = resolve_column(schema, qualifier.as_deref(), name)?;
            Expr::Column {
                qualifier: None,
                name: spelling,
            }
        }
        Expr::Literal(v) => Expr::Literal(v.clone()),
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(bind_expr(left, schema)?),
            op: *op,
            right: Box::new(bind_expr(right, schema)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(bind_expr(expr, schema)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bind_expr(expr, schema)?),
            negated: *negated,
        },
        Expr::Between { expr, lo, hi } => Expr::Between {
            expr: Box::new(bind_expr(expr, schema)?),
            lo: Box::new(bind_expr(lo, schema)?),
            hi: Box::new(bind_expr(hi, schema)?),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(bind_expr(expr, schema)?),
            list: list
                .iter()
                .map(|e| bind_expr(e, schema))
                .collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(bind_expr(expr, schema)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::Function { name, args } => {
            // PREDICT's first argument is a model name, not a column
            if name.eq_ignore_ascii_case("PREDICT") && !args.is_empty() {
                let mut bound = Vec::with_capacity(args.len());
                if let Expr::Column { name: model, .. } = &args[0] {
                    bound.push(Expr::Literal(aimdb_common::Value::Text(model.clone())));
                } else {
                    bound.push(bind_expr(&args[0], schema)?);
                }
                for a in &args[1..] {
                    bound.push(bind_expr(a, schema)?);
                }
                Expr::Function {
                    name: name.clone(),
                    args: bound,
                }
            } else {
                Expr::Function {
                    name: name.clone(),
                    args: args
                        .iter()
                        .map(|a| bind_expr(a, schema))
                        .collect::<Result<_>>()?,
                }
            }
        }
    };
    Ok(out)
}

/// Find the exact schema spelling of a (possibly qualified) column name.
pub fn resolve_column(schema: &Schema, qualifier: Option<&str>, name: &str) -> Result<String> {
    match qualifier {
        Some(q) => {
            let want = format!("{q}.{name}");
            if let Some(c) = schema
                .columns()
                .iter()
                .find(|c| c.name.eq_ignore_ascii_case(&want))
            {
                return Ok(c.name.clone());
            }
            // Projection outputs carry bare display names (`d.d_year`
            // projects as `d_year`), so a qualified reference in ORDER BY
            // over an aggregate/projection scope falls back to the bare
            // name when that is unambiguous.
            let bare: Vec<&Column> = schema
                .columns()
                .iter()
                .filter(|c| c.name.eq_ignore_ascii_case(name))
                .collect();
            match bare.len() {
                1 => Ok(bare[0].name.clone()),
                0 => Err(AimError::NotFound(format!("column {want}"))),
                _ => Err(AimError::Plan(format!("ambiguous column {want}"))),
            }
        }
        None => {
            if let Some(c) = schema
                .columns()
                .iter()
                .find(|c| c.name.eq_ignore_ascii_case(name))
            {
                return Ok(c.name.clone());
            }
            let suffix = format!(".{}", name.to_ascii_lowercase());
            let matches: Vec<&Column> = schema
                .columns()
                .iter()
                .filter(|c| c.name.to_ascii_lowercase().ends_with(&suffix))
                .collect();
            match matches.len() {
                1 => Ok(matches[0].name.clone()),
                0 => Err(AimError::NotFound(format!("column {name}"))),
                _ => Err(AimError::Plan(format!("ambiguous column {name}"))),
            }
        }
    }
}

/// Qualify a table schema with an alias: `col` becomes `alias.col`.
pub fn qualify_schema(schema: &Schema, alias: &str) -> Schema {
    Schema::new(
        schema
            .columns()
            .iter()
            .map(|c| {
                let mut c2 = c.clone();
                c2.name = format!("{alias}.{}", c.name);
                c2
            })
            .collect(),
    )
}

/// A display name for a select item without an alias: bare column name for
/// simple references, otherwise a positional name.
pub fn default_output_name(expr: &Expr, position: usize) -> String {
    match expr {
        Expr::Column { name, .. } => match name.rsplit_once('.') {
            Some((_, bare)) => bare.to_string(),
            None => name.clone(),
        },
        Expr::Function { name, .. } => name.to_ascii_lowercase(),
        _ => format!("col{position}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimdb_common::DataType;
    use aimdb_sql::expr::BinaryOp;

    fn joined_schema() -> Schema {
        Schema::from_pairs(&[
            ("a.id", DataType::Int),
            ("a.x", DataType::Int),
            ("b.id", DataType::Int),
            ("b.y", DataType::Float),
        ])
    }

    #[test]
    fn bind_qualified_and_bare() {
        let s = joined_schema();
        let e = bind_expr(&Expr::qcol("a", "x"), &s).unwrap();
        assert_eq!(e, Expr::col("a.x"));
        let e = bind_expr(&Expr::col("y"), &s).unwrap();
        assert_eq!(e, Expr::col("b.y"));
    }

    #[test]
    fn bind_detects_ambiguity_and_missing() {
        let s = joined_schema();
        assert!(matches!(
            bind_expr(&Expr::col("id"), &s),
            Err(AimError::Plan(_))
        ));
        assert!(matches!(
            bind_expr(&Expr::col("zz"), &s),
            Err(AimError::NotFound(_))
        ));
        assert!(bind_expr(&Expr::qcol("c", "id"), &s).is_err());
    }

    #[test]
    fn bind_recurses_into_compound_exprs() {
        let s = joined_schema();
        let e = Expr::binary(Expr::col("x"), BinaryOp::Add, Expr::qcol("b", "y"));
        let bound = bind_expr(&e, &s).unwrap();
        assert_eq!(
            bound,
            Expr::binary(Expr::col("a.x"), BinaryOp::Add, Expr::col("b.y"))
        );
    }

    #[test]
    fn predict_model_arg_becomes_literal() {
        let s = joined_schema();
        let e = Expr::Function {
            name: "PREDICT".into(),
            args: vec![Expr::col("mymodel"), Expr::col("x")],
        };
        let bound = bind_expr(&e, &s).unwrap();
        match bound {
            Expr::Function { args, .. } => {
                assert_eq!(args[0], Expr::lit("mymodel"));
                assert_eq!(args[1], Expr::col("a.x"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn qualify_and_output_names() {
        let s = Schema::from_pairs(&[("id", DataType::Int)]);
        let q = qualify_schema(&s, "t");
        assert_eq!(q.columns()[0].name, "t.id");
        assert_eq!(default_output_name(&Expr::col("t.id"), 0), "id");
        assert_eq!(default_output_name(&Expr::lit(1i64), 3), "col3");
    }
}
