//! Differential oracle: the vectorized executor must produce exactly the
//! same results as the row executor on every query.
//!
//! A seeded generator produces well-formed SELECTs over four tables — two
//! dense, one NULL-heavy (~40% NULLs in every column, so three-valued
//! logic, NULL join keys and NULL-skipping aggregates are exercised
//! constantly) and one empty — then every query is planned once and run
//! through both executors. Results must match: positionally when the
//! query has an ORDER BY, as multisets otherwise. Batch sizes cycle
//! through {1, 7, 64, 1024} so chunk-boundary bugs can't hide behind a
//! batch larger than the tables.

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_common::{Result, Row};
use aimdb_engine::exec::{execute, ExecContext};
use aimdb_engine::exec_batch::{execute_batched, execute_batched_parallel};
use aimdb_engine::Database;
use aimdb_sql::expr::BuiltinFns;
use aimdb_sql::{parse, Statement};

/// (table, numeric columns, text columns)
const TABLES: [(&str, &[&str], &[&str]); 3] = [
    (
        "users",
        &["users.id", "users.age", "users.score"],
        &["users.name"],
    ),
    (
        "orders",
        &["orders.oid", "orders.user_id", "orders.amount"],
        &["orders.tag"],
    ),
    (
        "sparse",
        &["sparse.k", "sparse.v", "sparse.w"],
        &["sparse.s"],
    ),
];

fn setup(db: &Database, rng: &mut StdRng) -> Result<()> {
    db.execute("CREATE TABLE users (id INT, age INT, name TEXT, score FLOAT)")?;
    db.execute("CREATE TABLE orders (oid INT, user_id INT, amount FLOAT, tag TEXT)")?;
    db.execute("CREATE TABLE sparse (k INT, v INT, w FLOAT, s TEXT)")?;
    db.execute("CREATE TABLE void (a INT, b TEXT, c FLOAT)")?;
    db.execute("CREATE INDEX idx_age ON users (age)")?;
    db.execute("CREATE INDEX idx_k ON sparse (k)")?;

    let names = ["ann", "bob", "cal", "dee", "eli"];
    let tags = ["new", "ship", "done", "hold"];
    for chunk in (0..200).collect::<Vec<i64>>().chunks(50) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|&i| {
                format!(
                    "({i}, {}, '{}', {:.2})",
                    rng.gen_range(18..80),
                    names[rng.gen_range(0..names.len())],
                    rng.gen_range(0.0..100.0)
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO users VALUES {}", rows.join(",")))?;
    }
    for chunk in (0..300).collect::<Vec<i64>>().chunks(50) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|&i| {
                format!(
                    "({i}, {}, {:.2}, '{}')",
                    rng.gen_range(0..200),
                    rng.gen_range(1.0..500.0),
                    tags[rng.gen_range(0..tags.len())]
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO orders VALUES {}", rows.join(",")))?;
    }
    // NULL-heavy: every column independently NULL with p = 0.4
    for chunk in (0..150).collect::<Vec<i64>>().chunks(50) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|&i| {
                let k = if rng.gen_bool(0.4) {
                    "NULL".to_string()
                } else {
                    format!("{}", i % 40)
                };
                let v = if rng.gen_bool(0.4) {
                    "NULL".to_string()
                } else {
                    format!("{}", rng.gen_range(-20..20))
                };
                let w = if rng.gen_bool(0.4) {
                    "NULL".to_string()
                } else {
                    format!("{:.2}", rng.gen_range(-5.0..5.0))
                };
                let s = if rng.gen_bool(0.4) {
                    "NULL".to_string()
                } else {
                    format!("'s{}'", i % 6)
                };
                format!("({k}, {v}, {w}, {s})")
            })
            .collect();
        db.execute(&format!("INSERT INTO sparse VALUES {}", rows.join(",")))?;
    }
    db.execute("ANALYZE")?;
    Ok(())
}

fn numeric_col(rng: &mut StdRng, ti: usize) -> String {
    let cols = TABLES[ti].1;
    cols[rng.gen_range(0..cols.len())].to_string()
}

fn text_col(rng: &mut StdRng, ti: usize) -> String {
    let cols = TABLES[ti].2;
    cols[rng.gen_range(0..cols.len())].to_string()
}

fn predicate(rng: &mut StdRng, ti: usize) -> String {
    match rng.gen_range(0..8) {
        0 => format!(
            "{} {} {}",
            numeric_col(rng, ti),
            ["<", "<=", ">", ">=", "=", "<>"][rng.gen_range(0..6)],
            rng.gen_range(-10..120)
        ),
        1 => format!(
            "{} BETWEEN {} AND {}",
            numeric_col(rng, ti),
            rng.gen_range(-10..50),
            rng.gen_range(50..200)
        ),
        2 => format!(
            "{} IN ({}, {}, {})",
            numeric_col(rng, ti),
            rng.gen_range(0..40),
            rng.gen_range(40..80),
            rng.gen_range(80..120)
        ),
        3 => format!(
            "{} LIKE '%{}%'",
            text_col(rng, ti),
            ['a', 'e', 'o', 's'][rng.gen_range(0..4)]
        ),
        4 => format!(
            "{} IS {}NULL",
            numeric_col(rng, ti),
            ["", "NOT "][rng.gen_range(0..2)]
        ),
        5 => format!(
            "{} > {} AND {} IS NOT NULL",
            numeric_col(rng, ti),
            rng.gen_range(0..60),
            text_col(rng, ti)
        ),
        6 => format!(
            "ABS({}) >= {} OR {} < {}",
            numeric_col(rng, ti),
            rng.gen_range(0..30),
            numeric_col(rng, ti),
            rng.gen_range(0..100)
        ),
        _ => format!("NOT ({} > {})", numeric_col(rng, ti), rng.gen_range(0..80)),
    }
}

/// A random well-formed SELECT; the NULL-heavy table participates in
/// every shape, and two shapes target the empty table directly.
fn gen_query(rng: &mut StdRng) -> String {
    match rng.gen_range(0..8) {
        // single-table projection + filter (+ order/limit)
        0 | 1 => {
            let ti = rng.gen_range(0..TABLES.len());
            let (t, _, _) = TABLES[ti];
            let nc = numeric_col(rng, ti);
            let tc = text_col(rng, ti);
            let bare = nc
                .rsplit_once('.')
                .map_or(nc.as_str(), |(_, b)| b)
                .to_string();
            let (proj, sort_key) = match rng.gen_range(0..3) {
                0 => ("*".to_string(), bare),
                1 => (format!("{nc}, {tc}"), bare),
                _ => (format!("{nc} + 1, UPPER({tc})"), "col0".to_string()),
            };
            let mut q = format!("SELECT {proj} FROM {t} WHERE {}", predicate(rng, ti));
            if rng.gen_bool(0.5) {
                q.push_str(&format!(" ORDER BY {sort_key}"));
                if rng.gen_bool(0.5) {
                    q.push_str(" DESC");
                }
            }
            if rng.gen_bool(0.4) {
                q.push_str(&format!(" LIMIT {}", rng.gen_range(1..40)));
            }
            q
        }
        // two-table join; sparse.k as a key exercises NULL join keys
        2 => {
            let (lt, rt, lk, rk) = [
                ("users", "orders", "users.id", "orders.user_id"),
                ("users", "sparse", "users.id", "sparse.k"),
                ("orders", "sparse", "orders.user_id", "sparse.k"),
            ][rng.gen_range(0..3)];
            let ti = TABLES
                .iter()
                .position(|(n, _, _)| *n == lt)
                .unwrap_or_default();
            format!(
                "SELECT {lk}, {rk} FROM {lt} JOIN {rt} ON {lk} = {rk} WHERE {}",
                predicate(rng, ti)
            )
        }
        // aggregate + group by (NULL group keys group together)
        3 => {
            let ti = rng.gen_range(0..TABLES.len());
            let (t, _, _) = TABLES[ti];
            let g = text_col(rng, ti);
            let a = numeric_col(rng, ti);
            let agg = ["COUNT(*)", "SUM", "AVG", "MIN", "MAX"][rng.gen_range(0..5)];
            let agg = if agg == "COUNT(*)" {
                agg.to_string()
            } else {
                format!("{agg}({a})")
            };
            let mut q = format!("SELECT {g}, {agg} FROM {t} GROUP BY {g}");
            if rng.gen_bool(0.5) {
                let bare = g.rsplit_once('.').map_or(g.as_str(), |(_, b)| b);
                q.push_str(&format!(" ORDER BY {bare}"));
            }
            q
        }
        // global aggregate with filter (COUNT(col) skips NULLs)
        4 => {
            let ti = rng.gen_range(0..TABLES.len());
            let (t, _, _) = TABLES[ti];
            let a = numeric_col(rng, ti);
            format!(
                "SELECT COUNT(*), COUNT({a}), AVG({a}) FROM {t} WHERE {}",
                predicate(rng, ti)
            )
        }
        // empty table: scans, sorts and limits over zero rows
        5 => {
            let mut q = format!(
                "SELECT a, c FROM void WHERE {}",
                ["a > 5", "b LIKE '%x%'", "c IS NULL", "a IN (1, 2, 3)"][rng.gen_range(0..4)]
            );
            if rng.gen_bool(0.5) {
                q.push_str(" ORDER BY a");
            }
            if rng.gen_bool(0.5) {
                q.push_str(" LIMIT 5");
            }
            q
        }
        // empty table: global aggregate still yields one row; grouped
        // aggregate yields none; joins against it yield none
        6 => match rng.gen_range(0..3) {
            0 => "SELECT COUNT(*), SUM(a), MIN(c) FROM void".to_string(),
            1 => "SELECT b, COUNT(*) FROM void GROUP BY b".to_string(),
            _ => "SELECT users.id, void.a FROM users JOIN void ON users.id = void.a".to_string(),
        },
        // scalar expressions, no FROM
        _ => format!(
            "SELECT ABS({}), LENGTH('oracle'), {} * {}",
            -rng.gen_range(1..50i64),
            rng.gen_range(1..9),
            rng.gen_range(1..9)
        ),
    }
}

/// Plan once, run through both executors.
#[allow(clippy::type_complexity)]
fn run_both(db: &Database, sql: &str, bs: usize) -> (Result<Vec<Row>>, Result<Vec<Row>>) {
    let stmts = parse(sql).unwrap_or_else(|e| panic!("unparseable SQL ({e}): {sql}"));
    let Some(Statement::Select(sel)) = stmts.into_iter().next() else {
        panic!("generator produced a non-SELECT: {sql}");
    };
    let plan = db
        .plan(&sel)
        .unwrap_or_else(|e| panic!("planner failed ({e}): {sql}"));
    let fns = BuiltinFns;
    let row_ctx = ExecContext::new(&db.catalog, &fns);
    let row_result = execute(&plan, &row_ctx);
    let batch_ctx = ExecContext::new(&db.catalog, &fns);
    let batch_result = execute_batched(&plan, &batch_ctx, bs);
    (row_result, batch_result)
}

/// Plan once, run the row oracle, then the morsel-parallel batch
/// executor at each requested worker count.
#[allow(clippy::type_complexity)]
fn run_matrix(
    db: &Database,
    sql: &str,
    bs: usize,
    worker_counts: &[usize],
) -> (Result<Vec<Row>>, Vec<Result<Vec<Row>>>) {
    let stmts = parse(sql).unwrap_or_else(|e| panic!("unparseable SQL ({e}): {sql}"));
    let Some(Statement::Select(sel)) = stmts.into_iter().next() else {
        panic!("generator produced a non-SELECT: {sql}");
    };
    let plan = db
        .plan(&sel)
        .unwrap_or_else(|e| panic!("planner failed ({e}): {sql}"));
    let fns = BuiltinFns;
    let row_ctx = ExecContext::new(&db.catalog, &fns);
    let row_result = execute(&plan, &row_ctx);
    let parallel_results = worker_counts
        .iter()
        .map(|&w| {
            let ctx = ExecContext::new(&db.catalog, &fns);
            execute_batched_parallel(&plan, &ctx, bs, w)
        })
        .collect();
    (row_result, parallel_results)
}

/// Multiset canonicalization: sort rows lexicographically by value.
fn canon(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort_by(|a, b| a.values().cmp(b.values()));
    rows
}

/// EXPLAIN ANALYZE's per-node actuals come from the instrumented
/// vectorized pipeline; the result row count it reports — both the
/// report total and the root node's actual rows — must equal what the
/// differential oracle produced for the same query.
fn check_analyze_row_counts(db: &Database, sql: &str, oracle_rows: u64, qi: usize) {
    let stmts = parse(sql).unwrap_or_else(|e| panic!("unparseable SQL ({e}): {sql}"));
    let Some(Statement::Select(sel)) = stmts.into_iter().next() else {
        panic!("generator produced a non-SELECT: {sql}");
    };
    let report = db
        .explain_analyze(&sel)
        .unwrap_or_else(|e| panic!("EXPLAIN ANALYZE failed [{qi}] ({e}): {sql}"));
    assert_eq!(
        report.result_rows, oracle_rows,
        "[{qi}] EXPLAIN ANALYZE result_rows vs oracle: {sql}"
    );
    let root = report
        .root()
        .unwrap_or_else(|| panic!("[{qi}] EXPLAIN ANALYZE report has no nodes: {sql}"));
    assert_eq!(
        root.rows, oracle_rows,
        "[{qi}] root node actual rows vs oracle: {sql}"
    );
}

#[test]
fn differential_oracle_over_generated_corpus() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    let db = Database::new();
    setup(&db, &mut rng).expect("corpus setup");

    const N: usize = 1200;
    let batch_sizes = [1usize, 7, 64, 1024];
    let mut mismatches = 0usize;
    let mut executed = 0usize;
    for qi in 0..N {
        let sql = gen_query(&mut rng);
        let bs = batch_sizes[qi % batch_sizes.len()];
        match run_both(&db, &sql, bs) {
            (Ok(rr), Ok(br)) => {
                executed += 1;
                let same = if sql.contains(" ORDER BY ") {
                    rr == br
                } else {
                    canon(rr.clone()) == canon(br.clone())
                };
                if !same {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH [{qi}] bs={bs}: row={} rows, batch={} rows\n  sql: {sql}",
                        rr.len(),
                        br.len()
                    );
                }
                // EXPLAIN ANALYZE runs the same instrumented pipeline;
                // its reported root actuals must agree with the oracle.
                if qi % 25 == 0 {
                    check_analyze_row_counts(&db, &sql, rr.len() as u64, qi);
                }
            }
            // both failing is agreement; the generator shouldn't produce
            // these, but if it does the executors still concur
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) => {
                mismatches += 1;
                eprintln!("MISMATCH [{qi}] bs={bs}: row ok, batch err ({e})\n  sql: {sql}");
            }
            (Err(e), Ok(_)) => {
                mismatches += 1;
                eprintln!("MISMATCH [{qi}] bs={bs}: batch ok, row err ({e})\n  sql: {sql}");
            }
        }
    }
    assert!(
        executed >= N * 9 / 10,
        "generator produced too many failing queries: {executed}/{N} executed"
    );
    assert_eq!(mismatches, 0, "{mismatches} differential mismatches");
}

/// Thread-count differential matrix: the morsel-parallel executor must
/// agree with the row-executor oracle at every worker count, and the
/// parallel results themselves must be bit-identical across worker
/// counts — morsel-ordered merging makes thread count unobservable.
///
/// Worker counts {1, 2, 4, 8} all run on every query; batch sizes
/// cycle through {1, 64, 1024} so each (workers, batch size) cell of
/// the matrix sees hundreds of queries.
#[test]
fn thread_count_differential_matrix() {
    let mut rng = StdRng::seed_from_u64(0x30A5E1);
    let db = Database::new();
    setup(&db, &mut rng).expect("corpus setup");

    const N: usize = 1200;
    const WORKERS: [usize; 4] = [1, 2, 4, 8];
    let batch_sizes = [1usize, 64, 1024];
    let mut mismatches = 0usize;
    let mut executed = 0usize;
    for qi in 0..N {
        let sql = gen_query(&mut rng);
        let bs = batch_sizes[qi % batch_sizes.len()];
        let (row_result, parallel_results) = run_matrix(&db, &sql, bs, &WORKERS);
        let rr = match row_result {
            Ok(rr) => rr,
            // both sides failing is agreement; verify every worker
            // count concurs and move on
            Err(_) => {
                for (w, pr) in WORKERS.iter().zip(&parallel_results) {
                    if pr.is_ok() {
                        mismatches += 1;
                        eprintln!(
                            "MISMATCH [{qi}] w={w} bs={bs}: row err, parallel ok\n  sql: {sql}"
                        );
                    }
                }
                continue;
            }
        };
        executed += 1;
        let ordered = sql.contains(" ORDER BY ");
        let rr_canon = canon(rr.clone());
        let mut first_parallel: Option<Vec<Row>> = None;
        for (w, pr) in WORKERS.iter().zip(&parallel_results) {
            let br = match pr {
                Ok(br) => br.clone(),
                Err(e) => {
                    mismatches += 1;
                    eprintln!(
                        "MISMATCH [{qi}] w={w} bs={bs}: row ok, parallel err ({e})\n  sql: {sql}"
                    );
                    continue;
                }
            };
            let same = if ordered {
                rr == br
            } else {
                rr_canon == canon(br.clone())
            };
            if !same {
                mismatches += 1;
                eprintln!(
                    "MISMATCH [{qi}] w={w} bs={bs}: row={} rows, parallel={} rows\n  sql: {sql}",
                    rr.len(),
                    br.len()
                );
            }
            // determinism across thread counts: positional, bitwise
            match &first_parallel {
                None => first_parallel = Some(br),
                Some(base) => {
                    if *base != br {
                        mismatches += 1;
                        eprintln!(
                            "NONDETERMINISM [{qi}] w={w} bs={bs}: differs from w={}\n  sql: {sql}",
                            WORKERS[0]
                        );
                    }
                }
            }
        }
    }
    assert!(
        executed >= N * 9 / 10,
        "generator produced too many failing queries: {executed}/{N} executed"
    );
    assert_eq!(mismatches, 0, "{mismatches} thread-matrix mismatches");
}

/// The knob path end-to-end: `SET exec_parallelism = N` must be
/// invisible in query results served through `Database::execute`.
#[test]
fn exec_parallelism_knob_is_result_invisible() {
    let mut rng = StdRng::seed_from_u64(0xCAB);
    let db = Database::new();
    setup(&db, &mut rng).expect("corpus setup");
    let workload = [
        "SELECT users.age, COUNT(*), MIN(users.id), MAX(users.id) FROM users \
         GROUP BY users.age ORDER BY age",
        "SELECT COUNT(*), COUNT(sparse.v), SUM(sparse.v) FROM sparse",
        "SELECT users.id, users.score FROM users WHERE users.age > 40 ORDER BY id DESC LIMIT 17",
        "SELECT sparse.s, COUNT(*) FROM sparse WHERE sparse.v IS NOT NULL GROUP BY sparse.s",
        "SELECT AVG(orders.amount), MIN(orders.tag) FROM orders WHERE orders.user_id < 120",
    ];
    db.execute("SET exec_parallelism = 1").expect("knob");
    let baseline: Vec<Vec<Row>> = workload
        .iter()
        .map(|sql| db.execute(sql).expect("serial run").rows().to_vec())
        .collect();
    for w in [2usize, 4, 8] {
        db.execute(&format!("SET exec_parallelism = {w}"))
            .expect("knob");
        for (sql, expect) in workload.iter().zip(&baseline) {
            let got = db.execute(sql).expect("parallel run").rows().to_vec();
            assert_eq!(&got, expect, "workers={w}: {sql}");
        }
    }
}

/// Hand-picked edge queries the random generator could plausibly miss:
/// NULL arithmetic in projections, all-NULL aggregates, NULL sort keys.
#[test]
fn null_heavy_edges_match() {
    let mut rng = StdRng::seed_from_u64(7);
    let db = Database::new();
    setup(&db, &mut rng).expect("corpus setup");
    let queries = [
        "SELECT k + v, w * 2 FROM sparse",
        "SELECT SUM(v), AVG(v), MIN(v), MAX(v), COUNT(v) FROM sparse WHERE k IS NULL",
        "SELECT s, SUM(w) FROM sparse GROUP BY s ORDER BY s",
        "SELECT v, k FROM sparse ORDER BY v, k LIMIT 20",
        "SELECT COUNT(*) FROM sparse WHERE v > 0 OR v <= 0",
        "SELECT k, v FROM sparse WHERE v BETWEEN -5 AND 5 ORDER BY k DESC",
        "SELECT users.id, sparse.v FROM users JOIN sparse ON users.id = sparse.k \
         WHERE sparse.v IS NOT NULL",
    ];
    for sql in queries {
        for bs in [1usize, 3, 1024] {
            let (rr, br) = run_both(&db, sql, bs);
            let rr = rr.unwrap_or_else(|e| panic!("row executor failed ({e}): {sql}"));
            let br = br.unwrap_or_else(|e| panic!("batch executor failed ({e}): {sql}"));
            let same = if sql.contains(" ORDER BY ") {
                rr == br
            } else {
                canon(rr) == canon(br)
            };
            assert!(same, "bs={bs}: {sql}");
        }
    }
}

#[test]
fn empty_table_edges_match() {
    let mut rng = StdRng::seed_from_u64(9);
    let db = Database::new();
    setup(&db, &mut rng).expect("corpus setup");
    let queries = [
        "SELECT * FROM void",
        "SELECT a + 1 FROM void WHERE b LIKE 'x%' ORDER BY col0 LIMIT 3",
        "SELECT COUNT(*), SUM(a), AVG(c), MIN(b), MAX(a) FROM void",
        "SELECT b, COUNT(*) FROM void GROUP BY b",
        "SELECT void.a, users.id FROM void JOIN users ON void.a = users.id",
        "SELECT users.id, void.a FROM users JOIN void ON users.id = void.a",
    ];
    for sql in queries {
        for bs in [1usize, 1024] {
            let (rr, br) = run_both(&db, sql, bs);
            let rr = rr.unwrap_or_else(|e| panic!("row executor failed ({e}): {sql}"));
            let br = br.unwrap_or_else(|e| panic!("batch executor failed ({e}): {sql}"));
            assert_eq!(canon(rr), canon(br), "bs={bs}: {sql}");
        }
    }
}
