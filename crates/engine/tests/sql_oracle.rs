//! Property tests: the engine's SELECT pipeline must agree with a naive
//! in-memory oracle on randomly generated data and predicates, and the
//! index path must agree with the sequential path.

use proptest::prelude::*;

use aimdb_common::Value;
use aimdb_engine::{Database, QueryResult};

/// Load `rows` of (a, b) into a fresh database.
fn load(rows: &[(i64, i64)]) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (a INT, b INT)").expect("ddl");
    if !rows.is_empty() {
        let tuples: Vec<String> = rows.iter().map(|(a, b)| format!("({a}, {b})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", tuples.join(",")))
            .expect("load");
    }
    db
}

fn count(db: &Database, sql: &str) -> i64 {
    match db.execute(sql).expect(sql) {
        QueryResult::Rows { rows, .. } => rows[0].get(0).as_i64().expect("count"),
        other => panic!("unexpected result {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_count_matches_oracle(
        rows in prop::collection::vec((0i64..100, 0i64..100), 0..120),
        lo in 0i64..100,
        hi in 0i64..100,
        eq in 0i64..100,
    ) {
        let db = load(&rows);
        let got = count(&db, &format!(
            "SELECT COUNT(*) FROM t WHERE a >= {lo} AND a <= {hi} AND b = {eq}"
        ));
        let want = rows
            .iter()
            .filter(|(a, b)| *a >= lo && *a <= hi && *b == eq)
            .count() as i64;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn or_and_not_match_oracle(
        rows in prop::collection::vec((0i64..50, 0i64..50), 1..100),
        x in 0i64..50,
        y in 0i64..50,
    ) {
        let db = load(&rows);
        let got = count(&db, &format!(
            "SELECT COUNT(*) FROM t WHERE (a < {x} OR b > {y}) AND NOT a = {y}"
        ));
        let want = rows
            .iter()
            .filter(|(a, b)| (*a < x || *b > y) && *a != y)
            .count() as i64;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn index_path_agrees_with_seq_path(
        rows in prop::collection::vec((0i64..40, 0i64..40), 1..150),
        key in 0i64..40,
    ) {
        let db = load(&rows);
        let seq = count(&db, &format!("SELECT COUNT(*) FROM t WHERE a = {key}"));
        db.execute("CREATE INDEX idx_a ON t (a)").expect("index");
        db.execute("ANALYZE").expect("analyze");
        let indexed = count(&db, &format!("SELECT COUNT(*) FROM t WHERE a = {key}"));
        prop_assert_eq!(seq, indexed);
    }

    #[test]
    fn group_by_sums_match_oracle(
        rows in prop::collection::vec((0i64..10, 0i64..100), 1..100),
    ) {
        let db = load(&rows);
        let r = db
            .execute("SELECT a, SUM(b) AS s FROM t GROUP BY a ORDER BY a")
            .expect("group");
        let QueryResult::Rows { rows: got, .. } = r else { panic!() };
        let mut want: std::collections::BTreeMap<i64, f64> = Default::default();
        for (a, b) in &rows {
            *want.entry(*a).or_default() += *b as f64;
        }
        prop_assert_eq!(got.len(), want.len());
        for (row, (a, s)) in got.iter().zip(want) {
            prop_assert_eq!(row.get(0), &Value::Int(a));
            prop_assert_eq!(row.get(1), &Value::Float(s));
        }
    }

    #[test]
    fn order_limit_is_sorted_prefix(
        rows in prop::collection::vec((0i64..1000, 0i64..10), 1..80),
        k in 1usize..20,
    ) {
        let db = load(&rows);
        let r = db
            .execute(&format!("SELECT a FROM t ORDER BY a DESC LIMIT {k}"))
            .expect("sort");
        let QueryResult::Rows { rows: got, .. } = r else { panic!() };
        let mut want: Vec<i64> = rows.iter().map(|(a, _)| *a).collect();
        want.sort_unstable_by(|x, y| y.cmp(x));
        want.truncate(k);
        let got: Vec<i64> = got.iter().map(|r| r.get(0).as_i64().expect("int")).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn delete_then_count_consistent(
        rows in prop::collection::vec((0i64..30, 0i64..30), 1..80),
        cut in 0i64..30,
    ) {
        let db = load(&rows);
        db.execute(&format!("DELETE FROM t WHERE a < {cut}")).expect("delete");
        let got = count(&db, "SELECT COUNT(*) FROM t");
        let want = rows.iter().filter(|(a, _)| *a >= cut).count() as i64;
        prop_assert_eq!(got, want);
    }
}
