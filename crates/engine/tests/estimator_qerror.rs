//! Property tests bounding the cardinality estimator's Q-error on
//! ANALYZE'd uniform data — the regime where histogram estimates are
//! supposed to be good. The macro-benchmark analytics queries lean on
//! these estimates for join ordering, so a silent estimator regression
//! shows up here before it shows up as a bad plan.
//!
//! Documented bounds (empirical worst cases on this seeded dataset are
//! well inside them; the asserted factors leave headroom for histogram
//! bucket-boundary effects, not for regressions):
//!
//! - single-table equality and range filters: Q-error ≤ 4
//! - two-way equi-joins (with and without a dimension filter): Q-error ≤ 8
//!
//! Q-error = max(est/actual, actual/est), both sides clamped to ≥ 1
//! ([`aimdb_engine::q_error`]), so a bound of 4 means "within 4× in
//! either direction".

use std::sync::OnceLock;

use proptest::prelude::*;
use rand::{Rng, SeedableRng, StdRng};

use aimdb_engine::{q_error, Database};
use aimdb_sql::ast::Statement;
use aimdb_sql::parse;

const FILTER_QERR_BOUND: f64 = 4.0;
const JOIN_QERR_BOUND: f64 = 8.0;

/// Shared seeded dataset: a 3000-row fact table with a uniform low-NDV
/// key and a uniform value column, plus a 150-row dimension keyed 0..150.
fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| {
        let db = Database::new();
        db.execute("CREATE TABLE f (k INT, v INT)").unwrap();
        db.execute("CREATE TABLE dim (pk INT, w INT)").unwrap();
        db.execute("CREATE TABLE fact (fk INT, x INT)").unwrap();
        let mut rng = StdRng::seed_from_u64(0xE57);
        let rows: Vec<String> = (0..3000)
            .map(|_| {
                format!(
                    "({}, {})",
                    rng.gen_range(0i64..100),
                    rng.gen_range(0i64..1000)
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO f VALUES {}", rows.join(",")))
            .unwrap();
        let rows: Vec<String> = (0..150)
            .map(|pk| format!("({pk}, {})", rng.gen_range(0i64..40)))
            .collect();
        db.execute(&format!("INSERT INTO dim VALUES {}", rows.join(",")))
            .unwrap();
        let rows: Vec<String> = (0..3000)
            .map(|_| {
                format!(
                    "({}, {})",
                    rng.gen_range(0i64..150),
                    rng.gen_range(0i64..1000)
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO fact VALUES {}", rows.join(",")))
            .unwrap();
        db.execute("ANALYZE").unwrap();
        db
    })
}

/// The planner's row estimate for a SELECT (top-of-plan `est_rows`).
fn est_rows(sql: &str) -> f64 {
    let stmts = parse(sql).unwrap();
    let Some(Statement::Select(sel)) = stmts.into_iter().next() else {
        panic!("not a SELECT: {sql}");
    };
    db().plan(&sel).unwrap().est_rows
}

/// The true row count of the same FROM/WHERE body.
fn actual_rows(body: &str) -> f64 {
    let r = db().execute(&format!("SELECT COUNT(*) {body}")).unwrap();
    let aimdb_common::Value::Int(n) = r.scalar().unwrap() else {
        panic!("COUNT did not return an Int");
    };
    *n as f64
}

/// Assert the estimate for `SELECT * {body}` is within `bound` of truth.
fn check(body: &str, bound: f64) -> std::result::Result<(), String> {
    let est = est_rows(&format!("SELECT * {body}"));
    let actual = actual_rows(body);
    let q = q_error(est, actual);
    prop_assert!(
        q <= bound,
        "Q-error {q:.2} over bound {bound} (est {est:.1}, actual {actual}) for: {body}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Equality and range filters over the uniform key column.
    #[test]
    fn single_table_filter_qerror_is_bounded(
        eq in 0i64..100,
        lo in 0i64..100,
        width in 1i64..60,
    ) {
        check(&format!("FROM f WHERE k = {eq}"), FILTER_QERR_BOUND)?;
        let hi = (lo + width).min(100);
        check(
            &format!("FROM f WHERE k >= {lo} AND k <= {hi}"),
            FILTER_QERR_BOUND,
        )?;
    }

    // Conjunctive filters across two columns: independence holds on
    // this dataset, so the product estimate must stay bounded too.
    #[test]
    fn conjunctive_filter_qerror_is_bounded(
        eq in 0i64..100,
        vcut in 100i64..900,
    ) {
        check(
            &format!("FROM f WHERE k = {eq} AND v < {vcut}"),
            FILTER_QERR_BOUND,
        )?;
    }

    // Two-way PK/FK equi-join, bare and with a pushed-down dimension
    // filter.
    #[test]
    fn equi_join_qerror_is_bounded(wcut in 1i64..40) {
        check(
            "FROM fact JOIN dim ON fact.fk = dim.pk",
            JOIN_QERR_BOUND,
        )?;
        check(
            &format!("FROM fact JOIN dim ON fact.fk = dim.pk WHERE dim.w < {wcut}"),
            JOIN_QERR_BOUND,
        )?;
    }
}
