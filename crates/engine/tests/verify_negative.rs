//! Negative fixtures for the static plan verifier: every malformed plan
//! here must be rejected with a precise diagnostic, and well-formed plans
//! produced by the planner must pass.

use aimdb_common::{AimError, Column, DataType, Row, Schema, Value};
use aimdb_engine::plan::{qualify_schema, PhysOp, PhysicalPlan};
use aimdb_engine::verify::verify;
use aimdb_engine::Database;
use aimdb_sql::ast::AggFunc;
use aimdb_sql::logical::AggExpr;
use aimdb_sql::{BinaryOp, Expr};

fn db() -> Database {
    let d = Database::new();
    d.execute("CREATE TABLE users (id INT, age INT, name TEXT)")
        .expect("ddl");
    d.execute("CREATE TABLE orders (oid INT, user_id INT, amount FLOAT, tag TEXT)")
        .expect("ddl");
    d.execute("CREATE INDEX idx_age ON users (age)")
        .expect("ddl");
    d
}

fn scan(d: &Database, table: &str) -> PhysicalPlan {
    let t = d.catalog.table(table).expect("table");
    PhysicalPlan {
        schema: qualify_schema(&t.schema, table),
        op: PhysOp::SeqScan {
            table: table.into(),
            alias: table.into(),
            filter: None,
        },
        est_rows: 1.0,
        est_cost: 1.0,
    }
}

/// Assert the plan is rejected and the diagnostic mentions `needle`.
fn rejected(d: &Database, plan: &PhysicalPlan, needle: &str) {
    match verify(plan, &d.catalog) {
        Err(AimError::Plan(msg)) => assert!(
            msg.contains(needle),
            "diagnostic {msg:?} does not mention {needle:?}"
        ),
        other => panic!("expected Plan error mentioning {needle:?}, got {other:?}"),
    }
}

#[test]
fn unknown_table_is_rejected() {
    let d = db();
    let mut p = scan(&d, "users");
    if let PhysOp::SeqScan { table, .. } = &mut p.op {
        *table = "nope".into();
    }
    rejected(&d, &p, "unknown table nope");
}

#[test]
fn unresolved_filter_column_is_rejected() {
    let d = db();
    let base = scan(&d, "users");
    let p = PhysicalPlan {
        schema: base.schema.clone(),
        op: PhysOp::Filter {
            input: Box::new(base),
            predicate: Expr::binary(Expr::col("salary"), BinaryOp::Gt, Expr::lit(10i64)),
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "unresolved column salary");
}

#[test]
fn type_mismatched_join_key_is_rejected() {
    let d = db();
    let left = scan(&d, "users");
    let right = scan(&d, "orders");
    let schema = left.schema.join(&right.schema);
    let p = PhysicalPlan {
        schema,
        op: PhysOp::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            left_key: Expr::qcol("users", "id"),    // Int
            right_key: Expr::qcol("orders", "tag"), // Text
            residual: None,
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "join keys disagree");
}

#[test]
fn project_arity_mismatch_is_rejected() {
    let d = db();
    let base = scan(&d, "users");
    let p = PhysicalPlan {
        schema: Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]),
        op: PhysOp::Project {
            input: Box::new(base),
            exprs: vec![Expr::col("id")], // 1 expr for 2 columns
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "2 column(s) but 1 expression(s)");
}

#[test]
fn index_scan_without_index_is_rejected() {
    let d = db();
    let t = d.catalog.table("users").expect("table");
    let p = PhysicalPlan {
        schema: qualify_schema(&t.schema, "users"),
        op: PhysOp::IndexScan {
            table: "users".into(),
            alias: "users".into(),
            column: "name".into(), // no index on name
            lo: Some(Value::Text("a".into())),
            hi: None,
            filter: None,
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "no index on users.name");
}

#[test]
fn index_bound_type_mismatch_is_rejected() {
    let d = db();
    let t = d.catalog.table("users").expect("table");
    let p = PhysicalPlan {
        schema: qualify_schema(&t.schema, "users"),
        op: PhysOp::IndexScan {
            table: "users".into(),
            alias: "users".into(),
            column: "age".into(),
            lo: Some(Value::Text("young".into())), // Text bound on Int column
            hi: None,
            filter: None,
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "incomparable");
}

#[test]
fn sum_over_text_is_rejected() {
    let d = db();
    let base = scan(&d, "users");
    let p = PhysicalPlan {
        schema: Schema::new(vec![Column::new("s", DataType::Float)]),
        op: PhysOp::Aggregate {
            input: Box::new(base),
            group_exprs: vec![],
            aggs: vec![AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::qcol("users", "name")),
                name: "s".into(),
            }],
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "Sum over Text");
}

#[test]
fn aggregate_arity_mismatch_is_rejected() {
    let d = db();
    let base = scan(&d, "users");
    let p = PhysicalPlan {
        // 2 columns declared for 1 group + 0 aggs
        schema: Schema::new(vec![
            Column::new("g", DataType::Int),
            Column::new("extra", DataType::Int),
        ]),
        op: PhysOp::Aggregate {
            input: Box::new(base),
            group_exprs: vec![Expr::col("age")],
            aggs: vec![],
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "1 group(s) + 0 aggregate(s)");
}

#[test]
fn unknown_function_is_rejected() {
    let d = db();
    let base = scan(&d, "users");
    let p = PhysicalPlan {
        schema: Schema::new(vec![Column::new("x", DataType::Float)]),
        op: PhysOp::Project {
            input: Box::new(base),
            exprs: vec![Expr::Function {
                name: "FROBNICATE".into(),
                args: vec![Expr::qcol("users", "id")],
            }],
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "unknown scalar function FROBNICATE");
}

#[test]
fn non_boolean_predicate_is_rejected() {
    let d = db();
    let base = scan(&d, "users");
    let p = PhysicalPlan {
        schema: base.schema.clone(),
        op: PhysOp::Filter {
            input: Box::new(base),
            predicate: Expr::binary(Expr::qcol("users", "id"), BinaryOp::Add, Expr::lit(1i64)),
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "expected Bool");
}

#[test]
fn filter_changing_schema_is_rejected() {
    let d = db();
    let base = scan(&d, "users");
    let p = PhysicalPlan {
        schema: Schema::new(vec![Column::new("only", DataType::Int)]),
        op: PhysOp::Filter {
            input: Box::new(base),
            predicate: Expr::lit(true),
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "differs from input schema");
}

#[test]
fn values_row_arity_mismatch_is_rejected() {
    let d = db();
    let p = PhysicalPlan {
        schema: Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]),
        op: PhysOp::Values {
            rows: vec![Row::new(vec![Value::Int(1)])],
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "1 value(s) for 2 column(s)");
}

#[test]
fn join_schema_must_concatenate_inputs() {
    let d = db();
    let left = scan(&d, "users");
    let right = scan(&d, "orders");
    let p = PhysicalPlan {
        schema: left.schema.clone(), // dropped the right side
        op: PhysOp::NestedLoopJoin {
            left: Box::new(left),
            right: Box::new(right),
            on: None,
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    rejected(&d, &p, "not the concatenation");
}

#[test]
fn well_formed_planner_output_passes() {
    let d = db();
    d.execute("INSERT INTO users VALUES (1, 30, 'ann'), (2, 40, 'bob')")
        .expect("load");
    d.execute("INSERT INTO orders VALUES (10, 1, 5.0, 'a'), (11, 2, 7.5, 'b')")
        .expect("load");
    // the debug gate in run_plan re-verifies each of these end to end
    for sql in [
        "SELECT * FROM users",
        "SELECT id, age + 1 FROM users WHERE age BETWEEN 20 AND 50",
        "SELECT name FROM users WHERE name LIKE 'a%' OR id IN (1, 2)",
        "SELECT u.name, o.amount FROM users u JOIN orders o ON u.id = o.user_id",
        "SELECT age, COUNT(*), AVG(age) FROM users GROUP BY age ORDER BY age LIMIT 5",
        "SELECT ABS(-3), UPPER('x'), LENGTH('abc')",
    ] {
        d.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    }
}

#[test]
fn hand_built_well_formed_plan_passes() {
    let d = db();
    let base = scan(&d, "users");
    let filtered = PhysicalPlan {
        schema: base.schema.clone(),
        op: PhysOp::Filter {
            input: Box::new(base),
            predicate: Expr::binary(Expr::qcol("users", "age"), BinaryOp::Gte, Expr::lit(21i64)),
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    let p = PhysicalPlan {
        schema: Schema::new(vec![Column::new("name", DataType::Text)]),
        op: PhysOp::Project {
            input: Box::new(filtered),
            exprs: vec![Expr::qcol("users", "name")],
        },
        est_rows: 1.0,
        est_cost: 1.0,
    };
    verify(&p, &d.catalog).expect("well-formed plan must pass");
}
