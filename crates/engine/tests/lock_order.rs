//! Regression tests for the debug-build lock-order witness: an inverted
//! acquisition must be reported, and the engine's own lock traffic must
//! produce zero reports.
//!
//! This lives in its own integration-test binary because the witness's
//! violation buffer is process-global: other test binaries must not see
//! the violations provoked here.

use std::sync::Arc;

use aimdb_common::{AimError, LockRank};
use aimdb_engine::Database;
use parking_lot::{witness, Mutex};

/// The tentpole regression: acquiring a low-ranked lock while holding a
/// higher-ranked one is exactly the bug class the witness exists for.
/// Without the witness this nests silently; with it, the inversion is
/// reported as a structured `AimError::LockOrder` (never a panic).
#[test]
fn inverted_acquisition_order_is_reported() {
    if !witness::enabled() {
        return; // release build: the witness is compiled out
    }
    let _ = witness::take_violations(); // drain anything earlier

    let pages = Mutex::with_rank((), LockRank::HeapPages);
    let commit = Mutex::with_rank((), LockRank::CommitLock);

    // Correct order first: commit_lock(10) then heap_pages(55).
    {
        let _c = commit.lock();
        let _p = pages.lock();
    }
    assert!(
        witness::take_violations().is_empty(),
        "monotone acquisition must not be reported"
    );

    // Inverted: heap_pages(55) held while taking commit_lock(10).
    {
        let _p = pages.lock();
        let _c = commit.lock();
    }
    let violations = witness::take_violations();
    assert_eq!(violations.len(), 1, "the inversion must be witnessed");
    match &violations[0] {
        AimError::LockOrder(msg) => {
            assert!(msg.contains("commit_lock(10)"), "got: {msg}");
            assert!(msg.contains("heap_pages(55)"), "got: {msg}");
        }
        other => panic!("expected LockOrder, got {other:?}"),
    }
}

/// A multi-threaded engine workload — concurrent writers, readers and a
/// checkpoint — must hold the declared hierarchy: zero witness reports.
#[test]
fn engine_workload_is_hierarchy_clean() {
    if witness::enabled() {
        let _ = witness::take_violations();
    }

    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (id INT, v INT)").unwrap();
    db.execute("CREATE INDEX t_id ON t (id)").unwrap();

    std::thread::scope(|s| {
        for w in 0..4 {
            let db = Arc::clone(&db);
            s.spawn(move || {
                for i in 0..25 {
                    let id = w * 100 + i;
                    let txn = db.begin_txn().unwrap();
                    db.execute_in(&txn, &format!("INSERT INTO t VALUES ({id}, {i})"))
                        .unwrap();
                    let _ = db.commit_txn(&txn);
                    let _ = db.execute("SELECT COUNT(*) FROM t WHERE id >= 0");
                }
            });
        }
        let db = Arc::clone(&db);
        s.spawn(move || {
            for _ in 0..5 {
                // quiescence is not guaranteed mid-run; the lock traffic
                // (commit_lock held across catalog/heap/WAL) is the point
                let _ = db.checkpoint_now();
                let _ = db.metrics_text();
            }
        });
    });

    // Quiescent now: the full checkpoint chain (commit_lock → txn map →
    // catalog → versions → heap → WAL) must run clean under the witness.
    db.checkpoint_now().unwrap();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t").unwrap().rows().len(),
        1
    );

    if witness::enabled() {
        let violations = witness::take_violations();
        assert!(
            violations.is_empty(),
            "engine lock traffic violated the hierarchy: {violations:?}"
        );
    }
}
