//! Join-ordering regression suite on the macro-benchmark star schema.
//!
//! Pins three planner behaviors the macro analytics family depends on:
//! the six-table star query gets an edge-connected plan (no cross
//! joins), the DP orderer's cutoff at 10 tables hands wider queries to
//! the greedy orderer without loss of connectivity, and a genuinely
//! disconnected query still plans (cross-join fallback) rather than
//! erroring.

use aimdb_engine::plan::{PhysOp, PhysicalPlan};
use aimdb_engine::Database;
use aimdb_sql::ast::Statement;
use aimdb_sql::parse;

/// Build the analytics star schema (same shape as `aimdb_bench::tpch`)
/// with enough seeded rows for ANALYZE to produce real statistics.
fn star_db() -> Database {
    let db = Database::new();
    for sql in [
        "CREATE TABLE nation (n_id INT, n_region INT, n_name TEXT)",
        "CREATE TABLE dates (d_id INT, d_year INT, d_month INT)",
        "CREATE TABLE cust (c_id INT, c_nation INT, c_segment TEXT)",
        "CREATE TABLE part (p_id INT, p_brand INT, p_category INT)",
        "CREATE TABLE supp (s_id INT, s_nation INT)",
        "CREATE TABLE lineorder (lo_id INT, lo_cust INT, lo_part INT, \
         lo_supp INT, lo_date INT, lo_rev INT)",
    ] {
        db.execute(sql).unwrap();
    }
    for n in 0..24 {
        db.execute(&format!(
            "INSERT INTO nation VALUES ({n}, {}, 'n{n}')",
            n % 5
        ))
        .unwrap();
    }
    for d in 0..36 {
        db.execute(&format!(
            "INSERT INTO dates VALUES ({d}, {}, {})",
            2015 + d / 12,
            d % 12 + 1
        ))
        .unwrap();
    }
    for c in 0..40 {
        db.execute(&format!(
            "INSERT INTO cust VALUES ({c}, {}, 's{}')",
            c % 24,
            c % 5
        ))
        .unwrap();
    }
    for p in 0..30 {
        db.execute(&format!(
            "INSERT INTO part VALUES ({p}, {}, {})",
            p % 8,
            p % 4
        ))
        .unwrap();
    }
    for s in 0..10 {
        db.execute(&format!("INSERT INTO supp VALUES ({s}, {})", s % 24))
            .unwrap();
    }
    let facts: Vec<String> = (0..400)
        .map(|lo| {
            format!(
                "({lo}, {}, {}, {}, {}, {})",
                lo % 40,
                lo % 30,
                lo % 10,
                lo % 36,
                lo * 7 % 1000
            )
        })
        .collect();
    db.execute(&format!("INSERT INTO lineorder VALUES {}", facts.join(",")))
        .unwrap();
    db.execute("ANALYZE").unwrap();
    db
}

fn plan_of(db: &Database, sql: &str) -> PhysicalPlan {
    let stmts = parse(sql).unwrap();
    let Some(Statement::Select(sel)) = stmts.into_iter().next() else {
        panic!("not a SELECT: {sql}");
    };
    db.plan(&sel).unwrap()
}

/// Count cross joins (`NestedLoopJoin` with no predicate) in a plan.
fn cross_joins(plan: &PhysicalPlan) -> usize {
    let here = matches!(&plan.op, PhysOp::NestedLoopJoin { on: None, .. }) as usize;
    here + plan
        .children()
        .iter()
        .map(|c| cross_joins(c))
        .sum::<usize>()
}

/// Count join operators of any kind.
fn joins(plan: &PhysicalPlan) -> usize {
    let here = matches!(
        &plan.op,
        PhysOp::NestedLoopJoin { .. } | PhysOp::HashJoin { .. }
    ) as usize;
    here + plan.children().iter().map(|c| joins(c)).sum::<usize>()
}

/// The macro family's widest query (Q10 shape): six tables, every join
/// predicated. The DP orderer must produce an edge-connected plan —
/// five joins, zero cross joins.
#[test]
fn six_table_star_plans_edge_connected() {
    let db = star_db();
    let plan = plan_of(
        &db,
        "SELECT n.n_region, d.d_year, SUM(l.lo_rev) FROM lineorder l \
         JOIN cust c ON l.lo_cust = c.c_id \
         JOIN nation n ON c.c_nation = n.n_id \
         JOIN dates d ON l.lo_date = d.d_id \
         JOIN supp s ON l.lo_supp = s.s_id \
         JOIN part p ON l.lo_part = p.p_id \
         WHERE p.p_category = 3 \
         GROUP BY n.n_region, d.d_year ORDER BY n.n_region, d.d_year",
    );
    assert_eq!(joins(&plan), 5, "six tables join with five operators");
    assert_eq!(
        cross_joins(&plan),
        0,
        "star query with full join edges must not plan a cross join:\n{plan:?}"
    );
}

/// A chain query at and beyond the DP cutoff. `plan_select` hands ≤10
/// aliases to exhaustive DP and wider queries to the greedy orderer;
/// both sides of the boundary must stay edge-connected.
#[test]
fn chain_queries_stay_connected_across_dp_cutoff() {
    let db = Database::new();
    for i in 0..12 {
        db.execute(&format!("CREATE TABLE t{i} (a INT, b INT)"))
            .unwrap();
        for r in 0..20 {
            db.execute(&format!("INSERT INTO t{i} VALUES ({r}, {})", r + 1))
                .unwrap();
        }
    }
    db.execute("ANALYZE").unwrap();
    // n tables chained t0.b = t1.a, t1.b = t2.a, ...
    let chain_sql = |n: usize| {
        let mut sql = String::from("SELECT COUNT(*) FROM t0");
        for i in 1..n {
            sql.push_str(&format!(" JOIN t{i} ON t{}.b = t{i}.a", i - 1));
        }
        sql
    };
    // 10 tables: the last width the exhaustive DP orderer handles.
    let plan = plan_of(&db, &chain_sql(10));
    assert_eq!(joins(&plan), 9);
    assert_eq!(cross_joins(&plan), 0, "10-table chain (DP) is connected");
    // 12 tables: over the cutoff, greedy ordering — still connected.
    let plan = plan_of(&db, &chain_sql(12));
    assert_eq!(joins(&plan), 11);
    assert_eq!(
        cross_joins(&plan),
        0,
        "12-table chain (greedy) is connected"
    );
    // The chain executes, and its count pins correctness of either
    // orderer: each link matches exactly 19 rows end to end.
    let r = db.execute(&chain_sql(12)).unwrap();
    assert_eq!(
        r.scalar().unwrap(),
        &aimdb_common::Value::Int(20 - 11),
        "12-way chain join row count"
    );
}

/// A query whose join graph is disconnected (no predicate between the
/// two tables) must still plan — as an explicit cross join — rather
/// than surface the planner's disconnected-graph error, which is
/// reserved for missing base access paths.
#[test]
fn disconnected_query_plans_as_cross_join() {
    let db = star_db();
    let plan = plan_of(&db, "SELECT COUNT(*) FROM supp s, nation n");
    assert_eq!(joins(&plan), 1);
    assert_eq!(cross_joins(&plan), 1, "cartesian product is explicit");
    let r = db.execute("SELECT COUNT(*) FROM supp s, nation n").unwrap();
    assert_eq!(r.scalar().unwrap(), &aimdb_common::Value::Int(240));
}
