//! Learning-based materialized-view advisor (E3).
//!
//! Following Han et al. (ICDE'21), the advisor *learns to estimate the
//! benefit* of each materialized-view candidate from features of the
//! candidate and the workload, then selects a set under a storage budget.
//! The learned benefit model (an MLP regressor) is trained on measured
//! benefits from past materialization decisions; the baselines use no
//! views or a size-based heuristic.
//!
//! The simulation: queries share (table, predicate-signature) subplans; a
//! materialized view for a signature turns all matching subplans into a
//! cheap scan of the view's rows.

use std::collections::{HashMap, HashSet};

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_common::{AimError, Result};
use aimdb_ml::data::Dataset;
use aimdb_ml::tree::{RandomForest, TreeParams, TreeTask};

/// A materialized-view candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewCandidate {
    pub id: usize,
    /// Rows the view would hold (its storage footprint).
    pub view_rows: f64,
    /// Rows of the base table(s) the view's subplan reads today.
    pub base_rows: f64,
    /// How many workload queries can use this view.
    pub matching_queries: usize,
    /// Total frequency-weight of those queries.
    pub query_weight: f64,
    /// Maintenance cost per update batch (writes to base tables).
    pub maintenance: f64,
}

impl ViewCandidate {
    /// True benefit: what the workload saves per period if this view is
    /// materialized (cost model: scan base vs scan view, minus upkeep).
    pub fn true_benefit(&self) -> f64 {
        let per_query_saving = (self.base_rows - self.view_rows).max(0.0) * 0.01;
        self.query_weight * per_query_saving - self.maintenance
    }

    /// Feature vector for the learned benefit estimator.
    pub fn features(&self) -> Vec<f64> {
        vec![
            (self.view_rows + 1.0).ln(),
            (self.base_rows + 1.0).ln(),
            self.matching_queries as f64,
            self.query_weight.ln_1p(),
            self.maintenance.ln_1p(),
            (self.base_rows / (self.view_rows + 1.0)).ln_1p(),
        ]
    }
}

/// Generate a synthetic workload's view candidates with controlled
/// characteristics (some big-but-useless, some small-and-hot).
pub fn generate_candidates(n: usize, seed: u64) -> Vec<ViewCandidate> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            let base_rows = 10f64.powf(rng.gen_range(3.0..6.0));
            let reduction = rng.gen_range(1.2..200.0);
            let view_rows = (base_rows / reduction).max(10.0);
            let matching = rng.gen_range(1..12usize);
            let weight = matching as f64 * rng.gen_range(0.05..0.6);
            // maintenance scales with base-table write volume, so large
            // views over hot tables can cost more than they save
            let maintenance = base_rows * rng.gen_range(0.001..0.02);
            ViewCandidate {
                id,
                view_rows,
                base_rows,
                matching_queries: matching,
                query_weight: weight,
                maintenance,
            }
        })
        .collect()
}

/// A selection of views and its realized (true) net benefit.
#[derive(Debug, Clone)]
pub struct ViewSelection {
    pub method: String,
    pub chosen: Vec<usize>,
    pub total_benefit: f64,
    pub storage_used: f64,
}

fn select_by_score(
    method: &str,
    cands: &[ViewCandidate],
    score: impl Fn(&ViewCandidate) -> f64,
    storage_budget: f64,
) -> ViewSelection {
    // greedy by score density (score per storage unit)
    let mut ranked: Vec<&ViewCandidate> = cands.iter().collect();
    ranked.sort_by(|a, b| {
        let da = score(a) / a.view_rows.max(1.0);
        let db = score(b) / b.view_rows.max(1.0);
        db.total_cmp(&da)
    });
    let mut chosen = Vec::new();
    let mut used = 0.0;
    let mut benefit = 0.0;
    for c in ranked {
        if score(c) <= 0.0 {
            continue;
        }
        if used + c.view_rows > storage_budget {
            continue;
        }
        used += c.view_rows;
        benefit += c.true_benefit();
        chosen.push(c.id);
    }
    chosen.sort_unstable();
    ViewSelection {
        method: method.into(),
        chosen,
        total_benefit: benefit,
        storage_used: used,
    }
}

/// Baseline: no materialized views.
pub fn select_none() -> ViewSelection {
    ViewSelection {
        method: "none".into(),
        chosen: vec![],
        total_benefit: 0.0,
        storage_used: 0.0,
    }
}

/// Baseline heuristic: prefer the smallest views that match the most
/// queries — ignores actual savings and maintenance.
pub fn select_heuristic(cands: &[ViewCandidate], storage_budget: f64) -> ViewSelection {
    select_by_score(
        "size-heuristic",
        cands,
        |c| c.matching_queries as f64 / (c.view_rows + 1.0).ln(),
        storage_budget,
    )
}

/// Oracle: selects by true benefit (upper reference).
pub fn select_oracle(cands: &[ViewCandidate], storage_budget: f64) -> ViewSelection {
    select_by_score("oracle", cands, ViewCandidate::true_benefit, storage_budget)
}

/// The learned benefit estimator, trained on observed (candidate,
/// measured-benefit) pairs from historical materialization decisions.
/// Trains a random-forest regressor on a sign-preserving log transform of
/// the benefit (benefits span orders of magnitude in both signs).
pub struct BenefitModel {
    forest: RandomForest,
}

fn signed_log(b: f64) -> f64 {
    b.signum() * b.abs().ln_1p()
}

fn signed_exp(t: f64) -> f64 {
    t.signum() * (t.abs().exp_m1())
}

impl BenefitModel {
    /// Train from historical candidates whose benefit was observed
    /// (possibly with measurement noise).
    pub fn train(history: &[ViewCandidate], noise: f64, seed: u64) -> Result<Self> {
        if history.is_empty() {
            return Err(AimError::InvalidInput("no training history".into()));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = history.iter().map(ViewCandidate::features).collect();
        let y: Vec<f64> = history
            .iter()
            .map(|c| c.true_benefit() + noise * aimdb_common::synth::gaussian(&mut rng))
            .collect();
        let y: Vec<f64> = y.into_iter().map(signed_log).collect();
        let ds = Dataset::new(x, y)?;
        let forest = RandomForest::fit(
            &ds,
            40,
            TreeParams {
                max_depth: 14,
                min_samples_split: 3,
                task: TreeTask::Regression,
                max_features: Some(4),
                seed,
            },
        )?;
        Ok(BenefitModel { forest })
    }

    pub fn predict_benefit(&self, c: &ViewCandidate) -> f64 {
        signed_exp(self.forest.predict_one(&c.features()))
    }

    /// Learned selection: greedy by predicted benefit density.
    pub fn select(&self, cands: &[ViewCandidate], storage_budget: f64) -> ViewSelection {
        select_by_score(
            "learned(benefit-mlp)",
            cands,
            |c| self.predict_benefit(c),
            storage_budget,
        )
    }
}

/// Dynamic-workload evaluation: the workload's query weights shift each
/// epoch; the learned advisor re-selects with its model, the heuristic
/// keeps its static choice. Returns cumulative benefits (learned,
/// heuristic, oracle).
pub fn dynamic_workload_run(
    model: &BenefitModel,
    mut cands: Vec<ViewCandidate>,
    storage_budget: f64,
    epochs: usize,
    seed: u64,
) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let static_choice: HashSet<usize> = select_heuristic(&cands, storage_budget)
        .chosen
        .into_iter()
        .collect();
    let (mut learned_total, mut heuristic_total, mut oracle_total) = (0.0, 0.0, 0.0);
    for _ in 0..epochs {
        // drift: query weights change multiplicatively
        for c in cands.iter_mut() {
            c.query_weight = (c.query_weight * rng.gen_range(0.5..2.0)).clamp(0.1, 1e4);
        }
        learned_total += model.select(&cands, storage_budget).total_benefit;
        oracle_total += select_oracle(&cands, storage_budget).total_benefit;
        let benefit_map: HashMap<usize, f64> =
            cands.iter().map(|c| (c.id, c.true_benefit())).collect();
        heuristic_total += static_choice
            .iter()
            .filter_map(|id| benefit_map.get(id))
            .sum::<f64>();
    }
    (learned_total, heuristic_total, oracle_total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_have_mixed_benefit_signs() {
        let cands = generate_candidates(100, 1);
        let pos = cands.iter().filter(|c| c.true_benefit() > 0.0).count();
        assert!(pos > 10 && pos < 100, "positive-benefit count {pos}");
    }

    #[test]
    fn oracle_beats_heuristic_and_none() {
        let cands = generate_candidates(80, 2);
        let budget = 50_000.0;
        let oracle = select_oracle(&cands, budget);
        let heur = select_heuristic(&cands, budget);
        assert!(oracle.total_benefit >= heur.total_benefit);
        assert!(oracle.total_benefit > 0.0);
        assert!(oracle.storage_used <= budget);
        assert!(heur.storage_used <= budget);
        assert_eq!(select_none().total_benefit, 0.0);
    }

    #[test]
    fn learned_model_ranks_candidates_like_truth() {
        let history = generate_candidates(400, 3);
        let model = BenefitModel::train(&history, 5.0, 7).unwrap();
        let test = generate_candidates(100, 4);
        // rank correlation proxy: top-20 by prediction should overlap
        // top-20 by truth well above chance (chance ≈ 4)
        let top_by = |key: &dyn Fn(&ViewCandidate) -> f64| -> HashSet<usize> {
            let mut v: Vec<&ViewCandidate> = test.iter().collect();
            v.sort_by(|a, b| key(b).total_cmp(&key(a)));
            v[..20].iter().map(|c| c.id).collect()
        };
        let pred_top = top_by(&|c| model.predict_benefit(c));
        let true_top = top_by(&ViewCandidate::true_benefit);
        let overlap = pred_top.intersection(&true_top).count();
        assert!(overlap >= 10, "overlap {overlap}/20");
    }

    #[test]
    fn learned_selection_beats_heuristic() {
        let history = generate_candidates(400, 5);
        let model = BenefitModel::train(&history, 5.0, 9).unwrap();
        let test = generate_candidates(120, 6);
        let budget = 80_000.0;
        let learned = model.select(&test, budget);
        let heur = select_heuristic(&test, budget);
        let oracle = select_oracle(&test, budget);
        assert!(
            learned.total_benefit > heur.total_benefit,
            "learned {} vs heuristic {}",
            learned.total_benefit,
            heur.total_benefit
        );
        assert!(learned.total_benefit <= oracle.total_benefit + 1e-9);
        assert!(learned.storage_used <= budget);
    }

    #[test]
    fn dynamic_workload_favors_adaptive_advisor() {
        let history = generate_candidates(400, 8);
        let model = BenefitModel::train(&history, 5.0, 9).unwrap();
        let cands = generate_candidates(100, 10);
        let (learned, heuristic, oracle) = dynamic_workload_run(&model, cands, 60_000.0, 10, 11);
        assert!(
            learned > heuristic,
            "learned {learned} vs static heuristic {heuristic}"
        );
        assert!(learned <= oracle + 1e-9);
    }

    #[test]
    fn empty_history_rejected() {
        assert!(BenefitModel::train(&[], 0.0, 1).is_err());
    }
}
