//! Learned transaction management (E10).
//!
//! Two halves, matching the tutorial's split:
//!
//! **Transaction prediction** (Ma et al., SIGMOD'18): forecast workload
//! arrival rates so the system can provision ahead of the curve — covered
//! by the forecasters in `aimdb-ml` and exercised here on OLTP traces.
//!
//! **Transaction scheduling** (Sheng et al.): "a learning based
//! transaction scheduling method, which can balance concurrency and
//! conflict rates using supervised algorithms". Transactions carry
//! read/write sets over a keyspace with hot keys; executing two
//! conflicting transactions in the same concurrent batch aborts one
//! (retry later). FIFO packs batches blindly; the learned scheduler
//! predicts pairwise conflict probability with a logistic model over
//! cheap transaction features (hot-key bitmap sketches) and packs batches
//! greedily to avoid predicted conflicts.

use std::collections::HashSet;

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_common::synth::Zipf;
use aimdb_common::Result;
use aimdb_ml::data::Dataset;
use aimdb_ml::linear::{GdParams, LogisticRegression};

/// A simulated OLTP transaction.
#[derive(Debug, Clone)]
pub struct Txn {
    pub id: usize,
    pub reads: HashSet<u64>,
    pub writes: HashSet<u64>,
}

impl Txn {
    /// True conflict: write-write or read-write intersection.
    pub fn conflicts_with(&self, other: &Txn) -> bool {
        self.writes.iter().any(|k| other.writes.contains(k))
            || self.writes.iter().any(|k| other.reads.contains(k))
            || other.writes.iter().any(|k| self.reads.contains(k))
    }

    /// Cheap feature sketch: membership of reads/writes in `buckets`
    /// hash buckets (what a scheduler can compute without set
    /// intersection) plus set sizes.
    pub fn sketch(&self, buckets: usize) -> Vec<f64> {
        let mut f = vec![0.0; 2 * buckets + 2];
        for k in &self.reads {
            f[(k % buckets as u64) as usize] = 1.0;
        }
        for k in &self.writes {
            f[buckets + (k % buckets as u64) as usize] = 1.0;
        }
        f[2 * buckets] = self.reads.len() as f64;
        f[2 * buckets + 1] = self.writes.len() as f64;
        f
    }
}

/// Generate an OLTP workload: mostly short transactions over a Zipfian
/// keyspace (hot keys collide often).
pub fn generate_txns(n: usize, keyspace: usize, skew: f64, seed: u64) -> Vec<Txn> {
    let mut rng = StdRng::seed_from_u64(seed);
    let zipf = Zipf::new(keyspace, skew);
    (0..n)
        .map(|id| {
            let n_reads = rng.gen_range(1..5);
            let n_writes = rng.gen_range(1..3);
            let reads: HashSet<u64> = (0..n_reads).map(|_| zipf.sample(&mut rng) as u64).collect();
            let writes: HashSet<u64> = (0..n_writes)
                .map(|_| zipf.sample(&mut rng) as u64)
                .collect();
            Txn { id, reads, writes }
        })
        .collect()
}

/// Outcome of running a schedule.
#[derive(Debug, Clone)]
pub struct ScheduleReport {
    pub method: String,
    /// Completed transactions per batch slot (higher is better).
    pub throughput: f64,
    pub aborts: usize,
    pub batches: usize,
}

/// Execute batches: within a batch, conflicting pairs abort the
/// later-positioned transaction, which retries in a later batch.
pub fn execute_batches(
    mut queue: Vec<Txn>,
    batch_size: usize,
    method: &str,
    mut pack: impl FnMut(&[Txn], usize) -> Vec<usize>,
) -> ScheduleReport {
    let total = queue.len();
    let mut aborts = 0usize;
    let mut batches = 0usize;
    let mut completed = 0usize;
    while !queue.is_empty() {
        batches += 1;
        // pick batch members (indices into queue)
        let mut picked = pack(&queue, batch_size);
        picked.sort_unstable();
        picked.dedup();
        picked.truncate(batch_size);
        if picked.is_empty() {
            picked = (0..queue.len().min(batch_size)).collect();
        }
        // detect conflicts within the batch: later txn aborts
        let mut ok: Vec<usize> = Vec::new();
        let mut aborted: Vec<usize> = Vec::new();
        for &i in &picked {
            if ok.iter().any(|&j| queue[i].conflicts_with(&queue[j])) {
                aborted.push(i);
                aborts += 1;
            } else {
                ok.push(i);
            }
        }
        completed += ok.len();
        // remove completed from the queue (keep aborted for retry)
        let done: HashSet<usize> = ok.into_iter().collect();
        let mut keep = Vec::with_capacity(queue.len() - done.len());
        for (i, t) in queue.into_iter().enumerate() {
            if !done.contains(&i) {
                keep.push(t);
            }
        }
        queue = keep;
        if batches > total * 4 + 16 {
            break; // safety against livelock
        }
    }
    ScheduleReport {
        method: method.into(),
        throughput: completed as f64 / (batches.max(1) * 1) as f64,
        aborts,
        batches,
    }
}

/// FIFO: take the next `batch_size` transactions in arrival order.
pub fn schedule_fifo(txns: Vec<Txn>, batch_size: usize) -> ScheduleReport {
    execute_batches(txns, batch_size, "fifo", |q, b| {
        (0..q.len().min(b)).collect()
    })
}

/// Oracle: greedy packing using exact conflict checks (upper reference).
pub fn schedule_oracle(txns: Vec<Txn>, batch_size: usize) -> ScheduleReport {
    execute_batches(txns, batch_size, "oracle", |q, b| {
        let mut picked: Vec<usize> = Vec::new();
        for i in 0..q.len() {
            if picked.len() >= b {
                break;
            }
            if picked.iter().all(|&j| !q[i].conflicts_with(&q[j])) {
                picked.push(i);
            }
        }
        picked
    })
}

/// The learned conflict predictor.
pub struct ConflictModel {
    model: LogisticRegression,
    buckets: usize,
}

impl ConflictModel {
    /// Pair features: elementwise AND of the two sketches' write/read
    /// bucket maps (bucket collisions) plus size products.
    fn pair_features(a: &Txn, b: &Txn, buckets: usize) -> Vec<f64> {
        let sa = a.sketch(buckets);
        let sb = b.sketch(buckets);
        let mut f = Vec::with_capacity(buckets + 3);
        // write-write and write-read bucket collisions
        for i in 0..buckets {
            let ww = sa[buckets + i] * sb[buckets + i];
            let wr = sa[buckets + i] * sb[i] + sa[i] * sb[buckets + i];
            f.push(ww + 0.5 * wr);
        }
        f.push(sa[2 * buckets + 1] * sb[2 * buckets + 1]); // |Wa|*|Wb|
        f.push(sa[2 * buckets] * sb[2 * buckets + 1] + sb[2 * buckets] * sa[2 * buckets + 1]);
        f.push(1.0);
        f
    }

    /// Train on historical transaction pairs labeled by whether they
    /// actually conflicted.
    pub fn train(history: &[Txn], buckets: usize, pairs: usize, seed: u64) -> Result<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(pairs);
        let mut y = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let a = &history[rng.gen_range(0..history.len())];
            let b = &history[rng.gen_range(0..history.len())];
            if a.id == b.id {
                continue;
            }
            x.push(Self::pair_features(a, b, buckets));
            y.push(if a.conflicts_with(b) { 1.0 } else { 0.0 });
        }
        let ds = Dataset::new(x, y)?;
        let model = LogisticRegression::fit(
            &ds,
            GdParams {
                epochs: 150,
                lr: 0.1,
                ..Default::default()
            },
        )?;
        Ok(ConflictModel { model, buckets })
    }

    pub fn conflict_prob(&self, a: &Txn, b: &Txn) -> f64 {
        self.model
            .predict_proba(&Self::pair_features(a, b, self.buckets))
    }

    /// Learned scheduling: greedy packing by predicted conflict
    /// probability (admit a txn if its predicted conflict with every
    /// batch member is below `threshold`).
    pub fn schedule(&self, txns: Vec<Txn>, batch_size: usize, threshold: f64) -> ScheduleReport {
        execute_batches(txns, batch_size, "learned(conflict-model)", |q, b| {
            let mut picked: Vec<usize> = Vec::new();
            for i in 0..q.len() {
                if picked.len() >= b {
                    break;
                }
                if picked
                    .iter()
                    .all(|&j| self.conflict_prob(&q[i], &q[j]) < threshold)
                {
                    picked.push(i);
                }
            }
            picked
        })
    }
}

/// Workload forecasting half of E10: one-step MAPE of each forecaster on
/// a seasonal OLTP arrival trace.
pub fn forecast_comparison(trace: &[f64], period: usize) -> Vec<(String, f64)> {
    use aimdb_ml::forecast::*;
    use aimdb_ml::metrics::mape;
    let mut out = Vec::new();
    let runs: Vec<(&str, Box<dyn Forecaster>)> = vec![
        ("last-value", Box::new(LastValue::default())),
        ("ewma", Box::new(Ewma::new(0.4))),
        ("holt", Box::new(Holt::new(0.5, 0.2))),
        ("seasonal-naive", Box::new(SeasonalNaive::new(period))),
        ("ar(2p)", Box::new(ArModel::new(2 * period.min(12), 50))),
    ];
    for (name, mut f) in runs {
        let (p, t) = run_forecaster(f.as_mut(), trace);
        let skip = period.min(p.len());
        out.push((name.to_string(), mape(&p[skip..], &t[skip..])));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimdb_common::synth::seasonal_trace;

    fn hot_workload(seed: u64) -> Vec<Txn> {
        generate_txns(300, 200, 1.1, seed)
    }

    #[test]
    fn conflicts_detected_symmetrically() {
        let a = Txn {
            id: 0,
            reads: [1].into(),
            writes: [2].into(),
        };
        let b = Txn {
            id: 1,
            reads: [2].into(),
            writes: [3].into(),
        };
        let c = Txn {
            id: 2,
            reads: [9].into(),
            writes: [8].into(),
        };
        assert!(a.conflicts_with(&b)); // a writes 2, b reads 2
        assert!(b.conflicts_with(&a));
        assert!(!a.conflicts_with(&c));
    }

    #[test]
    fn oracle_beats_fifo_on_hot_keys() {
        let txns = hot_workload(1);
        let fifo = schedule_fifo(txns.clone(), 8);
        let oracle = schedule_oracle(txns, 8);
        assert!(
            oracle.throughput > fifo.throughput,
            "oracle {} vs fifo {}",
            oracle.throughput,
            fifo.throughput
        );
        assert!(oracle.aborts < fifo.aborts);
    }

    #[test]
    fn conflict_model_learns_real_signal() {
        let history = generate_txns(800, 200, 1.1, 2);
        let model = ConflictModel::train(&history, 32, 4000, 3).unwrap();
        let test = generate_txns(300, 200, 1.1, 4);
        // measure accuracy against truth on fresh pairs
        let mut correct = 0;
        let mut total = 0;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let a = &test[rng.gen_range(0..test.len())];
            let b = &test[rng.gen_range(0..test.len())];
            if a.id == b.id {
                continue;
            }
            let pred = model.conflict_prob(a, b) >= 0.5;
            if pred == a.conflicts_with(b) {
                correct += 1;
            }
            total += 1;
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "pairwise conflict accuracy {acc}");
    }

    #[test]
    fn learned_scheduler_between_fifo_and_oracle() {
        let history = generate_txns(800, 200, 1.1, 6);
        let model = ConflictModel::train(&history, 32, 4000, 7).unwrap();
        let txns = hot_workload(8);
        let fifo = schedule_fifo(txns.clone(), 8);
        let oracle = schedule_oracle(txns.clone(), 8);
        let learned = model.schedule(txns, 8, 0.5);
        assert!(
            learned.throughput > fifo.throughput,
            "learned {} vs fifo {}",
            learned.throughput,
            fifo.throughput
        );
        assert!(learned.throughput <= oracle.throughput * 1.05);
        assert!(learned.aborts < fifo.aborts);
    }

    #[test]
    fn all_transactions_complete() {
        let txns = hot_workload(9);
        let n = txns.len();
        for rep in [
            schedule_fifo(txns.clone(), 8),
            schedule_oracle(txns.clone(), 8),
        ] {
            // completed = batches * throughput
            let completed = (rep.throughput * rep.batches as f64).round() as usize;
            assert_eq!(completed, n, "{} lost transactions", rep.method);
        }
    }

    #[test]
    fn forecasting_learned_beats_naive_on_seasonal_oltp() {
        let trace = seasonal_trace(24 * 14, 24, 500.0, 200.0, 0.5, 10.0, None, 3);
        let results = forecast_comparison(&trace, 24);
        let get = |name: &str| {
            results
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, m)| *m)
                .unwrap()
        };
        assert!(get("ar(2p)") < get("last-value"), "{results:?}");
        assert!(get("seasonal-naive") < get("last-value"), "{results:?}");
    }
}
