//! Learned SQL rewriter (E4a).
//!
//! The tutorial: "there are numerous rewrite orders for a slow query …
//! traditional empirical query rewriting methods only rewrite in a fixed
//! order and may derive suboptimal queries. Instead, deep reinforcement
//! learning can be used to judiciously select the appropriate rules and
//! apply the rules in a good order."
//!
//! We implement four classic predicate-rewrite rules whose effects cascade
//! (folding enables simplification enables contradiction detection), a
//! fixed-order single-pass baseline, an exhaustive fixpoint reference, and
//! an MCTS rewriter that searches over rule sequences with a bounded
//! application budget.

use rand::rngs::StdRng;

use aimdb_common::Value;
use aimdb_ml::mcts::{mcts_plan, MctsEnv};
use aimdb_sql::expr::{BinaryOp, UnaryOp};
use aimdb_sql::Expr;

/// The rewrite rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Evaluate operators over literals: `1 + 2` → `3`, `2 < 1` → FALSE.
    ConstFold,
    /// Boolean identities: `x AND TRUE` → `x`, `x OR TRUE` → TRUE,
    /// `NOT NOT x` → `x`, `NOT TRUE` → FALSE.
    SimplifyLogic,
    /// `a >= lo AND a <= hi` → `a BETWEEN lo AND hi`.
    MergeRange,
    /// `a = c1 AND a = c2` (c1 ≠ c2) → FALSE;
    /// `a BETWEEN lo AND hi` with lo > hi → FALSE.
    DetectContradiction,
}

impl Rule {
    pub const ALL: [Rule; 4] = [
        Rule::ConstFold,
        Rule::SimplifyLogic,
        Rule::MergeRange,
        Rule::DetectContradiction,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Rule::ConstFold => "const-fold",
            Rule::SimplifyLogic => "simplify-logic",
            Rule::MergeRange => "merge-range",
            Rule::DetectContradiction => "detect-contradiction",
        }
    }
}

/// Complexity of an expression: node count. The rewriter's objective is
/// minimizing this (a proxy for per-row predicate evaluation work), with
/// constant-FALSE/TRUE results being maximally cheap.
pub fn expr_size(e: &Expr) -> usize {
    match e {
        Expr::Column { .. } | Expr::Literal(_) => 1,
        Expr::Binary { left, right, .. } => 1 + expr_size(left) + expr_size(right),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Like { expr, .. } => {
            1 + expr_size(expr)
        }
        Expr::Between { expr, lo, hi } => 1 + expr_size(expr) + expr_size(lo) + expr_size(hi),
        Expr::InList { expr, list, .. } => {
            1 + expr_size(expr) + list.iter().map(expr_size).sum::<usize>()
        }
        Expr::Function { args, .. } => 1 + args.iter().map(expr_size).sum::<usize>(),
    }
}

/// Apply one rule everywhere in the tree (one pass). Returns `None` if
/// nothing changed.
pub fn apply_rule(e: &Expr, rule: Rule) -> Option<Expr> {
    let out = rewrite(e, rule);
    if &out == e {
        None
    } else {
        Some(out)
    }
}

fn rewrite(e: &Expr, rule: Rule) -> Expr {
    // rewrite children first (bottom-up single pass)
    let e = match e {
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite(left, rule)),
            op: *op,
            right: Box::new(rewrite(right, rule)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite(expr, rule)),
        },
        Expr::Between { expr, lo, hi } => Expr::Between {
            expr: Box::new(rewrite(expr, rule)),
            lo: Box::new(rewrite(lo, rule)),
            hi: Box::new(rewrite(hi, rule)),
        },
        other => other.clone(),
    };
    match rule {
        Rule::ConstFold => fold(&e),
        Rule::SimplifyLogic => simplify(&e),
        Rule::MergeRange => merge_range(&e),
        Rule::DetectContradiction => contradiction(&e),
    }
}

fn as_lit(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Literal(v) => Some(v),
        _ => None,
    }
}

fn fold(e: &Expr) -> Expr {
    if let Expr::Binary { left, op, right } = e {
        if let (Some(l), Some(r)) = (as_lit(left), as_lit(right)) {
            // reuse the runtime evaluator on a dummy row
            let probe = Expr::Binary {
                left: Box::new(Expr::Literal(l.clone())),
                op: *op,
                right: Box::new(Expr::Literal(r.clone())),
            };
            if let Ok(v) = probe.eval(
                &aimdb_common::Schema::default(),
                &aimdb_common::Row::default(),
                &aimdb_sql::expr::BuiltinFns,
            ) {
                return Expr::Literal(v);
            }
        }
    }
    if let Expr::Unary {
        op: UnaryOp::Neg,
        expr,
    } = e
    {
        if let Some(Value::Int(i)) = as_lit(expr) {
            return Expr::Literal(Value::Int(-i));
        }
        if let Some(Value::Float(f)) = as_lit(expr) {
            return Expr::Literal(Value::Float(-f));
        }
    }
    e.clone()
}

fn simplify(e: &Expr) -> Expr {
    match e {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => match (as_lit(left), as_lit(right)) {
            (Some(Value::Bool(true)), _) => (**right).clone(),
            (_, Some(Value::Bool(true))) => (**left).clone(),
            (Some(Value::Bool(false)), _) | (_, Some(Value::Bool(false))) => {
                Expr::Literal(Value::Bool(false))
            }
            _ => e.clone(),
        },
        Expr::Binary {
            left,
            op: BinaryOp::Or,
            right,
        } => match (as_lit(left), as_lit(right)) {
            (Some(Value::Bool(false)), _) => (**right).clone(),
            (_, Some(Value::Bool(false))) => (**left).clone(),
            (Some(Value::Bool(true)), _) | (_, Some(Value::Bool(true))) => {
                Expr::Literal(Value::Bool(true))
            }
            _ => e.clone(),
        },
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => match expr.as_ref() {
            Expr::Literal(Value::Bool(b)) => Expr::Literal(Value::Bool(!b)),
            Expr::Unary {
                op: UnaryOp::Not,
                expr: inner,
            } => (**inner).clone(),
            _ => e.clone(),
        },
        _ => e.clone(),
    }
}

fn merge_range(e: &Expr) -> Expr {
    // a >= lo AND a <= hi  (literal bounds, same column)
    if let Expr::Binary {
        left,
        op: BinaryOp::And,
        right,
    } = e
    {
        if let (
            Expr::Binary {
                left: c1,
                op: BinaryOp::Gte,
                right: lo,
            },
            Expr::Binary {
                left: c2,
                op: BinaryOp::Lte,
                right: hi,
            },
        ) = (left.as_ref(), right.as_ref())
        {
            if c1 == c2 && as_lit(lo).is_some() && as_lit(hi).is_some() {
                if let Expr::Column { .. } = c1.as_ref() {
                    return Expr::Between {
                        expr: c1.clone(),
                        lo: lo.clone(),
                        hi: hi.clone(),
                    };
                }
            }
        }
    }
    e.clone()
}

fn contradiction(e: &Expr) -> Expr {
    match e {
        // a = c1 AND a = c2 with different constants
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            if let (
                Expr::Binary {
                    left: c1,
                    op: BinaryOp::Eq,
                    right: v1,
                },
                Expr::Binary {
                    left: c2,
                    op: BinaryOp::Eq,
                    right: v2,
                },
            ) = (left.as_ref(), right.as_ref())
            {
                if c1 == c2 {
                    if let (Some(a), Some(b)) = (as_lit(v1), as_lit(v2)) {
                        if a != b {
                            return Expr::Literal(Value::Bool(false));
                        }
                    }
                }
            }
            e.clone()
        }
        Expr::Between { expr: _, lo, hi } => {
            if let (Some(l), Some(h)) = (as_lit(lo), as_lit(hi)) {
                if let Some(std::cmp::Ordering::Greater) = l.sql_cmp(h) {
                    return Expr::Literal(Value::Bool(false));
                }
            }
            e.clone()
        }
        _ => e.clone(),
    }
}

/// Outcome of a rewrite strategy.
#[derive(Debug, Clone)]
pub struct RewriteReport {
    pub method: String,
    pub final_expr: Expr,
    pub initial_size: usize,
    pub final_size: usize,
    pub applications: usize,
}

/// The baseline's rule order. Rule registries conventionally order rules
/// specific-to-general (try the strongest rewrite first); with cascading
/// rules that order misses enablements — exactly the "fixed order may
/// derive suboptimal queries" problem the tutorial describes.
pub const FIXED_ORDER: [Rule; 4] = [
    Rule::DetectContradiction,
    Rule::MergeRange,
    Rule::SimplifyLogic,
    Rule::ConstFold,
];

/// Baseline: one pass applying each rule once in registry order.
pub fn rewrite_fixed(e: &Expr) -> RewriteReport {
    let initial = expr_size(e);
    let mut cur = e.clone();
    let mut apps = 0;
    for r in FIXED_ORDER {
        apps += 1;
        if let Some(next) = apply_rule(&cur, r) {
            cur = next;
        }
    }
    RewriteReport {
        method: "fixed-order".into(),
        initial_size: initial,
        final_size: expr_size(&cur),
        final_expr: cur,
        applications: apps,
    }
}

/// Reference: apply rules to a fixpoint (best possible result, highest
/// application count).
pub fn rewrite_fixpoint(e: &Expr) -> RewriteReport {
    let initial = expr_size(e);
    let mut cur = e.clone();
    let mut apps = 0;
    loop {
        let mut changed = false;
        for r in Rule::ALL {
            apps += 1;
            if let Some(next) = apply_rule(&cur, r) {
                cur = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    RewriteReport {
        method: "fixpoint".into(),
        initial_size: initial,
        final_size: expr_size(&cur),
        final_expr: cur,
        applications: apps,
    }
}

struct RewriteEnv {
    budget: usize,
}

impl MctsEnv for RewriteEnv {
    type State = (Expr, usize); // (expr, applications used)
    type Action = Rule;

    fn actions(&self, s: &(Expr, usize)) -> Vec<Rule> {
        if s.1 >= self.budget {
            return vec![];
        }
        Rule::ALL
            .into_iter()
            .filter(|r| apply_rule(&s.0, *r).is_some())
            .collect()
    }

    fn apply(&self, s: &(Expr, usize), a: &Rule) -> (Expr, usize) {
        let next = apply_rule(&s.0, *a).unwrap_or_else(|| s.0.clone());
        (next, s.1 + 1)
    }

    fn terminal_reward(&self, s: &(Expr, usize)) -> f64 {
        // size reduction, scaled to [0,1]-ish; constant result is best
        let size = expr_size(&s.0) as f64;
        let bonus = match &s.0 {
            Expr::Literal(Value::Bool(_)) => 0.5,
            _ => 0.0,
        };
        1.0 / size + bonus
    }

    fn rollout(&self, state: &(Expr, usize), rng: &mut StdRng) -> f64 {
        use rand::Rng;
        let mut s = state.clone();
        loop {
            let acts = self.actions(&s);
            if acts.is_empty() {
                return self.terminal_reward(&s);
            }
            let a = acts[rng.gen_range(0..acts.len())];
            s = self.apply(&s, &a);
        }
    }
}

/// Learned rewriter: MCTS over rule sequences with a bounded application
/// budget — fewer applications than a fixpoint, better results than a
/// single fixed-order pass.
pub fn rewrite_mcts(e: &Expr, budget: usize, iters: usize, seed: u64) -> RewriteReport {
    let env = RewriteEnv { budget };
    let initial = expr_size(e);
    let (plan, (final_expr, _)) = mcts_plan(&env, (e.clone(), 0), iters, 1.0, seed);
    RewriteReport {
        method: "mcts".into(),
        initial_size: initial,
        final_size: expr_size(&final_expr),
        final_expr,
        applications: plan.len(),
    }
}

/// A workload of rewrite-rich predicates exercising rule cascades: the
/// contradiction only becomes visible after folding and simplification.
pub fn cascade_workload() -> Vec<Expr> {
    use aimdb_sql::Expr as E;
    let c = |n: &str| E::col(n);
    let l = |v: i64| E::lit(v);
    vec![
        // (a >= 1+1 AND a <= 10-8) AND b = 5 — fold → merge → BETWEEN 2..2
        E::binary(
            E::binary(
                E::binary(c("a"), BinaryOp::Gte, E::binary(l(1), BinaryOp::Add, l(1))),
                BinaryOp::And,
                E::binary(c("a"), BinaryOp::Lte, E::binary(l(10), BinaryOp::Sub, l(8))),
            ),
            BinaryOp::And,
            E::binary(c("b"), BinaryOp::Eq, l(5)),
        ),
        // a = 3 AND a = 2+2 — fold reveals contradiction
        E::binary(
            E::binary(c("a"), BinaryOp::Eq, l(3)),
            BinaryOp::And,
            E::binary(c("a"), BinaryOp::Eq, E::binary(l(2), BinaryOp::Add, l(2))),
        ),
        // (x > 0 AND TRUE) AND (1 = 1) — simplify + fold chains
        E::binary(
            E::binary(
                E::binary(c("x"), BinaryOp::Gt, l(0)),
                BinaryOp::And,
                E::lit(true),
            ),
            BinaryOp::And,
            E::binary(l(1), BinaryOp::Eq, l(1)),
        ),
        // a >= 5+1 AND a <= 4 — fold → merge → contradiction (lo > hi)
        E::binary(
            E::binary(c("a"), BinaryOp::Gte, E::binary(l(5), BinaryOp::Add, l(1))),
            BinaryOp::And,
            E::binary(c("a"), BinaryOp::Lte, l(4)),
        ),
        // NOT NOT (b = 1) AND TRUE
        E::binary(
            E::Unary {
                op: UnaryOp::Not,
                expr: Box::new(E::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(E::binary(c("b"), BinaryOp::Eq, l(1))),
                }),
            },
            BinaryOp::And,
            E::lit(true),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_fold_arithmetic_and_comparison() {
        let e = Expr::binary(Expr::lit(1i64), BinaryOp::Add, Expr::lit(2i64));
        assert_eq!(apply_rule(&e, Rule::ConstFold).unwrap(), Expr::lit(3i64));
        let e = Expr::binary(Expr::lit(2i64), BinaryOp::Lt, Expr::lit(1i64));
        assert_eq!(apply_rule(&e, Rule::ConstFold).unwrap(), Expr::lit(false));
        // no change → None
        assert!(apply_rule(&Expr::col("a"), Rule::ConstFold).is_none());
    }

    #[test]
    fn simplify_boolean_identities() {
        let x = Expr::binary(Expr::col("x"), BinaryOp::Gt, Expr::lit(0i64));
        let e = Expr::binary(x.clone(), BinaryOp::And, Expr::lit(true));
        assert_eq!(apply_rule(&e, Rule::SimplifyLogic).unwrap(), x);
        let e = Expr::binary(x.clone(), BinaryOp::Or, Expr::lit(true));
        assert_eq!(
            apply_rule(&e, Rule::SimplifyLogic).unwrap(),
            Expr::lit(true)
        );
        let e = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(x.clone()),
            }),
        };
        assert_eq!(apply_rule(&e, Rule::SimplifyLogic).unwrap(), x);
    }

    #[test]
    fn merge_and_contradict() {
        let e = Expr::binary(
            Expr::binary(Expr::col("a"), BinaryOp::Gte, Expr::lit(6i64)),
            BinaryOp::And,
            Expr::binary(Expr::col("a"), BinaryOp::Lte, Expr::lit(4i64)),
        );
        let merged = apply_rule(&e, Rule::MergeRange).unwrap();
        assert!(matches!(merged, Expr::Between { .. }));
        let end = apply_rule(&merged, Rule::DetectContradiction).unwrap();
        assert_eq!(end, Expr::lit(false));
    }

    #[test]
    fn fixpoint_dominates_fixed_pass() {
        for e in cascade_workload() {
            let fixed = rewrite_fixed(&e);
            let fixpoint = rewrite_fixpoint(&e);
            assert!(fixpoint.final_size <= fixed.final_size);
        }
    }

    #[test]
    fn mcts_beats_fixed_order_on_cascades() {
        let mut mcts_total = 0usize;
        let mut fixed_total = 0usize;
        let mut fixpoint_total = 0usize;
        for (i, e) in cascade_workload().iter().enumerate() {
            let fixed = rewrite_fixed(e);
            let m = rewrite_mcts(e, 6, 300, 42 + i as u64);
            let fp = rewrite_fixpoint(e);
            mcts_total += m.final_size;
            fixed_total += fixed.final_size;
            fixpoint_total += fp.final_size;
        }
        assert!(
            mcts_total < fixed_total,
            "mcts {mcts_total} vs fixed {fixed_total}"
        );
        assert!(
            mcts_total <= fixpoint_total + 2,
            "mcts near fixpoint quality"
        );
    }

    #[test]
    fn mcts_uses_fewer_applications_than_fixpoint() {
        let e = &cascade_workload()[0];
        let m = rewrite_mcts(e, 6, 300, 3);
        let fp = rewrite_fixpoint(e);
        assert!(m.applications <= 6);
        assert!(fp.applications > m.applications);
    }

    #[test]
    fn rewrites_preserve_semantics() {
        use aimdb_common::{DataType, Row, Schema};
        let schema = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("x", DataType::Int),
        ]);
        let rows: Vec<Row> = (0..64)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i % 8),
                    Value::Int(i % 3),
                    Value::Int(i - 32),
                ])
            })
            .collect();
        for e in cascade_workload() {
            let rewritten = rewrite_fixpoint(&e).final_expr;
            for r in &rows {
                let before = e
                    .eval_predicate(&schema, r, &aimdb_sql::expr::BuiltinFns)
                    .unwrap();
                let after = rewritten
                    .eval_predicate(&schema, r, &aimdb_sql::expr::BuiltinFns)
                    .unwrap();
                assert_eq!(before, after, "semantics changed for {e:?} on {r}");
            }
        }
    }
}
