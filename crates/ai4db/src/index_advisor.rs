//! Learning-based index advisor (E2).
//!
//! Following Sadri et al. (ICDE'20), index selection is modeled as an MDP:
//! the state is the set of built indexes, actions create or drop an index
//! (bounded by a budget), and the reward is the what-if cost reduction of
//! the workload. The what-if costing service is the engine's own planner
//! with hypothetical indexes — the same architecture real advisors use
//! against commercial optimizers.
//!
//! Baselines: no indexes, index-everything, most-frequent-column
//! heuristic, and classic greedy what-if selection.

use std::collections::{HashMap, HashSet};

use aimdb_common::Result;
use aimdb_engine::optimizer::{CardEstimator, HistogramEstimator, Planner};
use aimdb_engine::stats::TableStats;
use aimdb_engine::Database;
use aimdb_ml::qlearn::{QLearner, QParams};
use aimdb_sql::ast::{Select, Statement};
use aimdb_sql::parser::parse_one;

/// A query with its execution frequency in the workload.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    pub select: Select,
    pub frequency: f64,
}

/// Parse a workload from SQL strings with frequencies.
pub fn workload_from_sql(queries: &[(&str, f64)]) -> Result<Vec<WorkloadQuery>> {
    queries
        .iter()
        .map(|(sql, f)| match parse_one(sql)? {
            Statement::Select(select) => Ok(WorkloadQuery {
                select,
                frequency: *f,
            }),
            _ => Err(aimdb_common::AimError::InvalidInput(
                "workload must be SELECT statements".into(),
            )),
        })
        .collect()
}

/// An index candidate.
pub type Candidate = (String, String); // (table, column)

/// What-if cost of a workload under a hypothetical index set.
pub fn what_if_cost(
    db: &Database,
    workload: &[WorkloadQuery],
    indexes: &HashSet<Candidate>,
) -> Result<f64> {
    let stats: HashMap<String, TableStats> = db.stats_snapshot();
    let est = HistogramEstimator;
    let mut planner = Planner::new(&db.catalog, &stats, &est as &dyn CardEstimator);
    planner.hypothetical_only = true;
    planner.hypothetical_indexes = indexes
        .iter()
        .map(|(t, c)| (t.to_ascii_lowercase(), c.to_ascii_lowercase()))
        .collect();
    let mut total = 0.0;
    for q in workload {
        let plan = planner.plan_select(&q.select)?;
        total += plan.est_cost * q.frequency;
    }
    Ok(total)
}

/// Enumerate candidates: every (table, column) referenced by a predicate
/// in the workload.
pub fn enumerate_candidates(db: &Database, workload: &[WorkloadQuery]) -> Vec<Candidate> {
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for q in workload {
        let tables: Vec<(String, String)> = {
            let mut v: Vec<(String, String)> = q
                .select
                .from
                .iter()
                .map(|t| (t.effective_name().to_string(), t.name.clone()))
                .collect();
            v.extend(
                q.select
                    .joins
                    .iter()
                    .map(|j| (j.table.effective_name().to_string(), j.table.name.clone())),
            );
            v
        };
        let mut preds = Vec::new();
        if let Some(w) = &q.select.where_clause {
            preds.extend(w.conjuncts().into_iter().cloned());
        }
        for j in &q.select.joins {
            preds.extend(j.on.conjuncts().into_iter().cloned());
        }
        for p in preds {
            for (qual, col) in p.referenced_columns() {
                // resolve alias → table
                let table = match qual {
                    Some(a) => tables
                        .iter()
                        .find(|(alias, _)| alias.eq_ignore_ascii_case(a))
                        .map(|(_, t)| t.clone()),
                    None => tables
                        .iter()
                        .find(|(_, t)| {
                            db.catalog
                                .table(t)
                                .map(|tb| tb.schema.index_of(col).is_ok())
                                .unwrap_or(false)
                        })
                        .map(|(_, t)| t.clone()),
                };
                if let Some(t) = table {
                    let cand = (t.to_ascii_lowercase(), col.to_ascii_lowercase());
                    if seen.insert(cand.clone()) {
                        out.push(cand);
                    }
                }
            }
        }
    }
    out.sort();
    out
}

/// An advisor's recommendation and its what-if workload cost.
#[derive(Debug, Clone)]
pub struct Advice {
    pub method: String,
    pub indexes: Vec<Candidate>,
    pub workload_cost: f64,
    /// Number of what-if plan evaluations spent.
    pub evaluations: usize,
}

/// Baseline: no indexes.
pub fn advise_none(db: &Database, workload: &[WorkloadQuery]) -> Result<Advice> {
    let cost = what_if_cost(db, workload, &HashSet::new())?;
    Ok(Advice {
        method: "none".into(),
        indexes: vec![],
        workload_cost: cost,
        evaluations: 1,
    })
}

/// Baseline: index every candidate (ignores budget/storage).
pub fn advise_all(db: &Database, workload: &[WorkloadQuery]) -> Result<Advice> {
    let cands: HashSet<Candidate> = enumerate_candidates(db, workload).into_iter().collect();
    let cost = what_if_cost(db, workload, &cands)?;
    Ok(Advice {
        method: "all".into(),
        indexes: cands.into_iter().collect(),
        workload_cost: cost,
        evaluations: 1,
    })
}

/// Baseline: pick the `budget` columns referenced most often (weighted by
/// query frequency), ignoring the optimizer entirely.
pub fn advise_frequency(
    db: &Database,
    workload: &[WorkloadQuery],
    budget: usize,
) -> Result<Advice> {
    let mut counts: HashMap<Candidate, f64> = HashMap::new();
    for q in workload {
        for cand in enumerate_candidates(db, std::slice::from_ref(q)) {
            *counts.entry(cand).or_default() += q.frequency;
        }
    }
    let mut ranked: Vec<(Candidate, f64)> = counts.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let chosen: HashSet<Candidate> = ranked.into_iter().take(budget).map(|(c, _)| c).collect();
    let cost = what_if_cost(db, workload, &chosen)?;
    Ok(Advice {
        method: "frequency".into(),
        indexes: chosen.into_iter().collect(),
        workload_cost: cost,
        evaluations: 1,
    })
}

/// Classic greedy what-if advisor: repeatedly add the candidate with the
/// largest cost reduction until the budget is hit or no candidate helps.
pub fn advise_greedy(db: &Database, workload: &[WorkloadQuery], budget: usize) -> Result<Advice> {
    let cands = enumerate_candidates(db, workload);
    let mut chosen: HashSet<Candidate> = HashSet::new();
    let mut current = what_if_cost(db, workload, &chosen)?;
    let mut evals = 1;
    while chosen.len() < budget {
        let mut best: Option<(Candidate, f64)> = None;
        for c in &cands {
            if chosen.contains(c) {
                continue;
            }
            let mut trial = chosen.clone();
            trial.insert(c.clone());
            let cost = what_if_cost(db, workload, &trial)?;
            evals += 1;
            if cost < current && best.as_ref().map_or(true, |(_, b)| cost < *b) {
                best = Some((c.clone(), cost));
            }
        }
        match best {
            Some((c, cost)) => {
                chosen.insert(c);
                current = cost;
            }
            None => break,
        }
    }
    Ok(Advice {
        method: "greedy".into(),
        indexes: chosen.into_iter().collect(),
        workload_cost: current,
        evaluations: evals,
    })
}

/// RL advisor (Sadri et al.): Q-learning over index-set states with
/// add/stop actions; reward is the normalized cost reduction at episode
/// end minus a per-index penalty.
pub fn advise_rl(
    db: &Database,
    workload: &[WorkloadQuery],
    budget: usize,
    episodes: usize,
    seed: u64,
) -> Result<Advice> {
    let cands = enumerate_candidates(db, workload);
    if cands.is_empty() {
        return advise_none(db, workload);
    }
    let n = cands.len().min(16);
    let cands = &cands[..n];
    let base_cost = what_if_cost(db, workload, &HashSet::new())?;
    let mut evals = 1;
    // actions: 0..n = add candidate i; n = stop
    let mut q = QLearner::new(
        n + 1,
        QParams {
            alpha: 0.4,
            gamma: 1.0,
            epsilon: 1.0,
            epsilon_min: 0.02,
            epsilon_decay: 0.97,
            ..Default::default()
        },
        seed,
    );
    let mut best: (HashSet<Candidate>, f64) = (HashSet::new(), base_cost);

    for _ in 0..episodes {
        let mut state_mask = 0usize;
        let mut chosen: HashSet<Candidate> = HashSet::new();
        let mut prev_cost = base_cost;
        loop {
            let legal: Vec<usize> = (0..n)
                .filter(|i| state_mask >> i & 1 == 0 && chosen.len() < budget)
                .chain(std::iter::once(n))
                .collect();
            let a = q.select(state_mask, &legal);
            if a == n || chosen.len() >= budget {
                q.update(state_mask, n, 0.0, state_mask, &[], true);
                break;
            }
            chosen.insert(cands[a].clone());
            let next_mask = state_mask | (1 << a);
            let cost = what_if_cost(db, workload, &chosen)?;
            evals += 1;
            // stepwise reward: normalized marginal gain minus small penalty
            let reward = (prev_cost - cost) / base_cost - 0.01;
            let done = chosen.len() >= budget;
            q.update(state_mask, a, reward, next_mask, &[], done);
            state_mask = next_mask;
            prev_cost = cost;
            if cost < best.1 {
                best = (chosen.clone(), cost);
            }
            if done {
                break;
            }
        }
        q.end_episode();
    }
    Ok(Advice {
        method: "rl(mdp)".into(),
        indexes: best.0.into_iter().collect(),
        workload_cost: best.1,
        evaluations: evals,
    })
}

/// Apply an advice: physically create the recommended indexes.
pub fn apply_advice(db: &Database, advice: &Advice) -> Result<usize> {
    let mut n = 0;
    for (t, c) in &advice.indexes {
        let name = format!("advised_{t}_{c}");
        if db.catalog.create_index(&name, t, c).is_ok() {
            n += 1;
        }
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A database where indexing the *right* columns matters: skewed
    /// workload touching few of many columns.
    fn setup() -> (Database, Vec<WorkloadQuery>) {
        let db = Database::new();
        db.execute("CREATE TABLE items (id INT, cat INT, price FLOAT, stock INT, vendor INT)")
            .unwrap();
        let tuples: Vec<String> = (0..4000)
            .map(|i| {
                format!(
                    "({i}, {}, {}, {}, {})",
                    i % 500,
                    (i % 97) as f64,
                    i % 13,
                    i % 211
                )
            })
            .collect();
        db.execute(&format!("INSERT INTO items VALUES {}", tuples.join(",")))
            .unwrap();
        db.execute("ANALYZE").unwrap();
        let workload = workload_from_sql(&[
            ("SELECT * FROM items WHERE id = 17", 100.0),
            ("SELECT * FROM items WHERE cat = 3", 50.0),
            ("SELECT * FROM items WHERE stock = 5", 1.0),
        ])
        .unwrap();
        (db, workload)
    }

    #[test]
    fn candidates_enumerated_from_predicates() {
        let (db, wl) = setup();
        let cands = enumerate_candidates(&db, &wl);
        assert!(cands.contains(&("items".into(), "id".into())));
        assert!(cands.contains(&("items".into(), "cat".into())));
        assert!(cands.contains(&("items".into(), "stock".into())));
        assert_eq!(cands.len(), 3);
    }

    #[test]
    fn what_if_reflects_indexes() {
        let (db, wl) = setup();
        let no_idx = what_if_cost(&db, &wl, &HashSet::new()).unwrap();
        let with: HashSet<Candidate> = [("items".to_string(), "id".to_string())].into();
        let with_idx = what_if_cost(&db, &wl, &with).unwrap();
        assert!(
            with_idx < no_idx * 0.5,
            "index should cut cost: {with_idx} vs {no_idx}"
        );
    }

    #[test]
    fn greedy_picks_high_value_indexes_first() {
        let (db, wl) = setup();
        let advice = advise_greedy(&db, &wl, 2).unwrap();
        assert_eq!(advice.indexes.len(), 2);
        assert!(advice.indexes.contains(&("items".into(), "id".into())));
        assert!(advice.indexes.contains(&("items".into(), "cat".into())));
        let none = advise_none(&db, &wl).unwrap();
        assert!(advice.workload_cost < none.workload_cost);
    }

    #[test]
    fn rl_matches_greedy_quality_under_budget() {
        let (db, wl) = setup();
        let greedy = advise_greedy(&db, &wl, 2).unwrap();
        let rl = advise_rl(&db, &wl, 2, 60, 3).unwrap();
        assert!(
            rl.workload_cost <= greedy.workload_cost * 1.05,
            "rl {} vs greedy {}",
            rl.workload_cost,
            greedy.workload_cost
        );
        assert!(rl.indexes.len() <= 2);
    }

    #[test]
    fn rl_beats_frequency_heuristic_when_frequency_misleads() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        let tuples: Vec<String> = (0..4000).map(|i| format!("({}, {i})", i % 2)).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", tuples.join(",")))
            .unwrap();
        db.execute("ANALYZE").unwrap();
        // column a is referenced often but has 2 distinct values (useless
        // index); b is rare but highly selective.
        let wl = workload_from_sql(&[
            ("SELECT * FROM t WHERE a = 1", 10.0),
            ("SELECT * FROM t WHERE b = 7", 8.0),
        ])
        .unwrap();
        let freq = advise_frequency(&db, &wl, 1).unwrap();
        let rl = advise_rl(&db, &wl, 1, 40, 1).unwrap();
        assert_eq!(freq.indexes, vec![("t".into(), "a".into())]);
        assert_eq!(rl.indexes, vec![("t".into(), "b".into())]);
        assert!(rl.workload_cost < freq.workload_cost);
    }

    #[test]
    fn apply_advice_creates_real_indexes() {
        let (db, wl) = setup();
        let advice = advise_greedy(&db, &wl, 1).unwrap();
        let n = apply_advice(&db, &advice).unwrap();
        assert_eq!(n, 1);
        let t = db.catalog.table("items").unwrap();
        assert!(t.index_on("id").is_some());
    }
}
