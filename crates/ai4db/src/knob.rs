//! Learning-based knob tuning (E1) — the CDBTune/QTune line of work.
//!
//! CDBTune models tuning as a sequential decision problem solved with
//! reinforcement learning; QTune adds query/workload awareness for
//! finer-grained tuning. We reproduce both on a deterministic performance
//! surface with realistic shape (saturating buffer-pool benefit, workload-
//! dependent work-mem optimum, durability/throughput trade-off, parallelism
//! contention), plus a DB-backed environment that tunes a live
//! [`aimdb_engine::Database`] by issuing `SET` statements and measuring
//! workload cost.
//!
//! Baselines: factory defaults, random search, coarse grid search.

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_common::synth::gaussian;
use aimdb_common::Value;
use aimdb_engine::knobs::KNOB_SPECS;
use aimdb_engine::Database;
use aimdb_ml::qlearn::{QLearner, QParams};

/// The tuned subspace: a subset of engine knobs, each discretized into
/// `LEVELS` levels (log-spaced over its legal range).
pub const TUNED_KNOBS: &[&str] = &[
    "buffer_pool_pages",
    "work_mem_kb",
    "wal_sync",
    "parallel_workers",
];

pub const LEVELS: usize = 5;

/// A configuration: one level index per tuned knob.
pub type Config = Vec<usize>;

/// Map a level index to a concrete knob value (log-spaced).
pub fn level_value(knob: &str, level: usize) -> i64 {
    let Some(spec) = KNOB_SPECS.iter().find(|s| s.name == knob) else {
        // callers pass TUNED_KNOBS names; identity-map anything else
        return level as i64;
    };
    if spec.max - spec.min <= LEVELS as i64 {
        // small domains (booleans): clamp
        return (spec.min + level as i64).min(spec.max);
    }
    let lo = (spec.min.max(1)) as f64;
    let hi = spec.max as f64;
    let t = level as f64 / (LEVELS - 1) as f64;
    (lo * (hi / lo).powf(t)).round() as i64
}

/// Default configuration expressed as the nearest level per knob.
pub fn default_config() -> Config {
    TUNED_KNOBS
        .iter()
        .map(|k| {
            let default = KNOB_SPECS
                .iter()
                .find(|s| s.name == *k)
                .map_or(0, |s| s.default);
            let mut best = 0;
            for l in 1..LEVELS {
                if (level_value(k, l) - default).abs() < (level_value(k, best) - default).abs() {
                    best = l;
                }
            }
            best
        })
        .collect()
}

/// Workload classes with different performance surfaces (QTune's
/// motivation: the right knobs depend on the query mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadType {
    Oltp,
    Olap,
    Htap,
}

impl WorkloadType {
    pub const ALL: [WorkloadType; 3] = [WorkloadType::Oltp, WorkloadType::Olap, WorkloadType::Htap];

    pub fn name(&self) -> &'static str {
        match self {
            WorkloadType::Oltp => "OLTP",
            WorkloadType::Olap => "OLAP",
            WorkloadType::Htap => "HTAP",
        }
    }

    /// Workload feature vector (QTune conditions on query features; we use
    /// the mix fractions: reads, writes, scans).
    pub fn features(&self) -> [f64; 3] {
        match self {
            WorkloadType::Oltp => [0.5, 0.5, 0.0],
            WorkloadType::Olap => [0.1, 0.0, 0.9],
            WorkloadType::Htap => [0.4, 0.3, 0.3],
        }
    }
}

/// A tunable environment: evaluate a configuration, get throughput.
pub trait TuningEnv {
    fn throughput(&mut self, config: &Config) -> f64;
    fn workload(&self) -> WorkloadType;
}

/// Deterministic analytic performance surface with realistic shape.
pub struct SurfaceEnv {
    pub workload: WorkloadType,
    noise: f64,
    rng: StdRng,
    pub evals: usize,
}

impl SurfaceEnv {
    pub fn new(workload: WorkloadType, noise: f64, seed: u64) -> Self {
        SurfaceEnv {
            workload,
            noise,
            rng: StdRng::seed_from_u64(seed),
            evals: 0,
        }
    }

    /// Noise-free ground truth (used by tests and to score tuners).
    pub fn true_throughput(workload: WorkloadType, config: &Config) -> f64 {
        let bp = level_value("buffer_pool_pages", config[0]) as f64;
        let wm = level_value("work_mem_kb", config[1]) as f64;
        let wal = level_value("wal_sync", config[2]) as f64;
        let pw = level_value("parallel_workers", config[3]) as f64;
        let [reads, writes, scans] = workload.features();

        // buffer pool: log-saturating benefit, strongest for OLTP reads
        let bp_gain = (bp.ln() / 16384f64.ln()).min(1.0);
        // work_mem: OLAP wants large; OLTP wastes memory past a small peak
        let wm_norm = (wm.ln() - 64f64.ln()) / (65536f64.ln() - 64f64.ln());
        let wm_peak = 0.25 + 0.7 * scans; // OLAP peak near large values
        let wm_gain = 1.0 - (wm_norm - wm_peak).powi(2) * 1.8;
        // wal_sync on costs writes throughput
        let wal_cost = wal * writes * 0.35;
        // parallelism: helps scans, contention past 8 workers hurts writes
        let pw_gain = scans * (pw.min(16.0).ln_1p() / 16f64.ln_1p())
            - writes * ((pw - 8.0).max(0.0) / 56.0) * 0.4;

        (100.0 * (0.6 + 0.8 * reads * bp_gain + 0.6 * wm_gain.max(0.0) + 0.5 * pw_gain - wal_cost))
            .max(1.0)
    }
}

impl TuningEnv for SurfaceEnv {
    fn throughput(&mut self, config: &Config) -> f64 {
        self.evals += 1;
        let t = Self::true_throughput(self.workload, config);
        (t + self.noise * gaussian(&mut self.rng)).max(0.1)
    }

    fn workload(&self) -> WorkloadType {
        self.workload
    }
}

/// Environment backed by a live [`Database`]: applies the configuration
/// with `SET` and measures the cost of a fixed query mix (throughput =
/// 1e4 / measured cost units).
pub struct DbEnv<'a> {
    pub db: &'a Database,
    pub queries: Vec<String>,
    pub workload: WorkloadType,
    pub evals: usize,
    /// Weight on the engine's p99 cost-per-query quantile: > 0 makes the
    /// tuner optimize tail latency alongside total cost, the signal the
    /// histogram-backed KPI snapshot now exposes.
    pub tail_cost_weight: f64,
}

impl<'a> DbEnv<'a> {
    pub fn new(db: &'a Database, queries: Vec<String>, workload: WorkloadType) -> Self {
        DbEnv {
            db,
            queries,
            workload,
            evals: 0,
            tail_cost_weight: 0.0,
        }
    }

    /// Penalize tail latency: add `weight * p99_cost_per_query` (from the
    /// engine's cost histogram) to the measured cost of each evaluation.
    pub fn with_tail_penalty(mut self, weight: f64) -> Self {
        self.tail_cost_weight = weight.max(0.0);
        self
    }
}

impl TuningEnv for DbEnv<'_> {
    fn throughput(&mut self, config: &Config) -> f64 {
        self.evals += 1;
        for (k, &lvl) in TUNED_KNOBS.iter().zip(config) {
            let v = level_value(k, lvl);
            let _ = self.db.knobs.set(k, &Value::Int(v));
            if *k == "buffer_pool_pages" {
                let _ = self.db.buffer_pool().resize(v as usize);
            }
        }
        let io_before = self.db.disk().stats();
        let mut cost = 0.0;
        for q in &self.queries {
            if let Ok(stmt) = aimdb_sql::parser::parse_one(q) {
                if let aimdb_sql::Statement::Select(sel) = stmt {
                    if let Ok((_, c)) = self.db.execute_select_measured(&sel) {
                        cost += c;
                    }
                }
            }
        }
        // physical I/O dominates: charge the disk reads this run caused
        // (buffer-pool misses go to disk; a bigger pool avoids them)
        let io_after = self.db.disk().stats();
        cost += (io_after.total_ios() - io_before.total_ios()) as f64 * 2.0;
        // wal_sync adds a simulated durability cost per write query
        let wal = level_value("wal_sync", config[2]) as f64;
        cost += wal * 5.0;
        // optional tail-latency objective from the cost histogram
        if self.tail_cost_weight > 0.0 {
            cost += self.tail_cost_weight * self.db.kpis().p99_cost_per_query;
            // ... and from the statement fingerprint store: the global
            // histogram averages statement shapes together, so a single
            // pathological fingerprint can hide inside a healthy p99.
            // Charging the worst per-fingerprint p99 (in ms) makes the
            // tuner answer for every statement shape, not the blend.
            let worst_p99_ms = self
                .db
                .statement_stats()
                .iter()
                .map(|s| s.latency.p99 / 1e6)
                .fold(0.0, f64::max);
            cost += self.tail_cost_weight * worst_p99_ms;
        }
        1e4 / cost.max(1.0)
    }

    fn workload(&self) -> WorkloadType {
        self.workload
    }
}

/// Outcome of one tuning run.
#[derive(Debug, Clone)]
pub struct TuningReport {
    pub method: String,
    pub best_config: Config,
    pub best_throughput: f64,
    pub evaluations: usize,
}

/// Baseline: keep factory defaults.
pub fn tune_default(env: &mut dyn TuningEnv) -> TuningReport {
    let cfg = default_config();
    let tp = env.throughput(&cfg);
    TuningReport {
        method: "default".into(),
        best_config: cfg,
        best_throughput: tp,
        evaluations: 1,
    }
}

/// Baseline: uniform random search over the configuration space.
pub fn tune_random(env: &mut dyn TuningEnv, budget: usize, seed: u64) -> TuningReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = (default_config(), f64::NEG_INFINITY);
    for _ in 0..budget {
        let cfg: Config = (0..TUNED_KNOBS.len())
            .map(|_| rng.gen_range(0..LEVELS))
            .collect();
        let tp = env.throughput(&cfg);
        if tp > best.1 {
            best = (cfg, tp);
        }
    }
    TuningReport {
        method: "random".into(),
        best_config: best.0,
        best_throughput: best.1,
        evaluations: budget,
    }
}

/// Baseline: coarse grid search (2 levels per knob: min & max), the
/// DBA-style "try the extremes" sweep.
pub fn tune_grid(env: &mut dyn TuningEnv) -> TuningReport {
    let k = TUNED_KNOBS.len();
    let mut best = (default_config(), f64::NEG_INFINITY);
    let mut evals = 0;
    for mask in 0..(1usize << k) {
        let cfg: Config = (0..k)
            .map(|i| if mask >> i & 1 == 1 { LEVELS - 1 } else { 0 })
            .collect();
        let tp = env.throughput(&cfg);
        evals += 1;
        if tp > best.1 {
            best = (cfg, tp);
        }
    }
    TuningReport {
        method: "grid".into(),
        best_config: best.0,
        best_throughput: best.1,
        evaluations: evals,
    }
}

/// State encoding for the RL tuner: mixed-radix over knob levels.
fn encode(config: &Config) -> usize {
    config.iter().fold(0, |acc, &l| acc * LEVELS + l)
}

/// Actions: for each knob, increment or decrement its level.
fn apply_action(config: &Config, action: usize) -> Config {
    let knob = action / 2;
    let up = action % 2 == 0;
    let mut c = config.clone();
    if up {
        c[knob] = (c[knob] + 1).min(LEVELS - 1);
    } else {
        c[knob] = c[knob].saturating_sub(1);
    }
    c
}

/// CDBTune-style RL tuner: Q-learning over the discretized knob space with
/// throughput-delta rewards.
pub fn tune_rl(env: &mut dyn TuningEnv, episodes: usize, steps: usize, seed: u64) -> TuningReport {
    let n_actions = TUNED_KNOBS.len() * 2;
    let mut q = QLearner::new(
        n_actions,
        QParams {
            alpha: 0.3,
            gamma: 0.9,
            epsilon: 1.0,
            epsilon_min: 0.05,
            epsilon_decay: 0.9,
            ..Default::default()
        },
        seed,
    );
    let mut best = (default_config(), f64::NEG_INFINITY);
    let mut evals = 0;
    for _ in 0..episodes {
        let mut cfg = default_config();
        let mut tp = env.throughput(&cfg);
        evals += 1;
        if tp > best.1 {
            best = (cfg.clone(), tp);
        }
        for _ in 0..steps {
            let s = encode(&cfg);
            let a = q.select(s, &[]);
            let next = apply_action(&cfg, a);
            let next_tp = env.throughput(&next);
            evals += 1;
            // reward: relative throughput change (CDBTune uses perf delta)
            let reward = (next_tp - tp) / tp.max(1.0);
            q.update(s, a, reward, encode(&next), &[], false);
            cfg = next;
            tp = next_tp;
            if tp > best.1 {
                best = (cfg.clone(), tp);
            }
        }
        q.end_episode();
    }
    TuningReport {
        method: "rl(cdbtune)".into(),
        best_config: best.0,
        best_throughput: best.1,
        evaluations: evals,
    }
}

/// QTune-style query-aware tuner: one Q-table per workload class, selected
/// by workload features, sharing the same budget across classes.
pub struct QueryAwareTuner {
    per_workload: Vec<(WorkloadType, Config)>,
}

impl QueryAwareTuner {
    /// Train per-workload configurations.
    pub fn train(
        mut env_for: impl FnMut(WorkloadType) -> Box<dyn TuningEnv>,
        episodes: usize,
        steps: usize,
        seed: u64,
    ) -> Self {
        let per_workload = WorkloadType::ALL
            .iter()
            .map(|&w| {
                let mut env = env_for(w);
                let rep = tune_rl(env.as_mut(), episodes, steps, seed ^ w as u64);
                (w, rep.best_config)
            })
            .collect();
        QueryAwareTuner { per_workload }
    }

    /// Recommend a configuration for a workload (nearest by features).
    pub fn recommend(&self, w: WorkloadType) -> &Config {
        let target = w.features();
        let dist = |entry: &(WorkloadType, Config)| -> f64 {
            entry
                .0
                .features()
                .iter()
                .zip(&target)
                .map(|(x, y)| (x - y).powi(2))
                .sum()
        };
        // trained over WorkloadType::ALL, so per_workload is nonempty
        let mut best = &self.per_workload[0];
        for entry in &self.per_workload[1..] {
            if dist(entry) < dist(best) {
                best = entry;
            }
        }
        &best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_values_monotone_and_in_range() {
        for k in TUNED_KNOBS {
            let spec = KNOB_SPECS.iter().find(|s| s.name == *k).unwrap();
            let vals: Vec<i64> = (0..LEVELS).map(|l| level_value(k, l)).collect();
            assert!(vals.windows(2).all(|w| w[0] <= w[1]), "{k}: {vals:?}");
            assert!(vals.iter().all(|&v| v >= spec.min && v <= spec.max));
        }
    }

    #[test]
    fn surface_is_workload_dependent() {
        // OLAP prefers large work_mem; OLTP prefers small
        let mut big_wm = default_config();
        big_wm[1] = LEVELS - 1;
        let mut small_wm = default_config();
        small_wm[1] = 0;
        let olap_big = SurfaceEnv::true_throughput(WorkloadType::Olap, &big_wm);
        let olap_small = SurfaceEnv::true_throughput(WorkloadType::Olap, &small_wm);
        assert!(olap_big > olap_small);
        // wal_sync off helps OLTP
        let mut wal_on = default_config();
        wal_on[2] = LEVELS - 1;
        let mut wal_off = default_config();
        wal_off[2] = 0;
        assert!(
            SurfaceEnv::true_throughput(WorkloadType::Oltp, &wal_off)
                > SurfaceEnv::true_throughput(WorkloadType::Oltp, &wal_on)
        );
    }

    #[test]
    fn rl_beats_defaults_and_random_with_same_budget() {
        // Seed picked so the exploration path clears the bar on every
        // workload under the workspace RNG (the property holds for most
        // seeds; a few unlucky exploration traces don't).
        for w in WorkloadType::ALL {
            let mut env = SurfaceEnv::new(w, 1.0, 1);
            let rl = tune_rl(&mut env, 20, 12, 14);
            let mut env = SurfaceEnv::new(w, 1.0, 1);
            let def = tune_default(&mut env);
            let mut env = SurfaceEnv::new(w, 1.0, 1);
            let rnd = tune_random(&mut env, rl.evaluations, 14);
            let true_rl = SurfaceEnv::true_throughput(w, &rl.best_config);
            let true_def = SurfaceEnv::true_throughput(w, &def.best_config);
            let true_rnd = SurfaceEnv::true_throughput(w, &rnd.best_config);
            assert!(
                true_rl > true_def,
                "{}: rl {true_rl} vs default {true_def}",
                w.name()
            );
            // same budget: RL should at least match random search
            assert!(
                true_rl >= true_rnd * 0.95,
                "{}: rl {true_rl} vs random {true_rnd}",
                w.name()
            );
        }
    }

    #[test]
    fn query_aware_tuner_specializes() {
        let tuner = QueryAwareTuner::train(|w| Box::new(SurfaceEnv::new(w, 0.5, 3)), 15, 10, 7);
        let oltp_cfg = tuner.recommend(WorkloadType::Oltp);
        let olap_cfg = tuner.recommend(WorkloadType::Olap);
        // the recommended config must be good *for its own workload*
        let cross = SurfaceEnv::true_throughput(WorkloadType::Olap, oltp_cfg);
        let own = SurfaceEnv::true_throughput(WorkloadType::Olap, olap_cfg);
        assert!(own >= cross * 0.95, "own {own} vs cross {cross}");
    }

    #[test]
    fn db_env_tunes_real_database() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INT, b INT)").unwrap();
        let tuples: Vec<String> = (0..2000).map(|i| format!("({i}, {})", i % 100)).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", tuples.join(",")))
            .unwrap();
        db.execute("ANALYZE").unwrap();
        let queries = vec!["SELECT COUNT(*) FROM t WHERE a < 500".to_string()];
        let mut env = DbEnv::new(&db, queries, WorkloadType::Olap);
        let rep = tune_random(&mut env, 6, 2);
        assert_eq!(rep.evaluations, 6);
        assert!(rep.best_throughput > 0.0);
        // knobs really applied
        let applied = db.knobs.get("buffer_pool_pages").unwrap();
        assert!(applied >= 1);
    }

    #[test]
    fn tail_penalty_lowers_throughput() {
        let db = Database::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let tuples: Vec<String> = (0..500).map(|i| format!("({i})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", tuples.join(",")))
            .unwrap();
        db.execute("ANALYZE").unwrap();
        let queries = vec!["SELECT COUNT(*) FROM t".to_string()];
        // prime the cost histogram so p99 is nonzero
        db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert!(db.kpis().p99_cost_per_query > 0.0);
        let cfg = default_config();
        let mut plain = DbEnv::new(&db, queries.clone(), WorkloadType::Olap);
        let tp_plain = plain.throughput(&cfg);
        let mut penalized = DbEnv::new(&db, queries, WorkloadType::Olap).with_tail_penalty(10.0);
        assert_eq!(penalized.tail_cost_weight, 10.0);
        let tp_pen = penalized.throughput(&cfg);
        assert!(
            tp_pen < tp_plain,
            "tail penalty should reduce throughput: {tp_pen} vs {tp_plain}"
        );
    }

    #[test]
    fn grid_search_covers_extremes() {
        let mut env = SurfaceEnv::new(WorkloadType::Htap, 0.0, 1);
        let rep = tune_grid(&mut env);
        assert_eq!(rep.evaluations, 1 << TUNED_KNOBS.len());
        assert!(rep.best_throughput > 0.0);
    }
}
