//! Admission-control tuning: the actuation half of the Baihe-style
//! closed loop (PAPERS.md §self-driving).
//!
//! The server's admission gate bounds how many statements may be inside
//! the engine at once. This module decides *where* that bound should
//! sit, from the same observability surfaces the health monitor reads:
//! [`crate::monitor::live_kpi_vector`] (cost, hit rate, disk reads,
//! contention, p95 tail) plus the wait-class shares of
//! [`aimdb_common::WaitSet`]. The policy is AIMD with hysteresis —
//! multiplicative decrease when the engine shows contention collapse,
//! additive increase when it runs clean — because admission limits have
//! the same stability shape as congestion windows: overshoot is
//! expensive (p99 collapse), undershoot is cheap (a few rejects).
//!
//! Everything here is pure and deterministic (lint L002): the tuner
//! consumes snapshots the caller took and returns a target; the server's
//! control-loop thread owns the clock and the actuation (a
//! `SET admission_max_statements = target` through the knob system, so
//! actuations are visible exactly like any DBA knob change).

use aimdb_common::{WaitClass, WaitSet};

/// Relative share of attributed wait time per class over an observation
/// window, plus the conflict-event count — the contention signature the
/// tuner steers on.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WaitShares {
    /// Lock-acquire share of total attributed wait time, in [0, 1].
    pub lock: f64,
    /// WAL fsync + group-commit-follower share, in [0, 1].
    pub wal: f64,
    /// Buffer-miss (disk I/O) share, in [0, 1].
    pub io: f64,
    /// First-updater-wins conflict events in the window.
    pub conflicts: u64,
}

impl WaitShares {
    /// Shares from a wait-set delta (window totals). A zero set yields
    /// all-zero shares, not NaN.
    pub fn from_waits(w: &WaitSet) -> WaitShares {
        let lock = w.get(WaitClass::LockAcquire).0;
        let wal = w.get(WaitClass::WalFsync).0 + w.get(WaitClass::GroupCommitFollower).0;
        let io = w.get(WaitClass::BufferMiss).0;
        let total = w.total_ns() as f64;
        let share = |ns: u64| {
            if total > 0.0 {
                ns as f64 / total
            } else {
                0.0
            }
        };
        WaitShares {
            lock: share(lock),
            wal: share(wal),
            io: share(io),
            conflicts: w.get(WaitClass::WriteConflictRetry).1,
        }
    }
}

/// One control decision: the new statement-gate limit and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionAction {
    /// Contention pressure above the high water: halve the limit.
    Shrink,
    /// Clean window at the current limit: add one slot back.
    Grow,
    /// Inside the hysteresis band (or still backing off): no change.
    Hold,
}

/// AIMD admission tuner over the statement-gate limit.
///
/// Inputs per tick: the 5-dim live KPI vector (each dim already squashed
/// into [0, 1]), the wait-class shares of the window, and the window's
/// admission reject rate. The pressure signal is the max of the KPI
/// contention dim, the KPI tail dim, and the lock+wal wait share — any
/// one of them saturating means more concurrency will only queue on
/// shared resources.
#[derive(Debug, Clone)]
pub struct AdmissionTuner {
    min_limit: i64,
    max_limit: i64,
    limit: i64,
    /// Pressure above this triggers multiplicative decrease.
    pub high_water: f64,
    /// Pressure below this (sustained) allows additive increase.
    pub low_water: f64,
    /// Consecutive clean ticks required before growing (hysteresis).
    pub patience: u32,
    clean_ticks: u32,
    shrinks: u64,
    grows: u64,
}

impl AdmissionTuner {
    pub fn new(min_limit: i64, max_limit: i64, start: i64) -> AdmissionTuner {
        let min_limit = min_limit.max(1);
        let max_limit = max_limit.max(min_limit);
        AdmissionTuner {
            min_limit,
            max_limit,
            limit: start.clamp(min_limit, max_limit),
            high_water: 0.6,
            low_water: 0.3,
            patience: 2,
            clean_ticks: 0,
            shrinks: 0,
            grows: 0,
        }
    }

    /// The current target limit.
    pub fn limit(&self) -> i64 {
        self.limit
    }

    /// `(shrinks, grows)` actuation counts so far.
    pub fn actuations(&self) -> (u64, u64) {
        (self.shrinks, self.grows)
    }

    /// The scalar contention-pressure signal in [0, 1] the AIMD loop
    /// compares against its water marks.
    pub fn pressure(kpi: &[f64], shares: &WaitShares) -> f64 {
        // live_kpi_vector layout: [avg cost, hit rate, disk reads,
        // max(abort rate, lock share), p95]. Dim 1 is goodness, not
        // pressure, so it is excluded.
        let contention = kpi.get(3).copied().unwrap_or(0.0);
        let tail = kpi.get(4).copied().unwrap_or(0.0);
        let wait = (shares.lock + shares.wal).clamp(0.0, 1.0);
        contention.max(tail).max(wait).clamp(0.0, 1.0)
    }

    /// One control tick: observe a window, return the action taken. The
    /// new target is [`AdmissionTuner::limit`]. `reject_rate` is the
    /// window's rejected/offered statement ratio — while load is being
    /// shed and the engine runs clean, the tuner grows back faster than
    /// patience alone would allow (the shed load is demand, not noise).
    pub fn observe(
        &mut self,
        kpi: &[f64],
        shares: &WaitShares,
        reject_rate: f64,
    ) -> AdmissionAction {
        let pressure = Self::pressure(kpi, shares);
        if pressure > self.high_water {
            self.clean_ticks = 0;
            let next = (self.limit / 2).max(self.min_limit);
            if next < self.limit {
                self.limit = next;
                self.shrinks += 1;
                return AdmissionAction::Shrink;
            }
            return AdmissionAction::Hold;
        }
        if pressure < self.low_water {
            self.clean_ticks = self.clean_ticks.saturating_add(1);
            let needed = if reject_rate > 0.0 { 1 } else { self.patience };
            if self.clean_ticks >= needed && self.limit < self.max_limit {
                self.clean_ticks = 0;
                self.limit += 1;
                self.grows += 1;
                return AdmissionAction::Grow;
            }
            return AdmissionAction::Hold;
        }
        // inside the band: neither shrink nor bank a clean tick
        self.clean_ticks = 0;
        AdmissionAction::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm_kpi() -> Vec<f64> {
        vec![0.1, 0.9, 0.05, 0.05, 0.1]
    }

    fn stormy_kpi() -> Vec<f64> {
        vec![0.5, 0.4, 0.3, 0.9, 0.8]
    }

    #[test]
    fn shares_from_waitset_sum_and_zero() {
        let mut w = WaitSet::default();
        w.add(WaitClass::LockAcquire, 600, 3);
        w.add(WaitClass::WalFsync, 200, 1);
        w.add(WaitClass::GroupCommitFollower, 100, 1);
        w.add(WaitClass::BufferMiss, 100, 2);
        w.add(WaitClass::WriteConflictRetry, 0, 7);
        let s = WaitShares::from_waits(&w);
        assert!((s.lock - 0.6).abs() < 1e-9);
        assert!((s.wal - 0.3).abs() < 1e-9);
        assert!((s.io - 0.1).abs() < 1e-9);
        assert_eq!(s.conflicts, 7);
        assert_eq!(
            WaitShares::from_waits(&WaitSet::default()),
            WaitShares::default()
        );
    }

    #[test]
    fn storm_halves_until_floor() {
        let mut t = AdmissionTuner::new(2, 64, 64);
        let shares = WaitShares::default();
        assert_eq!(
            t.observe(&stormy_kpi(), &shares, 0.0),
            AdmissionAction::Shrink
        );
        assert_eq!(t.limit(), 32);
        for _ in 0..10 {
            t.observe(&stormy_kpi(), &shares, 0.0);
        }
        assert_eq!(t.limit(), 2, "multiplicative decrease bottoms at the floor");
        // at the floor the storm holds, it cannot shrink further
        assert_eq!(
            t.observe(&stormy_kpi(), &shares, 0.0),
            AdmissionAction::Hold
        );
    }

    #[test]
    fn clean_windows_grow_additively_with_hysteresis() {
        let mut t = AdmissionTuner::new(2, 64, 8);
        let shares = WaitShares::default();
        // first clean tick banks, second grows (patience = 2)
        assert_eq!(t.observe(&calm_kpi(), &shares, 0.0), AdmissionAction::Hold);
        assert_eq!(t.observe(&calm_kpi(), &shares, 0.0), AdmissionAction::Grow);
        assert_eq!(t.limit(), 9);
        // while load is being shed, a single clean tick is enough
        assert_eq!(t.observe(&calm_kpi(), &shares, 0.25), AdmissionAction::Grow);
        assert_eq!(t.limit(), 10);
    }

    #[test]
    fn wait_share_alone_triggers_shrink() {
        let mut t = AdmissionTuner::new(1, 32, 16);
        let shares = WaitShares {
            lock: 0.5,
            wal: 0.4,
            io: 0.1,
            conflicts: 0,
        };
        // KPI vector looks calm; the wait profile says the engine is
        // spending 90% of its blocked time on locks + WAL
        assert_eq!(
            t.observe(&calm_kpi(), &shares, 0.0),
            AdmissionAction::Shrink
        );
        assert_eq!(t.limit(), 8);
    }

    #[test]
    fn band_resets_hysteresis() {
        let mut t = AdmissionTuner::new(1, 32, 16);
        let shares = WaitShares::default();
        let mid = vec![0.1, 0.9, 0.05, 0.45, 0.1]; // inside [0.3, 0.6]
        assert_eq!(t.observe(&calm_kpi(), &shares, 0.0), AdmissionAction::Hold);
        assert_eq!(t.observe(&mid, &shares, 0.0), AdmissionAction::Hold);
        // the banked clean tick was reset by the in-band window
        assert_eq!(t.observe(&calm_kpi(), &shares, 0.0), AdmissionAction::Hold);
        assert_eq!(t.limit(), 16);
    }

    #[test]
    fn limits_clamp_and_actuations_count() {
        let mut t = AdmissionTuner::new(4, 8, 100);
        assert_eq!(t.limit(), 8);
        let shares = WaitShares::default();
        t.observe(&stormy_kpi(), &shares, 0.0);
        assert_eq!(t.limit(), 4);
        t.observe(&calm_kpi(), &shares, 1.0);
        assert_eq!(t.limit(), 5);
        assert_eq!(t.actuations(), (1, 1));
    }
}
