//! Learned database partitioning (E4b).
//!
//! Hilprecht et al. (SIGMOD'20) use reinforcement learning to explore
//! partition keys, balancing *access efficiency* (queries that filter on
//! the partition key touch one partition) against *load balance* (skewed
//! keys overload one node). Traditional heuristics pick the first column
//! or the most-queried column and cannot trade the two off.
//!
//! The simulation routes a query workload over a hash-partitioned table
//! and measures total work including the straggler penalty from imbalance.

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_common::synth::Zipf;
use aimdb_ml::bandit::{Bandit, BanditPolicy};

/// A column that can serve as partition key.
#[derive(Debug, Clone)]
pub struct ColumnProfile {
    pub name: String,
    pub distinct: usize,
    /// Zipf exponent of the value distribution (0 = uniform).
    pub skew: f64,
    /// Fraction of workload queries that filter on this column with
    /// equality.
    pub query_fraction: f64,
}

/// A partitioning scenario: table + workload over candidate key columns.
#[derive(Debug, Clone)]
pub struct PartitionScenario {
    pub rows: usize,
    pub partitions: usize,
    pub columns: Vec<ColumnProfile>,
}

impl PartitionScenario {
    /// The classic trap: the hottest column is badly skewed, a slightly
    /// colder column is uniform.
    pub fn skew_trap() -> Self {
        PartitionScenario {
            rows: 1_000_000,
            partitions: 8,
            columns: vec![
                ColumnProfile {
                    name: "customer_id".into(),
                    distinct: 10_000,
                    skew: 1.3, // a few whales dominate
                    query_fraction: 0.55,
                },
                ColumnProfile {
                    name: "order_id".into(),
                    distinct: 1_000_000,
                    skew: 0.0,
                    query_fraction: 0.4,
                },
                ColumnProfile {
                    name: "region".into(),
                    distinct: 4,
                    skew: 0.5,
                    query_fraction: 0.05,
                },
            ],
        }
    }

    /// Empirical imbalance factor of hash-partitioning on column `c`:
    /// (max partition size) / (average partition size), measured by
    /// sampling the value distribution.
    pub fn imbalance(&self, c: &ColumnProfile, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let z = Zipf::new(c.distinct.max(1), c.skew);
        let mut counts = vec![0usize; self.partitions];
        let samples = 20_000;
        for _ in 0..samples {
            let v = z.sample(&mut rng);
            // simple multiplicative hash
            let h = (v.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.partitions;
            counts[h] += 1;
        }
        let max = counts.iter().copied().fold(0, usize::max) as f64;
        let avg = samples as f64 / self.partitions as f64;
        (max / avg).max(1.0)
    }

    /// True workload cost of choosing column `key_idx` (work units).
    /// Routable queries touch one partition (sized by the imbalance —
    /// hot-key queries land on the hot partition); others fan out to all.
    pub fn true_cost(&self, key_idx: usize, seed: u64) -> f64 {
        let key = &self.columns[key_idx];
        let imb = self.imbalance(key, seed);
        let part_rows = self.rows as f64 / self.partitions as f64;
        let mut cost = 0.0;
        for c in &self.columns {
            let per_query = if c.name == key.name {
                // routed to one partition; hot keys hit the hot partition
                part_rows * imb
            } else {
                // fan out: scan every partition, pay the straggler
                self.rows as f64 * imb.sqrt()
            };
            cost += c.query_fraction * per_query;
        }
        cost
    }

    /// Noisy cost observation (what a real system would measure).
    pub fn observed_cost(&self, key_idx: usize, noise: f64, rng: &mut StdRng) -> f64 {
        let t = self.true_cost(key_idx, 99);
        t * (1.0 + noise * (rng.gen::<f64>() - 0.5))
    }
}

/// A partitioning decision.
#[derive(Debug, Clone)]
pub struct PartitionChoice {
    pub method: String,
    pub key: String,
    pub cost: f64,
    pub evaluations: usize,
}

/// Baseline: partition on the first column of the table.
/// Index in `0..n` maximizing `score` (0 for empty ranges).
fn argbest(n: usize, score: impl Fn(usize) -> f64) -> usize {
    let mut best = 0;
    for i in 1..n {
        if score(i) > score(best) {
            best = i;
        }
    }
    best
}

pub fn choose_first(s: &PartitionScenario) -> PartitionChoice {
    PartitionChoice {
        method: "first-column".into(),
        key: s.columns[0].name.clone(),
        cost: s.true_cost(0, 99),
        evaluations: 0,
    }
}

/// Baseline: partition on the most-queried column (access frequency
/// heuristic, ignores skew).
pub fn choose_most_queried(s: &PartitionScenario) -> PartitionChoice {
    let idx = argbest(s.columns.len(), |i| s.columns[i].query_fraction);
    PartitionChoice {
        method: "most-queried".into(),
        key: s.columns[idx].name.clone(),
        cost: s.true_cost(idx, 99),
        evaluations: 0,
    }
}

/// Learned advisor: explore candidate keys with a bandit over noisy cost
/// observations (each pull = deploying the candidate on a workload sample,
/// as the RL partitioner does), then commit to the best arm.
pub fn choose_learned(
    s: &PartitionScenario,
    budget: usize,
    noise: f64,
    seed: u64,
) -> PartitionChoice {
    let mut bandit = Bandit::new(s.columns.len(), BanditPolicy::Ucb1 { c: 1.2 }, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
    // normalize rewards into [0,1] against the worst candidate
    let worst = (0..s.columns.len())
        .map(|i| s.true_cost(i, 99))
        .fold(f64::MIN, f64::max);
    for _ in 0..budget {
        let arm = bandit.select();
        let c = s.observed_cost(arm, noise, &mut rng);
        bandit.update(arm, (1.0 - c / worst).clamp(0.0, 1.0));
    }
    let best = argbest(s.columns.len(), |i| bandit.mean(i));
    PartitionChoice {
        method: "learned(bandit)".into(),
        key: s.columns[best].name.clone(),
        cost: s.true_cost(best, 99),
        evaluations: budget,
    }
}

/// Oracle: exhaustive true-cost evaluation.
pub fn choose_oracle(s: &PartitionScenario) -> PartitionChoice {
    let idx = argbest(s.columns.len(), |i| -s.true_cost(i, 99));
    PartitionChoice {
        method: "oracle".into(),
        key: s.columns[idx].name.clone(),
        cost: s.true_cost(idx, 99),
        evaluations: s.columns.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_raises_imbalance() {
        let s = PartitionScenario::skew_trap();
        let hot = s.imbalance(&s.columns[0], 1); // skewed
        let uniform = s.imbalance(&s.columns[1], 1);
        assert!(hot > uniform * 1.5, "hot {hot} vs uniform {uniform}");
        assert!(uniform < 1.2);
    }

    #[test]
    fn most_queried_heuristic_falls_into_skew_trap() {
        let s = PartitionScenario::skew_trap();
        let heuristic = choose_most_queried(&s);
        let oracle = choose_oracle(&s);
        assert_eq!(heuristic.key, "customer_id"); // hottest
        assert_eq!(oracle.key, "order_id"); // uniform, nearly as hot
        assert!(oracle.cost < heuristic.cost);
    }

    #[test]
    fn learned_matches_oracle() {
        let s = PartitionScenario::skew_trap();
        let learned = choose_learned(&s, 60, 0.2, 7);
        let oracle = choose_oracle(&s);
        assert_eq!(learned.key, oracle.key);
        assert!(learned.cost <= oracle.cost * 1.001);
        let heuristic = choose_most_queried(&s);
        assert!(
            learned.cost < heuristic.cost,
            "learned {} vs heuristic {}",
            learned.cost,
            heuristic.cost
        );
    }

    #[test]
    fn first_column_is_arbitrary() {
        let s = PartitionScenario::skew_trap();
        let first = choose_first(&s);
        assert_eq!(first.key, "customer_id");
        assert_eq!(first.evaluations, 0);
    }

    #[test]
    fn costs_deterministic_given_seed() {
        let s = PartitionScenario::skew_trap();
        assert_eq!(s.true_cost(1, 99), s.true_cost(1, 99));
    }
}
