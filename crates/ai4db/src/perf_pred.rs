//! Concurrent-query performance prediction (E12b).
//!
//! Marcus & Papaemmanouil predict latency under concurrency with deep
//! models; Zhou et al. improve on them with a *graph embedding* of the
//! concurrent mix that captures operator-to-operator interactions (data
//! sharing and conflicts) that per-query pipelines miss.
//!
//! The simulation: a mix of queries runs concurrently; a query's true
//! latency depends on its isolated cost *plus interaction terms* —
//! co-running queries on the same table share the buffer pool (speedup)
//! while writers conflict with readers (slowdown). The baseline predictor
//! sums isolated plan costs (no interactions); the learned predictor uses
//! interaction features — the workload-graph signal — with an MLP.

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_common::synth::gaussian;
use aimdb_common::Result;
use aimdb_ml::data::Dataset;
use aimdb_ml::metrics::mape;
use aimdb_ml::mlp::{Head, Mlp, MlpParams};

/// One query in a concurrent mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryDesc {
    /// Which table it reads (0..N_TABLES).
    pub table: usize,
    /// Isolated execution cost units.
    pub isolated_cost: f64,
    /// Whether it writes (writers conflict with co-runners on the table).
    pub is_writer: bool,
}

pub const N_TABLES: usize = 4;

/// A concurrent batch of queries.
pub type Mix = Vec<QueryDesc>;

/// Generate random mixes of 2..=6 concurrent queries.
pub fn generate_mixes(n: usize, seed: u64) -> Vec<Mix> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = rng.gen_range(2..=6);
            (0..k)
                .map(|_| QueryDesc {
                    table: rng.gen_range(0..N_TABLES),
                    isolated_cost: rng.gen_range(5.0..100.0),
                    is_writer: rng.gen::<f64>() < 0.3,
                })
                .collect()
        })
        .collect()
}

/// Ground-truth total latency of a mix: sum of isolated costs adjusted by
/// interaction effects (shared scans help, reader/writer conflicts hurt,
/// global concurrency adds contention) plus measurement noise.
pub fn true_latency(mix: &Mix, noise: f64, rng: &mut StdRng) -> f64 {
    let mut total = 0.0;
    for (i, q) in mix.iter().enumerate() {
        let mut factor = 1.0;
        for (j, other) in mix.iter().enumerate() {
            if i == j {
                continue;
            }
            if other.table == q.table {
                if q.is_writer || other.is_writer {
                    factor += 0.45; // lock conflict on the shared table
                } else {
                    factor -= 0.18; // shared buffer-pool benefit
                }
            }
        }
        // global contention grows with mix size
        factor += 0.05 * (mix.len() as f64 - 1.0);
        total += q.isolated_cost * factor.max(0.2);
    }
    (total * (1.0 + noise * gaussian(rng))).max(1.0)
}

/// Baseline: sum of isolated plan costs (what a per-query cost model
/// predicts, blind to the mix).
pub fn baseline_predict(mix: &Mix) -> f64 {
    mix.iter().map(|q| q.isolated_cost).sum()
}

/// Workload-graph features of a mix: the graph-embedding signal reduced
/// to counts/weights of interaction edge types plus totals.
pub fn graph_features(mix: &Mix) -> Vec<f64> {
    let total_cost: f64 = mix.iter().map(|q| q.isolated_cost).sum();
    let mut share_edges = 0.0; // reader-reader on same table
    let mut conflict_edges = 0.0; // writer involved on same table
    let mut share_weight = 0.0;
    let mut conflict_weight = 0.0;
    for i in 0..mix.len() {
        for j in i + 1..mix.len() {
            if mix[i].table == mix[j].table {
                let w = mix[i].isolated_cost + mix[j].isolated_cost;
                if mix[i].is_writer || mix[j].is_writer {
                    conflict_edges += 1.0;
                    conflict_weight += w;
                } else {
                    share_edges += 1.0;
                    share_weight += w;
                }
            }
        }
    }
    let writers = mix.iter().filter(|q| q.is_writer).count() as f64;
    vec![
        total_cost,
        mix.len() as f64,
        writers,
        share_edges,
        conflict_edges,
        share_weight,
        conflict_weight,
    ]
}

/// The learned predictor: MLP over graph features, trained on observed
/// mix latencies.
pub struct PerfPredictor {
    mlp: Mlp,
}

impl PerfPredictor {
    pub fn train(mixes: &[Mix], latencies: &[f64], seed: u64) -> Result<Self> {
        let x: Vec<Vec<f64>> = mixes.iter().map(|m| graph_features(m)).collect();
        let y: Vec<f64> = latencies.iter().map(|l| l.ln()).collect();
        let ds = Dataset::new(x, y)?;
        let mlp = Mlp::fit(
            &ds,
            &MlpParams {
                hidden: vec![32, 16],
                epochs: 400,
                lr: 0.01,
                batch: 32,
                seed,
                head: Head::Regression,
            },
        )?;
        Ok(PerfPredictor { mlp })
    }

    pub fn predict(&self, mix: &Mix) -> f64 {
        self.mlp.predict_one(&graph_features(mix)).exp()
    }
}

/// Full E12b comparison: MAPE of baseline vs. learned on held-out mixes.
pub fn run_experiment(n_train: usize, n_test: usize, seed: u64) -> Result<(f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let train_mixes = generate_mixes(n_train, seed ^ 1);
    let train_lat: Vec<f64> = train_mixes
        .iter()
        .map(|m| true_latency(m, 0.05, &mut rng))
        .collect();
    let model = PerfPredictor::train(&train_mixes, &train_lat, seed)?;

    let test_mixes = generate_mixes(n_test, seed ^ 2);
    let test_lat: Vec<f64> = test_mixes
        .iter()
        .map(|m| true_latency(m, 0.0, &mut rng))
        .collect();
    let base_pred: Vec<f64> = test_mixes.iter().map(baseline_predict).collect();
    let learned_pred: Vec<f64> = test_mixes.iter().map(|m| model.predict(m)).collect();
    Ok((mape(&base_pred, &test_lat), mape(&learned_pred, &test_lat)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interactions_change_latency() {
        let mut rng = StdRng::seed_from_u64(1);
        let readers: Mix = (0..3)
            .map(|_| QueryDesc {
                table: 0,
                isolated_cost: 50.0,
                is_writer: false,
            })
            .collect();
        let with_writer: Mix = {
            let mut m = readers.clone();
            m[0].is_writer = true;
            m
        };
        let shared = true_latency(&readers, 0.0, &mut rng);
        let conflicted = true_latency(&with_writer, 0.0, &mut rng);
        assert!(
            conflicted > shared * 1.3,
            "conflict {conflicted} vs shared {shared}"
        );
        // shared readers beat the naive sum despite global contention
        assert!(shared < baseline_predict(&readers) * 1.05);
    }

    #[test]
    fn learned_predictor_beats_cost_sum() {
        let (base_mape, learned_mape) = run_experiment(800, 200, 7).unwrap();
        assert!(
            learned_mape < base_mape * 0.6,
            "learned {learned_mape} vs baseline {base_mape}"
        );
        assert!(learned_mape < 0.15, "learned MAPE {learned_mape}");
    }

    #[test]
    fn graph_features_capture_edge_types() {
        let mix: Mix = vec![
            QueryDesc {
                table: 0,
                isolated_cost: 10.0,
                is_writer: false,
            },
            QueryDesc {
                table: 0,
                isolated_cost: 20.0,
                is_writer: false,
            },
            QueryDesc {
                table: 0,
                isolated_cost: 30.0,
                is_writer: true,
            },
            QueryDesc {
                table: 1,
                isolated_cost: 40.0,
                is_writer: false,
            },
        ];
        let f = graph_features(&mix);
        assert_eq!(f[0], 100.0); // total cost
        assert_eq!(f[1], 4.0); // mix size
        assert_eq!(f[2], 1.0); // writers
        assert_eq!(f[3], 1.0); // one reader-reader share edge (q0,q1)
        assert_eq!(f[4], 2.0); // two conflict edges (q0,q2),(q1,q2)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_experiment(100, 50, 3).unwrap();
        let b = run_experiment(100, 50, 3).unwrap();
        assert_eq!(a, b);
    }
}
