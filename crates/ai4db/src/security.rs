//! Learning-based database security (E13).
//!
//! Three learned detectors, each against the rule-based practice the
//! tutorial says "cannot automatically detect unknown security
//! vulnerabilities":
//!
//! - **SQL injection**: a naive-Bayes/tree classifier over lexical
//!   features of the statement vs. a keyword blacklist (which obfuscated
//!   payloads evade);
//! - **sensitive-data discovery**: a decision tree over statistical
//!   column profiles vs. strict regex rules (which miss reformatted
//!   PII);
//! - **access control**: a logistic model of request legality trained on
//!   an audit log vs. a static role ACL (which can't express
//!   purpose/time-dependent policy).

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_common::Result;
use aimdb_ml::bayes::GaussianNb;
use aimdb_ml::data::Dataset;
use aimdb_ml::linear::{GdParams, LogisticRegression};
use aimdb_ml::metrics::binary_prf;
use aimdb_ml::tree::{DecisionTree, TreeParams, TreeTask};

// ---------------------------------------------------------------------
// 1. SQL injection detection
// ---------------------------------------------------------------------

/// A labeled SQL statement (true = injection attempt).
#[derive(Debug, Clone)]
pub struct LabeledSql {
    pub sql: String,
    pub is_injection: bool,
}

/// Generate a corpus of benign statements and injection payloads,
/// including obfuscated variants that dodge keyword rules.
pub fn generate_sql_corpus(n: usize, seed: u64) -> Vec<LabeledSql> {
    let mut rng = StdRng::seed_from_u64(seed);
    let benign_templates = [
        "SELECT name, age FROM users WHERE id = {n}",
        "SELECT * FROM orders WHERE amount > {n} ORDER BY amount DESC LIMIT 10",
        "UPDATE users SET age = {n} WHERE id = {n}",
        "INSERT INTO logs VALUES ({n}, 'event-{n}')",
        "SELECT COUNT(*) FROM items WHERE cat = {n} AND price < {n}",
        "DELETE FROM sessions WHERE expires < {n}",
        "SELECT u.name FROM users u JOIN orders o ON u.id = o.user_id WHERE o.id = {n}",
    ];
    let injection_templates = [
        // classic tautology
        "SELECT * FROM users WHERE name = '' OR 1 = 1 --' AND pass = ''",
        "SELECT * FROM users WHERE id = {n} OR '1'='1'",
        // union exfiltration
        "SELECT name FROM items WHERE id = {n} UNION SELECT password FROM users --",
        // stacked query
        "SELECT * FROM t WHERE id = {n}; DROP TABLE users; --",
        // comment-obfuscated tautology (no OR keyword adjacency)
        "SELECT * FROM users WHERE id = {n}/**/OR/**/2>1",
        // quote-dance without classic keywords
        "SELECT * FROM users WHERE name = '''' = '' OR id = id --",
        // hex-ish obfuscation and always-true arithmetic
        "SELECT * FROM users WHERE id = {n} OR 3-2 = 1",
    ];
    (0..n)
        .map(|i| {
            let is_injection = i % 2 == 1;
            let tpl = if is_injection {
                injection_templates[rng.gen_range(0..injection_templates.len())]
            } else {
                benign_templates[rng.gen_range(0..benign_templates.len())]
            };
            let sql = tpl.replace("{n}", &rng.gen_range(1..10_000).to_string());
            LabeledSql { sql, is_injection }
        })
        .collect()
}

/// Lexical features of a statement: quote/comment/operator statistics —
/// the classifier never sees raw keywords, so it generalizes past the
/// blacklist.
pub fn sql_features(sql: &str) -> Vec<f64> {
    let s = sql.to_ascii_uppercase();
    let count = |pat: &str| s.matches(pat).count() as f64;
    let len = s.len().max(1) as f64;
    let digits = s.chars().filter(|c| c.is_ascii_digit()).count() as f64;
    let quotes = count("'");
    vec![
        quotes,
        count("--") + count("/*"),
        count(";"),
        count(" OR ") + count("/**/OR") + count(")OR") + count("'OR"),
        count("="),
        count("UNION"),
        count(">") + count("<"),
        digits / len,
        len.ln(),
        // tautology shape: comparisons per WHERE
        count("=") / (count("WHERE") + 1.0),
        quotes % 2.0, // unbalanced quotes
    ]
}

/// Baseline: keyword blacklist — flags classic markers only.
pub fn blacklist_detect(sql: &str) -> bool {
    let s = sql.to_ascii_uppercase();
    s.contains("OR 1 = 1")
        || s.contains("OR '1'='1'")
        || s.contains("UNION SELECT")
        || s.contains("DROP TABLE")
}

/// A trained SQLi detector (naive Bayes or tree over lexical features).
pub enum SqliDetector {
    Bayes(GaussianNb),
    Tree(DecisionTree),
}

impl SqliDetector {
    pub fn train_bayes(corpus: &[LabeledSql]) -> Result<Self> {
        let ds = corpus_dataset(corpus)?;
        Ok(SqliDetector::Bayes(GaussianNb::fit(&ds)?))
    }

    pub fn train_tree(corpus: &[LabeledSql], seed: u64) -> Result<Self> {
        let ds = corpus_dataset(corpus)?;
        Ok(SqliDetector::Tree(DecisionTree::fit(
            &ds,
            TreeParams {
                max_depth: 8,
                task: TreeTask::Classification,
                seed,
                ..Default::default()
            },
        )?))
    }

    pub fn detect(&self, sql: &str) -> bool {
        let f = sql_features(sql);
        match self {
            SqliDetector::Bayes(m) => m.predict_one(&f) >= 0.5,
            SqliDetector::Tree(m) => m.predict_one(&f) >= 0.5,
        }
    }
}

fn corpus_dataset(corpus: &[LabeledSql]) -> Result<Dataset> {
    Dataset::new(
        corpus.iter().map(|l| sql_features(&l.sql)).collect(),
        corpus
            .iter()
            .map(|l| if l.is_injection { 1.0 } else { 0.0 })
            .collect(),
    )
}

/// Precision/recall/F1 of a detector over a labeled corpus.
pub fn detector_prf(corpus: &[LabeledSql], detect: impl Fn(&str) -> bool) -> (f64, f64, f64) {
    let pred: Vec<f64> = corpus
        .iter()
        .map(|l| if detect(&l.sql) { 1.0 } else { 0.0 })
        .collect();
    let truth: Vec<f64> = corpus
        .iter()
        .map(|l| if l.is_injection { 1.0 } else { 0.0 })
        .collect();
    binary_prf(&pred, &truth)
}

// ---------------------------------------------------------------------
// 2. Sensitive-data discovery
// ---------------------------------------------------------------------

/// Kinds of column content in the discovery corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    Email,
    Phone,
    NationalId,
    CreditCard,
    Name,
    FreeText,
    Counter,
}

impl ColumnKind {
    pub fn is_sensitive(&self) -> bool {
        matches!(
            self,
            ColumnKind::Email | ColumnKind::Phone | ColumnKind::NationalId | ColumnKind::CreditCard
        )
    }
}

/// A column of sample values with its hidden kind.
#[derive(Debug, Clone)]
pub struct ColumnSample {
    pub kind: ColumnKind,
    pub values: Vec<String>,
}

/// Generate labeled columns, including *reformatted* PII (spaces/dots in
/// phone numbers, card numbers without dashes) that strict regexes miss.
pub fn generate_columns(n: usize, seed: u64) -> Vec<ColumnSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let kinds = [
        ColumnKind::Email,
        ColumnKind::Phone,
        ColumnKind::NationalId,
        ColumnKind::CreditCard,
        ColumnKind::Name,
        ColumnKind::FreeText,
        ColumnKind::Counter,
    ];
    let first = ["ann", "bob", "carol", "dan", "eve", "frank"];
    let words = ["order", "ready", "ok", "pending", "ship", "later", "note"];
    (0..n)
        .map(|i| {
            let kind = kinds[i % kinds.len()];
            let values: Vec<String> = (0..30)
                .map(|_| match kind {
                    ColumnKind::Email => format!(
                        "{}{}@{}.com",
                        first[rng.gen_range(0..first.len())],
                        rng.gen_range(1..999),
                        ["mail", "corp", "example"][rng.gen_range(0..3)]
                    ),
                    ColumnKind::Phone => {
                        let sep = [" ", "-", ".", ""][rng.gen_range(0..4)];
                        format!(
                            "{}{sep}{}{sep}{}",
                            rng.gen_range(200..999),
                            rng.gen_range(100..999),
                            rng.gen_range(1000..9999)
                        )
                    }
                    ColumnKind::NationalId => {
                        let sep = ["-", "", " "][rng.gen_range(0..3)];
                        format!(
                            "{:03}{sep}{:02}{sep}{:04}",
                            rng.gen_range(1..999),
                            rng.gen_range(1..99),
                            rng.gen_range(1..9999)
                        )
                    }
                    ColumnKind::CreditCard => {
                        let sep = ["", " ", "-"][rng.gen_range(0..3)];
                        format!(
                            "{:04}{sep}{:04}{sep}{:04}{sep}{:04}",
                            rng.gen_range(4000..4999),
                            rng.gen_range(0..9999),
                            rng.gen_range(0..9999),
                            rng.gen_range(0..9999)
                        )
                    }
                    ColumnKind::Name => format!(
                        "{} {}",
                        first[rng.gen_range(0..first.len())],
                        ["smith", "jones", "lee", "khan"][rng.gen_range(0..4)]
                    ),
                    ColumnKind::FreeText => (0..rng.gen_range(3..9))
                        .map(|_| words[rng.gen_range(0..words.len())])
                        .collect::<Vec<_>>()
                        .join(" "),
                    ColumnKind::Counter => rng.gen_range(0..100000).to_string(),
                })
                .collect();
            ColumnSample { kind, values }
        })
        .collect()
}

/// Statistical profile of a column: digit/alpha/punct fractions, length
/// stats, separator diversity, distinct ratio, '@' incidence.
pub fn column_features(values: &[String]) -> Vec<f64> {
    let n = values.len().max(1) as f64;
    let mut digit = 0.0;
    let mut alpha = 0.0;
    let mut punct = 0.0;
    let mut total_len = 0.0;
    let mut at = 0.0;
    let mut spaces = 0.0;
    for v in values {
        let len = v.len().max(1) as f64;
        total_len += len;
        digit += v.chars().filter(|c| c.is_ascii_digit()).count() as f64 / len;
        alpha += v.chars().filter(|c| c.is_ascii_alphabetic()).count() as f64 / len;
        punct += v
            .chars()
            .filter(|c| ['-', '.', '@', '_'].contains(c))
            .count() as f64
            / len;
        if v.contains('@') {
            at += 1.0;
        }
        spaces += v.matches(' ').count() as f64;
    }
    let mut distinct: Vec<&String> = values.iter().collect();
    distinct.sort();
    distinct.dedup();
    vec![
        digit / n,
        alpha / n,
        punct / n,
        total_len / n,
        at / n,
        spaces / n,
        distinct.len() as f64 / n,
    ]
}

/// Baseline: strict regex-like rules on canonical formats only.
pub fn regex_sensitive(values: &[String]) -> bool {
    let canonical_phone = |v: &str| {
        let b: Vec<&str> = v.split('-').collect();
        b.len() == 3
            && b[0].len() == 3
            && b[1].len() == 3
            && b[2].len() == 4
            && b.iter().all(|p| p.chars().all(|c| c.is_ascii_digit()))
    };
    let canonical_ssn = |v: &str| {
        let b: Vec<&str> = v.split('-').collect();
        b.len() == 3
            && b[0].len() == 3
            && b[1].len() == 2
            && b[2].len() == 4
            && b.iter().all(|p| p.chars().all(|c| c.is_ascii_digit()))
    };
    let canonical_card = |v: &str| {
        let d: String = v.chars().filter(|c| c.is_ascii_digit()).collect();
        d.len() == 16 && v.contains('-') && v.split('-').count() == 4
    };
    let email = |v: &str| v.contains('@') && v.contains(".com");
    let hits = values
        .iter()
        .filter(|v| canonical_phone(v) || canonical_ssn(v) || canonical_card(v) || email(v))
        .count();
    hits as f64 / values.len().max(1) as f64 > 0.5
}

/// Train the learned sensitive-column classifier.
pub fn train_discovery(columns: &[ColumnSample], seed: u64) -> Result<DecisionTree> {
    let ds = Dataset::new(
        columns.iter().map(|c| column_features(&c.values)).collect(),
        columns
            .iter()
            .map(|c| if c.kind.is_sensitive() { 1.0 } else { 0.0 })
            .collect(),
    )?;
    DecisionTree::fit(
        &ds,
        TreeParams {
            max_depth: 8,
            task: TreeTask::Classification,
            seed,
            ..Default::default()
        },
    )
}

// ---------------------------------------------------------------------
// 3. Access control
// ---------------------------------------------------------------------

/// An access request in the audit log.
#[derive(Debug, Clone, Copy)]
pub struct AccessRequest {
    pub role: usize,      // 0=analyst 1=engineer 2=admin 3=contractor
    pub sensitivity: f64, // table sensitivity 0..1
    pub off_hours: bool,
    pub purpose_declared: bool,
    pub rows_requested: f64,
}

impl AccessRequest {
    pub fn features(&self) -> Vec<f64> {
        let mut f = vec![0.0; 4];
        f[self.role.min(3)] = 1.0;
        f.push(self.sensitivity);
        f.push(self.off_hours as i64 as f64);
        f.push(self.purpose_declared as i64 as f64);
        f.push(self.rows_requested.ln_1p());
        f
    }
}

/// Hidden policy: legality depends on purpose, sensitivity, volume and
/// time — *not* expressible as a pure role matrix.
pub fn true_legal(r: &AccessRequest) -> bool {
    if r.role == 2 {
        return true; // admins are trusted
    }
    if r.sensitivity > 0.7 && !r.purpose_declared {
        return false;
    }
    if r.off_hours && r.rows_requested > 1000.0 {
        return false;
    }
    if r.role == 3 && r.sensitivity > 0.4 {
        return false; // contractors off sensitive data
    }
    true
}

/// Generate an audit log labeled by the hidden policy (with label noise).
pub fn generate_requests(n: usize, noise: f64, seed: u64) -> Vec<(AccessRequest, bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r = AccessRequest {
                role: rng.gen_range(0..4),
                sensitivity: rng.gen::<f64>(),
                off_hours: rng.gen::<f64>() < 0.3,
                purpose_declared: rng.gen::<f64>() < 0.6,
                rows_requested: 10f64.powf(rng.gen_range(0.0..5.0)),
            };
            let mut legal = true_legal(&r);
            if rng.gen::<f64>() < noise {
                legal = !legal;
            }
            (r, legal)
        })
        .collect()
}

/// Baseline: static role ACL — the best pure role→allow/deny matrix
/// fitted on the log (majority decision per role).
pub fn static_acl(log: &[(AccessRequest, bool)]) -> [bool; 4] {
    let mut allow_votes = [0i64; 4];
    let mut totals = [0i64; 4];
    for (r, legal) in log {
        totals[r.role.min(3)] += 1;
        if *legal {
            allow_votes[r.role.min(3)] += 1;
        }
    }
    let mut acl = [false; 4];
    for i in 0..4 {
        acl[i] = allow_votes[i] * 2 >= totals[i].max(1);
    }
    acl
}

/// Train the learned access-control model.
pub fn train_access_model(log: &[(AccessRequest, bool)], seed: u64) -> Result<DecisionTree> {
    let ds = Dataset::new(
        log.iter().map(|(r, _)| r.features()).collect(),
        log.iter()
            .map(|(_, l)| if *l { 1.0 } else { 0.0 })
            .collect(),
    )?;
    DecisionTree::fit(
        &ds,
        TreeParams {
            max_depth: 10,
            task: TreeTask::Classification,
            seed,
            ..Default::default()
        },
    )
}

/// Also expose a linear learned policy for comparison.
pub fn train_access_logreg(log: &[(AccessRequest, bool)], seed: u64) -> Result<LogisticRegression> {
    let ds = Dataset::new(
        log.iter().map(|(r, _)| r.features()).collect(),
        log.iter()
            .map(|(_, l)| if *l { 1.0 } else { 0.0 })
            .collect(),
    )?;
    LogisticRegression::fit(
        &ds,
        GdParams {
            epochs: 300,
            lr: 0.1,
            seed,
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learned_sqli_beats_blacklist() {
        let train = generate_sql_corpus(600, 1);
        let test = generate_sql_corpus(300, 2);
        let bayes = SqliDetector::train_bayes(&train).unwrap();
        let tree = SqliDetector::train_tree(&train, 3).unwrap();
        let (_, rec_black, f1_black) = detector_prf(&test, blacklist_detect);
        let (_, rec_bayes, f1_bayes) = detector_prf(&test, |s| bayes.detect(s));
        let (_, _rec_tree, f1_tree) = detector_prf(&test, |s| tree.detect(s));
        // the blacklist misses obfuscated payloads
        assert!(rec_black < 0.8, "blacklist recall {rec_black}");
        assert!(rec_bayes > rec_black, "bayes recall {rec_bayes}");
        assert!(
            f1_tree > f1_black,
            "tree f1 {f1_tree} vs blacklist {f1_black}"
        );
        assert!(
            f1_bayes > 0.9 || f1_tree > 0.9,
            "one learned detector must be strong"
        );
    }

    #[test]
    fn blacklist_has_no_false_positives_on_benign() {
        let corpus = generate_sql_corpus(200, 5);
        for l in corpus.iter().filter(|l| !l.is_injection) {
            assert!(!blacklist_detect(&l.sql), "false positive on {}", l.sql);
        }
    }

    #[test]
    fn learned_discovery_beats_regex_on_reformatted_pii() {
        let train = generate_columns(280, 1);
        let test = generate_columns(140, 2);
        let tree = train_discovery(&train, 3).unwrap();
        let truth: Vec<f64> = test
            .iter()
            .map(|c| if c.kind.is_sensitive() { 1.0 } else { 0.0 })
            .collect();
        let regex_pred: Vec<f64> = test
            .iter()
            .map(|c| if regex_sensitive(&c.values) { 1.0 } else { 0.0 })
            .collect();
        let tree_pred: Vec<f64> = test
            .iter()
            .map(|c| tree.predict_one(&column_features(&c.values)))
            .collect();
        let (_, regex_rec, regex_f1) = binary_prf(&regex_pred, &truth);
        let (_, tree_rec, tree_f1) = binary_prf(&tree_pred, &truth);
        assert!(
            regex_rec < 0.95,
            "regex should miss reformatted PII: {regex_rec}"
        );
        assert!(
            tree_rec > regex_rec,
            "tree recall {tree_rec} vs regex {regex_rec}"
        );
        assert!(tree_f1 > regex_f1, "tree f1 {tree_f1} vs regex {regex_f1}");
        assert!(tree_f1 > 0.9, "tree f1 {tree_f1}");
    }

    #[test]
    fn learned_access_control_beats_static_acl() {
        let train = generate_requests(1500, 0.02, 1);
        let test = generate_requests(500, 0.0, 2);
        let tree = train_access_model(&train, 3).unwrap();
        let acl = static_acl(&train);
        let mut tree_correct = 0;
        let mut acl_correct = 0;
        for (r, legal) in &test {
            if (tree.predict_one(&r.features()) >= 0.5) == *legal {
                tree_correct += 1;
            }
            if acl[r.role.min(3)] == *legal {
                acl_correct += 1;
            }
        }
        let tree_acc = tree_correct as f64 / test.len() as f64;
        let acl_acc = acl_correct as f64 / test.len() as f64;
        assert!(tree_acc > acl_acc, "tree {tree_acc} vs acl {acl_acc}");
        assert!(tree_acc > 0.9, "tree accuracy {tree_acc}");
    }

    #[test]
    fn logreg_policy_is_reasonable_too() {
        let train = generate_requests(1500, 0.02, 4);
        let test = generate_requests(400, 0.0, 5);
        let lr = train_access_logreg(&train, 6).unwrap();
        let correct = test
            .iter()
            .filter(|(r, legal)| (lr.predict_proba(&r.features()) >= 0.5) == *legal)
            .count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.75, "logreg accuracy {acc}");
    }

    #[test]
    fn feature_extractors_are_stable() {
        assert_eq!(sql_features("SELECT 1").len(), 11);
        assert_eq!(column_features(&["a@b.com".to_string()]).len(), 7);
        let r = AccessRequest {
            role: 1,
            sensitivity: 0.5,
            off_hours: false,
            purpose_declared: true,
            rows_requested: 100.0,
        };
        assert_eq!(r.features().len(), 8);
    }
}
