//! Learned join-order selection (E6).
//!
//! "A SQL query may have millions, even billions of possible plans …
//! traditional heuristics methods cannot find optimal plans for dozens of
//! tables and dynamic programming is costly to explore the huge plan
//! space. Thus there are some deep reinforcement learning based methods
//! that automatically select good plans" — and SkinnerDB uses Monte-Carlo
//! tree search over join orders.
//!
//! The abstraction: a join graph with relation sizes and edge
//! selectivities; a left-deep order is costed by the C_out metric (sum of
//! intermediate cardinalities), the standard cost model in the join-order
//! literature. We compare exact DP (optimal, exponential), a greedy
//! heuristic, tabular Q-learning and MCTS on star / chain / clique graphs.

use std::collections::HashMap;

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_ml::mcts::{mcts_plan, MctsEnv};
use aimdb_ml::qlearn::{QLearner, QParams};

/// A join graph: relation cardinalities and equi-join edge selectivities.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    pub sizes: Vec<f64>,
    /// selectivity of the edge between relations (i, j), i < j.
    pub edges: HashMap<(usize, usize), f64>,
}

/// Graph topologies from the join-ordering literature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Relation 0 is the fact table; others join only to it.
    Star,
    /// i joins i+1.
    Chain,
    /// Every pair joins.
    Clique,
}

impl JoinGraph {
    pub fn generate(topology: Topology, n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sizes: Vec<f64> = (0..n)
            .map(|_| 10f64.powf(rng.gen_range(2.0..6.0)))
            .collect();
        let mut edges = HashMap::new();
        let sel = |rng: &mut StdRng| 10f64.powf(rng.gen_range(-5.0..-1.0));
        match topology {
            Topology::Star => {
                for j in 1..n {
                    edges.insert((0, j), sel(&mut rng));
                }
            }
            Topology::Chain => {
                for i in 0..n.saturating_sub(1) {
                    edges.insert((i, i + 1), sel(&mut rng));
                }
            }
            Topology::Clique => {
                for i in 0..n {
                    for j in i + 1..n {
                        edges.insert((i, j), sel(&mut rng));
                    }
                }
            }
        }
        JoinGraph { sizes, edges }
    }

    pub fn n(&self) -> usize {
        self.sizes.len()
    }

    fn edge(&self, i: usize, j: usize) -> Option<f64> {
        let key = if i < j { (i, j) } else { (j, i) };
        self.edges.get(&key).copied()
    }

    /// Cardinality of the intermediate result after joining set `mask`.
    pub fn card(&self, mask: u64) -> f64 {
        let mut c = 1.0;
        for i in 0..self.n() {
            if mask >> i & 1 == 1 {
                c *= self.sizes[i];
            }
        }
        for (&(i, j), &s) in &self.edges {
            if mask >> i & 1 == 1 && mask >> j & 1 == 1 {
                c *= s;
            }
        }
        c
    }

    /// C_out cost of a left-deep order: sum of intermediate cardinalities
    /// after each join step. Cross joins (adding a relation with no edge
    /// into the current set) are legal but pay their product blow-up.
    pub fn cost(&self, order: &[usize]) -> f64 {
        assert_eq!(order.len(), self.n(), "order must cover all relations");
        let mut mask = 0u64;
        let mut total = 0.0;
        for (k, &r) in order.iter().enumerate() {
            mask |= 1 << r;
            if k >= 1 {
                total += self.card(mask);
            }
        }
        total
    }

    /// Relations connected to `mask` by at least one edge (preferred
    /// next-join candidates; all remaining if none connect).
    pub fn connected_next(&self, mask: u64) -> Vec<usize> {
        let connected: Vec<usize> = (0..self.n())
            .filter(|&r| mask >> r & 1 == 0)
            .filter(|&r| (0..self.n()).any(|i| mask >> i & 1 == 1 && self.edge(i, r).is_some()))
            .collect();
        if connected.is_empty() {
            (0..self.n()).filter(|&r| mask >> r & 1 == 0).collect()
        } else {
            connected
        }
    }
}

/// Result of one join-ordering method.
#[derive(Debug, Clone)]
pub struct OrderResult {
    pub method: String,
    pub order: Vec<usize>,
    pub cost: f64,
    /// Number of plan-cost evaluations spent searching.
    pub evaluations: usize,
}

/// Exact left-deep DP (optimal reference; cost grows as 2^n · n²).
pub fn order_dp(g: &JoinGraph) -> OrderResult {
    let n = g.n();
    let full: u64 = (1 << n) - 1;
    // best[mask] = (cost of best left-deep plan covering mask, last rel)
    let mut best: HashMap<u64, (f64, Vec<usize>)> = HashMap::new();
    let mut evals = 0;
    for r in 0..n {
        best.insert(1 << r, (0.0, vec![r]));
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let mut cand: Option<(f64, Vec<usize>)> = None;
        for r in 0..n {
            if mask >> r & 1 == 0 {
                continue;
            }
            let prev = mask & !(1 << r);
            if let Some((pc, porder)) = best.get(&prev) {
                let c = pc + g.card(mask);
                evals += 1;
                if cand.as_ref().map_or(true, |(bc, _)| c < *bc) {
                    let mut order = porder.clone();
                    order.push(r);
                    cand = Some((c, order));
                }
            }
        }
        if let Some(c) = cand {
            best.insert(mask, c);
        }
    }
    // every singleton mask is seeded above, so `full` is always reachable;
    // the degenerate fallback keeps this panic-free regardless
    let (cost, order) = best
        .remove(&full)
        .unwrap_or_else(|| (f64::INFINITY, (0..n).collect()));
    OrderResult {
        method: "dp(optimal)".into(),
        order,
        cost,
        evaluations: evals,
    }
}

/// Greedy heuristic: start from the smallest relation, repeatedly add the
/// connected relation minimizing the next intermediate cardinality.
pub fn order_greedy(g: &JoinGraph) -> OrderResult {
    let n = g.n();
    let mut first = 0;
    for r in 1..n {
        if g.sizes[r] < g.sizes[first] {
            first = r;
        }
    }
    let mut order = vec![first];
    let mut mask = 1u64 << first;
    let mut evals = 0;
    while order.len() < n {
        let mut next = None;
        for a in g.connected_next(mask) {
            evals += 1;
            let c = g.card(mask | (1 << a));
            if next.map_or(true, |(_, bc)| c < bc) {
                next = Some((a, c));
            }
        }
        let Some((next, _)) = next else {
            break; // disconnected graph: no relation left to add
        };
        order.push(next);
        mask |= 1 << next;
    }
    let cost = g.cost(&order);
    OrderResult {
        method: "greedy".into(),
        order,
        cost,
        evaluations: evals,
    }
}

/// Q-learning over (joined-set, next-relation): the RL approach of
/// ReJOIN/DQ-style optimizers, with cost-based terminal rewards.
pub fn order_qlearn(g: &JoinGraph, episodes: usize, seed: u64) -> OrderResult {
    let n = g.n();
    let mut q = QLearner::new(
        n,
        QParams {
            alpha: 0.3,
            gamma: 1.0,
            epsilon: 1.0,
            epsilon_min: 0.02,
            epsilon_decay: 0.99,
            ..Default::default()
        },
        seed,
    );
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut evals = 0;
    let scale = |cost: f64| -> f64 {
        // map cost to a reward in ~[0, 1]: smaller cost → larger reward
        1.0 / (1.0 + cost.log10().max(0.0))
    };
    for _ in 0..episodes {
        let mut mask = 0u64;
        let mut order = Vec::with_capacity(n);
        let mut transitions = Vec::new();
        for _ in 0..n {
            let legal: Vec<usize> = if mask == 0 {
                (0..n).collect()
            } else {
                g.connected_next(mask)
            };
            let a = q.select(mask as usize, &legal);
            transitions.push((mask as usize, a));
            mask |= 1 << a;
            order.push(a);
        }
        let cost = g.cost(&order);
        evals += 1;
        let reward = scale(cost);
        // terminal reward propagated through the episode
        for (i, &(s, a)) in transitions.iter().enumerate().rev() {
            let terminal = i == transitions.len() - 1;
            let next_s = if terminal { s } else { transitions[i + 1].0 };
            let r = if terminal { reward } else { 0.0 };
            let next_legal: Vec<usize> = if terminal {
                vec![]
            } else {
                g.connected_next(next_s as u64)
            };
            q.update(s, a, r, next_s, &next_legal, terminal);
        }
        if best.as_ref().map_or(true, |(bc, _)| cost < *bc) {
            best = Some((cost, order));
        }
        q.end_episode();
    }
    let (cost, order) = best.unwrap_or_else(|| (f64::INFINITY, (0..n).collect()));
    OrderResult {
        method: "q-learning".into(),
        order,
        cost,
        evaluations: evals,
    }
}

struct JoinEnv<'a> {
    g: &'a JoinGraph,
}

impl MctsEnv for JoinEnv<'_> {
    type State = (u64, Vec<usize>); // (mask, order so far)
    type Action = usize;

    fn actions(&self, s: &(u64, Vec<usize>)) -> Vec<usize> {
        if s.1.len() == self.g.n() {
            return vec![];
        }
        if s.0 == 0 {
            (0..self.g.n()).collect()
        } else {
            self.g.connected_next(s.0)
        }
    }

    fn apply(&self, s: &(u64, Vec<usize>), a: &usize) -> (u64, Vec<usize>) {
        let mut order = s.1.clone();
        order.push(*a);
        (s.0 | (1 << a), order)
    }

    fn terminal_reward(&self, s: &(u64, Vec<usize>)) -> f64 {
        let cost = self.g.cost(&s.1);
        1.0 / (1.0 + cost.log10().max(0.0))
    }

    /// ε-greedy rollout: mostly follow the card-minimizing next relation,
    /// sometimes explore — stronger playouts than uniform random, the way
    /// SkinnerDB biases time slices toward promising orders.
    fn rollout(&self, state: &(u64, Vec<usize>), rng: &mut StdRng) -> f64 {
        let mut s = state.clone();
        loop {
            let acts = self.actions(&s);
            if acts.is_empty() {
                return self.terminal_reward(&s);
            }
            let a = if rng.gen::<f64>() < 0.3 {
                acts[rng.gen_range(0..acts.len())]
            } else {
                let mut pick = acts[0];
                for &x in &acts[1..] {
                    if self.g.card(s.0 | (1 << x)) < self.g.card(s.0 | (1 << pick)) {
                        pick = x;
                    }
                }
                pick
            };
            s = self.apply(&s, &a);
        }
    }
}

/// SkinnerDB-style MCTS over join orders.
pub fn order_mcts(g: &JoinGraph, iters_per_step: usize, seed: u64) -> OrderResult {
    let env = JoinEnv { g };
    let (order, _) = mcts_plan(&env, (0u64, Vec::new()), iters_per_step, 0.7, seed);
    let cost = g.cost(&order);
    OrderResult {
        method: "mcts(skinnerdb)".into(),
        order,
        cost,
        evaluations: iters_per_step * g.n(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_basics() {
        // two relations: cost = final card
        let g = JoinGraph {
            sizes: vec![100.0, 1000.0],
            edges: HashMap::from([((0, 1), 0.01)]),
        };
        assert_eq!(g.cost(&[0, 1]), 1000.0);
        assert_eq!(g.cost(&[1, 0]), 1000.0);
        // order matters with three relations
        let g = JoinGraph {
            sizes: vec![10.0, 1_000_000.0, 100.0],
            edges: HashMap::from([((0, 1), 1e-5), ((1, 2), 1e-4)]),
        };
        // joining small-selective first is cheaper
        assert!(g.cost(&[0, 1, 2]) < g.cost(&[1, 2, 0]));
    }

    #[test]
    fn dp_is_optimal_by_exhaustive_check() {
        let g = JoinGraph::generate(Topology::Clique, 6, 3);
        let dp = order_dp(&g);
        // brute force all permutations
        let mut perm: Vec<usize> = (0..6).collect();
        let mut best = f64::INFINITY;
        permute(&mut perm, 0, &mut |p| {
            best = best.min(g.cost(p));
        });
        assert!(
            (dp.cost - best).abs() < best * 1e-9,
            "dp {} vs brute {}",
            dp.cost,
            best
        );
    }

    fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == v.len() {
            f(v);
            return;
        }
        for i in k..v.len() {
            v.swap(k, i);
            permute(v, k + 1, f);
            v.swap(k, i);
        }
    }

    #[test]
    fn learned_methods_close_to_optimal_small() {
        for topo in [Topology::Star, Topology::Chain, Topology::Clique] {
            let g = JoinGraph::generate(topo, 7, 11);
            let dp = order_dp(&g);
            let ql = order_qlearn(&g, 400, 5);
            let mc = order_mcts(&g, 400, 5);
            assert!(
                ql.cost <= dp.cost * 10.0,
                "{topo:?} qlearn {} vs dp {}",
                ql.cost,
                dp.cost
            );
            assert!(
                mc.cost <= dp.cost * 3.0,
                "{topo:?} mcts {} vs dp {}",
                mc.cost,
                dp.cost
            );
        }
    }

    #[test]
    fn learned_beats_greedy_on_cliques() {
        // Greedy is optimal on easy instances but blows up on hard ones;
        // its mean cost ratio to the DP optimum grows with n, while MCTS
        // stays near 1 (measured: greedy ≈1.6-2.5x, MCTS ≈1.0-1.1x).
        let trials = 10u64;
        let (mut greedy_ratio, mut mcts_ratio) = (0.0, 0.0);
        for seed in 0..trials {
            let g = JoinGraph::generate(Topology::Clique, 9, seed);
            let dp = order_dp(&g);
            greedy_ratio += order_greedy(&g).cost / dp.cost;
            mcts_ratio += order_mcts(&g, 1500, seed).cost / dp.cost;
        }
        greedy_ratio /= trials as f64;
        mcts_ratio /= trials as f64;
        assert!(
            mcts_ratio < greedy_ratio,
            "mcts ratio {mcts_ratio:.3} vs greedy ratio {greedy_ratio:.3}"
        );
        assert!(
            mcts_ratio < 1.3,
            "mcts should stay near-optimal: {mcts_ratio:.3}"
        );
    }

    #[test]
    fn dp_cost_explodes_with_n_but_learned_stays_bounded() {
        let g = JoinGraph::generate(Topology::Chain, 14, 2);
        let dp = order_dp(&g);
        let mc = order_mcts(&g, 300, 3);
        // DP touches exponentially many subsets; MCTS is budgeted
        assert!(dp.evaluations > 50_000, "dp evals {}", dp.evaluations);
        assert!(mc.evaluations < 10_000, "mcts evals {}", mc.evaluations);
        // and the learned plan is still reasonable
        assert!(mc.cost <= dp.cost * 100.0);
    }

    #[test]
    fn orders_are_permutations() {
        let g = JoinGraph::generate(Topology::Star, 8, 7);
        for r in [
            order_dp(&g),
            order_greedy(&g),
            order_qlearn(&g, 100, 1),
            order_mcts(&g, 100, 1),
        ] {
            let mut o = r.order.clone();
            o.sort_unstable();
            assert_eq!(o, (0..8).collect::<Vec<_>>(), "{} bad order", r.method);
        }
    }
}
