//! # aimdb-ai4db
//!
//! Every AI4DB technique from §2.1 of "AI Meets Database: AI4DB and DB4AI"
//! (SIGMOD 2021), each paired with the traditional empirical baseline the
//! tutorial says it improves on:
//!
//! | Tutorial topic | Module | Learned technique | Baseline |
//! |---|---|---|---|
//! | Knob tuning (CDBTune/QTune) | [`knob`] | Q-learning over the knob space, query-aware variant | defaults, random, grid search |
//! | Index advisor | [`index_advisor`] | MDP/Q-learning over create-drop actions | none/all/frequency/greedy what-if |
//! | View advisor | [`view_advisor`] | learned benefit estimation + selection | no views, size heuristic |
//! | SQL rewriter | [`rewriter`] | MCTS over rewrite-rule orders | fixed top-down pass |
//! | Database partitioning | [`partition`] | RL over candidate keys | first-column / frequency heuristics |
//! | Cardinality/cost estimation | [`cardinality`] | MLP on query features | histograms + independence |
//! | Join order selection | [`join_order`] | Q-learning and MCTS (SkinnerDB-style) | exact DP, greedy |
//! | End-to-end optimizer (NEO) | [`neo`] | latency-trained plan value network | cost model with stale stats |
//! | Learned index (RMI/ALEX) | [`learned_index`] | two-stage RMI + updatable variant | B+tree |
//! | Learned KV design | [`kv_design`] | cost-guided design-space walk | fixed B-tree/LSM/hash |
//! | Learned transactions | [`txn_learned`] | conflict-aware scheduling via learned predictor | FIFO |
//! | Health monitoring (iSQUAD) | [`monitor`] | KPI clustering root-cause diagnosis | threshold rules |
//! | Activity monitoring | [`monitor`] | multi-armed bandit activity selection | record-all / random |
//! | Performance prediction | [`perf_pred`] | interaction-feature MLP | sum of isolated plan costs |
//! | Database security | [`security`] | learned SQLi/PII/access-control classifiers | keyword / regex / static ACL |
//! | Self-driving serving loop (Baihe) | [`admission`] | AIMD admission tuning on live KPIs + wait shares | fixed connection limit |

pub mod admission;
pub mod cardinality;
pub mod index_advisor;
pub mod join_order;
pub mod knob;
pub mod kv_design;
pub mod learned_index;
pub mod monitor;
pub mod neo;
pub mod partition;
pub mod perf_pred;
pub mod rewriter;
pub mod security;
pub mod txn_learned;
pub mod view_advisor;
