//! Learned key-value store design (E9) — design continuums / data
//! structure alchemy (Idreos et al.).
//!
//! "They define the design space by the fundamental design components …
//! To design a data structure, they first identify the bottleneck of the
//! total cost and then tweak different knobs in one direction until
//! reaching the cost boundary or the total cost is minimal, which is
//! similar to the gradient descent procedure."
//!
//! We implement exactly that: a parametric storage-design space whose
//! extreme points are the classic structures (B-tree, LSM-tree, hash
//! table, sorted array), an analytic I/O cost model over a workload
//! (point reads / writes / range scans), and the bottleneck-driven
//! coordinate-descent search. The experiment sweeps the read/write mix
//! and shows the searched design matching or beating every fixed design
//! everywhere, with crossovers where the literature puts them.

use aimdb_common::{AimError, Result};

/// A point in the storage design space.
///
/// Knobs (continuous, following the design-continuum formulation):
/// - `merge_levels`: 0 = in-place (B-tree-like); higher = more LSM-like
///   lazy merging (cheap writes, read amplification).
/// - `fence_density`: fraction of blocks with fence pointers (0 = scan,
///   1 = full index; more fences = faster point reads, more memory).
/// - `hash_fraction`: fraction of point-read traffic served by a hash
///   directory (O(1) reads, useless for ranges, memory cost).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Design {
    pub merge_levels: f64,
    pub fence_density: f64,
    pub hash_fraction: f64,
}

impl Design {
    pub fn btree() -> Design {
        Design {
            merge_levels: 0.0,
            fence_density: 1.0,
            hash_fraction: 0.0,
        }
    }

    pub fn lsm() -> Design {
        // real LSM runs carry full fence pointers / per-run indexes
        Design {
            merge_levels: 4.0,
            fence_density: 1.0,
            hash_fraction: 0.0,
        }
    }

    pub fn hash() -> Design {
        Design {
            merge_levels: 0.0,
            fence_density: 0.2,
            hash_fraction: 1.0,
        }
    }

    pub fn sorted_array() -> Design {
        Design {
            merge_levels: 0.0,
            fence_density: 0.0,
            hash_fraction: 0.0,
        }
    }

    fn clamp(mut self) -> Design {
        self.merge_levels = self.merge_levels.clamp(0.0, 8.0);
        self.fence_density = self.fence_density.clamp(0.0, 1.0);
        self.hash_fraction = self.hash_fraction.clamp(0.0, 1.0);
        self
    }
}

/// Workload mix (fractions sum to 1) over `n` keys.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub point_reads: f64,
    pub writes: f64,
    pub range_scans: f64,
    pub n_keys: f64,
}

impl Workload {
    pub fn mix(read_frac: f64, scan_frac: f64, n_keys: f64) -> Workload {
        let read_frac = read_frac.clamp(0.0, 1.0);
        let scan_frac = scan_frac.clamp(0.0, 1.0 - read_frac);
        Workload {
            point_reads: read_frac,
            range_scans: scan_frac,
            writes: 1.0 - read_frac - scan_frac,
            n_keys,
        }
    }
}

/// Per-component workload costs (expected I/Os weighted by the mix).
/// The shape follows the RUM/design-continuum trade-offs:
/// - buffered merging divides write cost by the merge depth (an LSM write
///   is ~1/B of a B-tree's read-modify-write) but adds per-level read and
///   scan amplification;
/// - fence pointers turn O(log n) block probes into nearly O(1) for point
///   reads, at a memory rent;
/// - a hash directory short-circuits point reads, does nothing for
///   ranges, must be maintained by writes, and rents the most memory.
fn components(d: &Design, w: &Workload) -> (f64, f64, f64, f64) {
    let n = w.n_keys.max(2.0);
    let log_n = n.log2();
    let fenced = 1.0 + log_n * (1.0 - 0.85 * d.fence_density);
    let sorted_read = (1.0 + 0.6 * d.merge_levels) * fenced;
    let point_unit = d.hash_fraction * 1.2 + (1.0 - d.hash_fraction) * sorted_read;
    let inplace_write = 2.0 + log_n * (1.0 - 0.8 * d.fence_density);
    let write_unit =
        inplace_write / (1.0 + 3.0 * d.merge_levels) + 0.2 * d.merge_levels + 2.0 * d.hash_fraction;
    let scan_unit = (1.0 + d.merge_levels) * (2.0 + 0.1 * log_n) + 1.5 * d.hash_fraction;
    let memory = 0.3 * d.fence_density + 0.6 * d.hash_fraction;
    (
        w.point_reads * point_unit,
        w.writes * write_unit,
        w.range_scans * scan_unit,
        memory,
    )
}

/// Total cost (expected I/Os per operation) of running `w` on design `d`.
pub fn cost(d: &Design, w: &Workload) -> f64 {
    let (p, wr, s, m) = components(d, w);
    p + wr + s + m
}

/// Identify the bottleneck (which workload component pays the most) —
/// the alchemy loop's "find the bottleneck" step. Returns (component
/// name, its share of total cost).
pub fn bottleneck(d: &Design, w: &Workload) -> (&'static str, f64) {
    let (point, write, scan, _) = components(d, w);
    let total = (point + write + scan).max(1e-12);
    let mut parts = [
        ("point_reads", point),
        ("writes", write),
        ("range_scans", scan),
    ];
    parts.sort_by(|a, b| b.1.total_cmp(&a.1));
    (parts[0].0, parts[0].1 / total)
}

/// The self-design search: coordinate descent over the knob space,
/// nudging one knob at a time in the direction that reduces total cost,
/// with step-size halving — the "gradient descent procedure" of the
/// data-structure-alchemy description.
pub fn search_design(
    w: &Workload,
    start: Design,
    max_iters: usize,
) -> Result<(Design, f64, usize)> {
    let mut d = start.clamp();
    let mut best = cost(&d, w);
    let mut evals = 1;
    let mut steps = [1.0, 0.25, 0.25]; // per-knob step sizes
    for _ in 0..max_iters {
        let mut improved = false;
        for knob in 0..3 {
            for dir in [1.0, -1.0] {
                let mut cand = d;
                match knob {
                    0 => cand.merge_levels += dir * steps[0],
                    1 => cand.fence_density += dir * steps[1],
                    _ => cand.hash_fraction += dir * steps[2],
                }
                let cand = cand.clamp();
                let c = cost(&cand, w);
                evals += 1;
                if c < best - 1e-9 {
                    d = cand;
                    best = c;
                    improved = true;
                }
            }
        }
        if !improved {
            // halve steps; stop when they're all tiny
            for s in steps.iter_mut() {
                *s /= 2.0;
            }
            if steps.iter().all(|&s| s < 1e-3) {
                break;
            }
        }
    }
    Ok((d, best, evals))
}

/// Fixed designs compared in the sweep.
pub fn fixed_designs() -> Vec<(&'static str, Design)> {
    vec![
        ("btree", Design::btree()),
        ("lsm", Design::lsm()),
        ("hash", Design::hash()),
        ("sorted-array", Design::sorted_array()),
    ]
}

/// One row of the E9 sweep: read fraction → cost of each fixed design +
/// the searched design.
#[derive(Debug, Clone)]
pub struct SweepRow {
    pub read_frac: f64,
    pub fixed: Vec<(&'static str, f64)>,
    pub searched: f64,
    pub searched_design: Design,
}

/// Sweep the read/write mix (with a fixed scan fraction).
pub fn sweep(scan_frac: f64, n_keys: f64, points: usize) -> Result<Vec<SweepRow>> {
    (0..points)
        .map(|i| {
            let read_frac = (1.0 - scan_frac) * i as f64 / (points - 1).max(1) as f64;
            let w = Workload::mix(read_frac, scan_frac, n_keys);
            let fixed = fixed_designs()
                .into_iter()
                .map(|(name, d)| (name, cost(&d, &w)))
                .collect();
            // multi-start: from each classic design, keep the best
            let mut best: Option<(Design, f64)> = None;
            for (_, start) in fixed_designs() {
                let (d, c, _) = search_design(&w, start, 200)?;
                if best.as_ref().map_or(true, |(_, bc)| c < *bc) {
                    best = Some((d, c));
                }
            }
            let (searched_design, searched) = best
                .ok_or_else(|| AimError::InvalidInput("no fixed designs to start from".into()))?;
            Ok(SweepRow {
                read_frac,
                fixed,
                searched,
                searched_design,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: f64 = 1e7;

    #[test]
    fn classic_tradeoffs_hold() {
        // write-heavy: LSM beats B-tree
        let w = Workload::mix(0.1, 0.0, N);
        assert!(cost(&Design::lsm(), &w) < cost(&Design::btree(), &w));
        // read-heavy point workload: hash beats LSM
        let r = Workload::mix(0.95, 0.0, N);
        assert!(cost(&Design::hash(), &r) < cost(&Design::lsm(), &r));
        // scan-heavy: hash is bad, few levels good
        let s = Workload::mix(0.1, 0.8, N);
        assert!(cost(&Design::btree(), &s) < cost(&Design::hash(), &s));
        assert!(cost(&Design::btree(), &s) < cost(&Design::lsm(), &s));
    }

    #[test]
    fn bottleneck_identifies_dominant_component() {
        let w = Workload::mix(0.05, 0.0, N); // 95% writes
        let (name, share) = bottleneck(&Design::btree(), &w);
        assert_eq!(name, "writes");
        assert!(share > 0.5);
        let r = Workload::mix(0.95, 0.0, N);
        let (name, _) = bottleneck(&Design::sorted_array(), &r);
        assert_eq!(name, "point_reads");
    }

    #[test]
    fn search_dominates_every_fixed_design() {
        for read_frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for scan_frac in [0.0, 0.2] {
                let w = Workload::mix(read_frac * (1.0 - scan_frac), scan_frac, N);
                let mut best_fixed = f64::INFINITY;
                let mut searched = f64::INFINITY;
                for (_, d) in fixed_designs() {
                    best_fixed = best_fixed.min(cost(&d, &w));
                    let (_, c, _) = search_design(&w, d, 200).unwrap();
                    searched = searched.min(c);
                }
                assert!(
                    searched <= best_fixed + 1e-9,
                    "read={read_frac} scan={scan_frac}: searched {searched} vs fixed {best_fixed}"
                );
            }
        }
    }

    #[test]
    fn search_strictly_beats_fixed_somewhere() {
        // mixed workloads live between the extreme designs
        let w = Workload::mix(0.45, 0.1, N);
        let mut best_fixed = f64::INFINITY;
        for (_, d) in fixed_designs() {
            best_fixed = best_fixed.min(cost(&d, &w));
        }
        let mut searched = f64::INFINITY;
        for (_, d) in fixed_designs() {
            let (_, c, _) = search_design(&w, d, 300).unwrap();
            searched = searched.min(c);
        }
        assert!(
            searched < best_fixed * 0.98,
            "searched {searched} vs best fixed {best_fixed}"
        );
    }

    #[test]
    fn sweep_shows_crossovers() {
        let rows = sweep(0.0, N, 11).unwrap();
        let at = |row: &SweepRow, name: &str| row.fixed.iter().find(|(n, _)| *n == name).unwrap().1;
        // write end: lsm < hash; read end: hash < lsm → a crossover exists
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert!(at(first, "lsm") < at(first, "hash"));
        assert!(at(last, "hash") < at(last, "lsm"));
        // searched design always at or below the fixed envelope
        for row in &rows {
            let envelope = row
                .fixed
                .iter()
                .map(|(_, c)| *c)
                .fold(f64::INFINITY, f64::min);
            assert!(row.searched <= envelope + 1e-9, "at read={}", row.read_frac);
        }
    }

    #[test]
    fn searched_knobs_move_with_the_workload() {
        // write-heavy → higher merge_levels than scan-heavy (scans pay
        // per-level merge amplification, so the search flattens the tree)
        let (dw, _, _) = search_design(&Workload::mix(0.05, 0.0, N), Design::btree(), 300).unwrap();
        let (ds, _, _) = search_design(&Workload::mix(0.1, 0.8, N), Design::lsm(), 300).unwrap();
        assert!(
            dw.merge_levels > ds.merge_levels,
            "write-heavy {dw:?} vs scan-heavy {ds:?}"
        );
        // read-heavy point workload → the search reaches for the hash path
        let (dr, _, _) = search_design(&Workload::mix(0.95, 0.0, N), Design::btree(), 300).unwrap();
        assert!(dr.hash_fraction > 0.5, "read-heavy {dr:?}");
    }
}
