//! Learned cardinality estimation (E5).
//!
//! The tutorial: "traditional techniques cannot effectively capture the
//! correlations between different columns/tables and thus cannot provide
//! high-quality estimation. Recently, deep learning based techniques …
//! are proposed to estimate the cost and cardinality."
//!
//! The experiment plants a two-column table whose correlation is
//! controlled (0 → independent, 0.9 → strongly dependent), issues
//! conjunctive range queries, and compares:
//! - the engine's histogram estimator (per-column selectivities multiplied
//!   under independence — exact at corr=0, badly wrong at corr→1), vs.
//! - an MLP trained on executed queries (features: normalized range
//!   bounds; target: log cardinality),
//! on the q-error metric standard in this literature.
//!
//! [`LearnedEstimator`] additionally implements the engine's
//! [`CardEstimator`] seam so the learned model can drive the real
//! optimizer (used by E7/A2).

use std::collections::HashMap;

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_common::synth::correlated_pairs;
use aimdb_common::{AimError, Result};
use aimdb_engine::optimizer::{CardEstimator, HistogramEstimator, SimplePred};
use aimdb_engine::stats::TableStats;
use aimdb_engine::Database;
use aimdb_ml::data::Dataset;
use aimdb_ml::metrics::q_error;
use aimdb_ml::mlp::{Head, Mlp, MlpParams};

/// A conjunctive two-column range query: `a IN [a_lo, a_hi] AND b IN
/// [b_lo, b_hi]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeQuery {
    pub a_lo: i64,
    pub a_hi: i64,
    pub b_lo: i64,
    pub b_hi: i64,
}

impl RangeQuery {
    pub fn to_sql(&self) -> String {
        format!(
            "SELECT COUNT(*) FROM pairs WHERE a BETWEEN {} AND {} AND b BETWEEN {} AND {}",
            self.a_lo, self.a_hi, self.b_lo, self.b_hi
        )
    }
}

/// The experiment's data: raw pairs plus a populated, ANALYZEd database.
pub struct CorrData {
    pub pairs: Vec<(i64, i64)>,
    pub domain: i64,
    pub corr: f64,
}

impl CorrData {
    pub fn generate(n: usize, domain: i64, corr: f64, seed: u64) -> Self {
        CorrData {
            pairs: correlated_pairs(n, domain, corr, seed),
            domain,
            corr,
        }
    }

    /// Load into a database table `pairs(a, b)` and ANALYZE it.
    pub fn load_into_db(&self) -> Result<Database> {
        let db = Database::new();
        db.execute("CREATE TABLE pairs (a INT, b INT)")?;
        for chunk in self.pairs.chunks(1000) {
            let tuples: Vec<String> = chunk.iter().map(|(a, b)| format!("({a}, {b})")).collect();
            db.execute(&format!("INSERT INTO pairs VALUES {}", tuples.join(",")))?;
        }
        db.execute("ANALYZE pairs")?;
        Ok(db)
    }

    /// Exact cardinality by counting.
    pub fn true_card(&self, q: &RangeQuery) -> f64 {
        self.pairs
            .iter()
            .filter(|(a, b)| *a >= q.a_lo && *a <= q.a_hi && *b >= q.b_lo && *b <= q.b_hi)
            .count() as f64
    }

    /// Random query workload. Half the queries are "correlated probes"
    /// (same range on both columns — where correlation bites hardest),
    /// half are independent ranges.
    pub fn gen_queries(&self, m: usize, seed: u64) -> Vec<RangeQuery> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m)
            .map(|i| {
                let w_a = rng.gen_range(1..=self.domain / 2);
                let a_lo = rng.gen_range(0..self.domain - w_a);
                if i % 2 == 0 {
                    RangeQuery {
                        a_lo,
                        a_hi: a_lo + w_a,
                        b_lo: a_lo,
                        b_hi: a_lo + w_a,
                    }
                } else {
                    let w_b = rng.gen_range(1..=self.domain / 2);
                    let b_lo = rng.gen_range(0..self.domain - w_b);
                    RangeQuery {
                        a_lo,
                        a_hi: a_lo + w_a,
                        b_lo,
                        b_hi: b_lo + w_b,
                    }
                }
            })
            .collect()
    }
}

/// Baseline estimate: histogram selectivities multiplied (independence).
pub fn histogram_estimate(stats: &TableStats, q: &RangeQuery) -> f64 {
    let sel_a = stats.range_selectivity("a", Some(q.a_lo as f64), Some(q.a_hi as f64));
    let sel_b = stats.range_selectivity("b", Some(q.b_lo as f64), Some(q.b_hi as f64));
    (sel_a * sel_b * stats.row_count as f64).max(0.0)
}

/// The learned estimator: an MLP over normalized query bounds trained on
/// executed queries (supervised by their true cardinalities).
pub struct LearnedCard {
    mlp: Mlp,
    rows: f64,
    domain: f64,
}

impl LearnedCard {
    fn featurize(&self, q: &RangeQuery) -> Vec<f64> {
        Self::features(q, self.domain)
    }

    fn features(q: &RangeQuery, domain: f64) -> Vec<f64> {
        let d = domain;
        let overlap_lo = q.a_lo.max(q.b_lo) as f64;
        let overlap_hi = q.a_hi.min(q.b_hi) as f64;
        vec![
            q.a_lo as f64 / d,
            q.a_hi as f64 / d,
            q.b_lo as f64 / d,
            q.b_hi as f64 / d,
            (q.a_hi - q.a_lo) as f64 / d,
            (q.b_hi - q.b_lo) as f64 / d,
            // overlap width — the correlation-sensitive feature
            ((overlap_hi - overlap_lo).max(-1.0) + 1.0) / d,
        ]
    }

    /// Train on a workload of executed queries.
    pub fn train(data: &CorrData, train_queries: &[RangeQuery], seed: u64) -> Result<Self> {
        if train_queries.is_empty() {
            return Err(AimError::InvalidInput("no training queries".into()));
        }
        let rows = data.pairs.len() as f64;
        let x: Vec<Vec<f64>> = train_queries
            .iter()
            .map(|q| Self::features(q, data.domain as f64))
            .collect();
        let y: Vec<f64> = train_queries
            .iter()
            .map(|q| (data.true_card(q) + 1.0).ln())
            .collect();
        let ds = Dataset::new(x, y)?;
        let mlp = Mlp::fit(
            &ds,
            &MlpParams {
                hidden: vec![64, 32],
                epochs: 300,
                lr: 0.01,
                batch: 32,
                seed,
                head: Head::Regression,
            },
        )?;
        Ok(LearnedCard {
            mlp,
            rows,
            domain: data.domain as f64,
        })
    }

    pub fn estimate(&self, q: &RangeQuery) -> f64 {
        self.mlp
            .predict_one(&self.featurize(q))
            .exp()
            .clamp(0.0, self.rows)
    }
}

/// Q-error summary of an estimator over a workload.
#[derive(Debug, Clone)]
pub struct QErrorReport {
    pub method: String,
    pub median: f64,
    pub p95: f64,
    pub max: f64,
}

pub fn evaluate<F: Fn(&RangeQuery) -> f64>(
    method: &str,
    data: &CorrData,
    queries: &[RangeQuery],
    estimate: F,
) -> QErrorReport {
    let mut qes: Vec<f64> = queries
        .iter()
        .map(|q| q_error(estimate(q), data.true_card(q)))
        .collect();
    qes.sort_by(|a, b| a.total_cmp(b));
    QErrorReport {
        method: method.into(),
        median: aimdb_ml::metrics::median(&qes),
        p95: aimdb_ml::metrics::percentile(&qes, 95.0),
        max: qes.last().copied().unwrap_or(1.0),
    }
}

/// [`CardEstimator`] adapter: routes range predicates on `pairs.a` /
/// `pairs.b` through the learned model, everything else to histograms —
/// this is how the learned model drives the engine's real optimizer.
pub struct LearnedEstimator {
    pub model: LearnedCard,
    pub table: String,
    fallback: HistogramEstimator,
}

impl LearnedEstimator {
    pub fn new(model: LearnedCard, table: &str) -> Self {
        LearnedEstimator {
            model,
            table: table.to_ascii_lowercase(),
            fallback: HistogramEstimator,
        }
    }
}

impl CardEstimator for LearnedEstimator {
    fn scan_selectivity(
        &self,
        table: &str,
        preds: &[SimplePred],
        stats: Option<&TableStats>,
    ) -> f64 {
        if table.eq_ignore_ascii_case(&self.table) && !preds.is_empty() {
            // assemble bounds for columns a and b
            let d = self.model.domain as i64;
            let (mut a, mut b) = ((0i64, d), (0i64, d));
            let mut all_known = true;
            for p in preds {
                match p {
                    SimplePred::Range { column, lo, hi } => {
                        let r = (
                            lo.map(|f| f as i64).unwrap_or(0),
                            hi.map(|f| f as i64).unwrap_or(d),
                        );
                        match column.as_str() {
                            "a" => a = r,
                            "b" => b = r,
                            _ => all_known = false,
                        }
                    }
                    SimplePred::Eq { column, value } => {
                        if let Ok(v) = value.as_i64() {
                            match column.as_str() {
                                "a" => a = (v, v),
                                "b" => b = (v, v),
                                _ => all_known = false,
                            }
                        } else {
                            all_known = false;
                        }
                    }
                    SimplePred::Other => all_known = false,
                }
            }
            if all_known {
                let q = RangeQuery {
                    a_lo: a.0,
                    a_hi: a.1,
                    b_lo: b.0,
                    b_hi: b.1,
                };
                let est = self.model.estimate(&q);
                return (est / self.model.rows).clamp(1e-9, 1.0);
            }
        }
        self.fallback.scan_selectivity(table, preds, stats)
    }

    fn join_selectivity(
        &self,
        left: (&str, &str),
        right: (&str, &str),
        stats: &HashMap<String, TableStats>,
    ) -> f64 {
        self.fallback.join_selectivity(left, right, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(corr: f64) -> (QErrorReport, QErrorReport) {
        let data = CorrData::generate(20_000, 100, corr, 11);
        let db = data.load_into_db().unwrap();
        let stats = db.stats_snapshot();
        let st = stats.get("pairs").unwrap().clone();
        let train = data.gen_queries(600, 21);
        let test = data.gen_queries(150, 22);
        let model = LearnedCard::train(&data, &train, 5).unwrap();
        let hist = evaluate("histogram", &data, &test, |q| histogram_estimate(&st, q));
        let learned = evaluate("learned", &data, &test, |q| model.estimate(q));
        (hist, learned)
    }

    #[test]
    fn histogram_is_fine_when_independent() {
        let (hist, _) = run(0.0);
        assert!(hist.median < 1.6, "median q-error {}", hist.median);
    }

    #[test]
    fn learned_beats_histogram_under_correlation() {
        let (hist, learned) = run(0.9);
        // independence assumption collapses under correlation
        assert!(
            hist.p95 > learned.p95 * 2.0,
            "hist p95 {} vs learned p95 {}",
            hist.p95,
            learned.p95
        );
        assert!(
            hist.median > learned.median,
            "hist med {} vs learned med {}",
            hist.median,
            learned.median
        );
        assert!(learned.median < 2.5, "learned median {}", learned.median);
    }

    #[test]
    fn true_card_matches_sql_count() {
        let data = CorrData::generate(3_000, 50, 0.5, 3);
        let db = data.load_into_db().unwrap();
        for q in data.gen_queries(5, 7) {
            let sql_count = db
                .execute(&q.to_sql())
                .unwrap()
                .scalar()
                .unwrap()
                .as_i64()
                .unwrap();
            assert_eq!(sql_count as f64, data.true_card(&q));
        }
    }

    #[test]
    fn learned_estimator_plugs_into_optimizer() {
        let data = CorrData::generate(8_000, 100, 0.9, 13);
        let db = data.load_into_db().unwrap();
        let train = data.gen_queries(400, 31);
        let model = LearnedCard::train(&data, &train, 5).unwrap();
        db.set_estimator(std::sync::Arc::new(LearnedEstimator::new(model, "pairs")));
        // plan a correlated query: estimated rows should be near truth
        let q = RangeQuery {
            a_lo: 10,
            a_hi: 30,
            b_lo: 10,
            b_hi: 30,
        };
        let truth = data.true_card(&q);
        let sel = aimdb_sql::parser::parse_one(&format!(
            "SELECT * FROM pairs WHERE a BETWEEN {} AND {} AND b BETWEEN {} AND {}",
            q.a_lo, q.a_hi, q.b_lo, q.b_hi
        ))
        .unwrap();
        let aimdb_sql::Statement::Select(sel) = sel else {
            panic!()
        };
        let plan = db.plan(&sel).unwrap();
        let qe = q_error(plan.est_rows, truth);
        assert!(
            qe < 3.0,
            "optimizer-visible q-error {qe} (est {} truth {truth})",
            plan.est_rows
        );
    }

    #[test]
    fn empty_training_rejected() {
        let data = CorrData::generate(100, 10, 0.0, 1);
        assert!(LearnedCard::train(&data, &[], 1).is_err());
    }
}
