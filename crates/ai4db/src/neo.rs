//! End-to-end learned optimizer (E7) — the NEO line of work.
//!
//! NEO (Marcus et al., VLDB'19) learns to pick physical plans from
//! *execution latency feedback* instead of a cost model, which makes it
//! robust to estimation errors. We reproduce the core loop against the
//! real engine:
//!
//! 1. enumerate candidate physical plans for each query (varying the cost
//!    model's page-cost assumptions and the estimator — the same plan
//!    diversity NEO gets from its search);
//! 2. the *baseline* picks the plan the classical cost model prefers —
//!    which goes wrong when statistics are stale;
//! 3. the *learned* optimizer featurizes plans, predicts measured cost
//!    with a value network trained on executed plans (ε-greedy
//!    experience collection), and picks the argmin.
//!
//! The experiment makes statistics stale (ANALYZE, then grow the data
//! 10×) so the cost model's choice is systematically wrong, while latency
//! feedback self-corrects — the tutorial's "robust to estimation errors".

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_common::Result;
use aimdb_engine::optimizer::{CardEstimator, CostParams, HistogramEstimator, Planner};
use aimdb_engine::plan::{PhysOp, PhysicalPlan};
use aimdb_engine::Database;
use aimdb_ml::data::Dataset;
use aimdb_ml::mlp::{Head, Mlp, MlpParams};
use aimdb_sql::ast::{Select, Statement};
use aimdb_sql::parser::parse_one;

/// Plan feature vector for the value network.
pub fn featurize(plan: &PhysicalPlan) -> Vec<f64> {
    fn walk(p: &PhysicalPlan, acc: &mut [f64; 6]) {
        match &p.op {
            PhysOp::SeqScan { .. } => acc[0] += 1.0,
            PhysOp::IndexScan { .. } => acc[1] += 1.0,
            PhysOp::HashJoin { .. } => acc[2] += 1.0,
            PhysOp::NestedLoopJoin { .. } => acc[3] += 1.0,
            PhysOp::Filter { .. } => acc[4] += 1.0,
            _ => acc[5] += 1.0,
        }
        for c in p.children() {
            walk(c, acc);
        }
    }
    let mut counts = [0.0; 6];
    walk(plan, &mut counts);
    let mut f = counts.to_vec();
    f.push((plan.est_rows + 1.0).ln());
    f.push((plan.est_cost + 1.0).ln());
    f.push(plan.node_count() as f64);
    f
}

/// Enumerate diverse candidate plans for a query by sweeping the cost
/// model's assumptions (page-cost ratios and index enthusiasm), deduped
/// by plan shape.
pub fn enumerate_candidates(db: &Database, sel: &Select) -> Result<Vec<PhysicalPlan>> {
    let stats = db.stats_snapshot();
    let est = HistogramEstimator;
    let mut plans: Vec<PhysicalPlan> = Vec::new();
    let mut shapes: Vec<String> = Vec::new();
    for rpc in [1.0, 4.0, 16.0, 64.0] {
        for rows_per_page in [16.0, 64.0, 256.0] {
            let mut planner = Planner::new(&db.catalog, &stats, &est as &dyn CardEstimator);
            planner.cost = CostParams {
                random_page_cost: rpc,
                rows_per_page,
                ..CostParams::default()
            };
            let plan = planner.plan_select(sel)?;
            let shape = plan.explain();
            // dedupe on operator tree only (strip cost annotations)
            let shape_key: String = shape
                .lines()
                .map(|l| l.split("(rows").next().unwrap_or(l).trim_end())
                .collect::<Vec<_>>()
                .join("\n");
            if !shapes.contains(&shape_key) {
                shapes.push(shape_key);
                plans.push(plan);
            }
        }
    }
    Ok(plans)
}

/// The classical choice: minimum estimated cost under current statistics.
pub fn baseline_pick(candidates: &[PhysicalPlan]) -> usize {
    let mut best = 0;
    for i in 1..candidates.len() {
        if candidates[i].est_cost < candidates[best].est_cost {
            best = i;
        }
    }
    best
}

/// NEO-style learned optimizer: a plan value network plus its experience.
pub struct Neo {
    experience: Vec<(Vec<f64>, f64)>,
    model: Option<Mlp>,
    rng: StdRng,
    pub epsilon: f64,
}

impl Neo {
    pub fn new(seed: u64) -> Self {
        Neo {
            experience: Vec::new(),
            model: None,
            rng: StdRng::seed_from_u64(seed),
            epsilon: 0.3,
        }
    }

    /// Pick a candidate: ε-greedy during training, greedy once trained.
    pub fn pick(&mut self, candidates: &[PhysicalPlan], explore: bool) -> usize {
        if explore && self.rng.gen::<f64>() < self.epsilon {
            return self.rng.gen_range(0..candidates.len());
        }
        match &self.model {
            Some(m) => {
                let mut best = 0;
                let mut best_pred = f64::INFINITY;
                for (i, c) in candidates.iter().enumerate() {
                    let pred = m.predict_one(&featurize(c));
                    if pred < best_pred {
                        best = i;
                        best_pred = pred;
                    }
                }
                best
            }
            None => baseline_pick(candidates), // cold start: cost model
        }
    }

    /// Record an executed plan's measured cost units.
    pub fn observe(&mut self, plan: &PhysicalPlan, measured_cost: f64) {
        self.experience
            .push((featurize(plan), (measured_cost + 1.0).ln()));
    }

    /// Retrain the value network on all experience.
    pub fn retrain(&mut self, seed: u64) -> Result<()> {
        if self.experience.len() < 8 {
            return Ok(()); // not enough signal yet
        }
        let x: Vec<Vec<f64>> = self.experience.iter().map(|(f, _)| f.clone()).collect();
        let y: Vec<f64> = self.experience.iter().map(|(_, c)| *c).collect();
        let ds = Dataset::new(x, y)?;
        self.model = Some(Mlp::fit(
            &ds,
            &MlpParams {
                hidden: vec![32, 16],
                epochs: 250,
                lr: 0.01,
                batch: 16,
                seed,
                head: Head::Regression,
            },
        )?);
        Ok(())
    }

    pub fn experience_len(&self) -> usize {
        self.experience.len()
    }
}

/// Result of the E7 comparison.
#[derive(Debug, Clone)]
pub struct NeoReport {
    pub baseline_latency: f64,
    pub neo_latency: f64,
    pub episodes: usize,
    pub candidates_per_query: f64,
}

/// The stale-stats scenario: analyze early, then grow the hot range 10×
/// so histogram selectivities are wrong.
pub fn stale_stats_db() -> Result<Database> {
    let db = Database::new();
    db.execute("CREATE TABLE events (id INT, kind INT, val INT)")?;
    // phase 1: uniform kinds 0..100, 2k rows → ANALYZE (stats think kind
    // is selective: ~1%)
    let tuples: Vec<String> = (0..2000)
        .map(|i| format!("({i}, {}, {})", i % 100, i % 37))
        .collect();
    db.execute(&format!("INSERT INTO events VALUES {}", tuples.join(",")))?;
    db.execute("CREATE INDEX ev_kind ON events (kind)")?;
    db.execute("ANALYZE events")?;
    // phase 2: 20k more rows, almost all kind=7 → kind=7 now matches ~60%
    // of the table, so the index scan the stats still love is terrible
    let tuples: Vec<String> = (2000..22000)
        .map(|i| {
            format!(
                "({i}, {}, {})",
                if i % 8 == 0 { i % 100 } else { 7 },
                i % 37
            )
        })
        .collect();
    db.execute(&format!("INSERT INTO events VALUES {}", tuples.join(",")))?;
    Ok(db)
}

/// The workload whose plans the stale stats mislead.
pub fn stale_workload() -> Result<Vec<Select>> {
    [
        "SELECT COUNT(*) FROM events WHERE kind = 7 AND val < 30",
        "SELECT SUM(val) FROM events WHERE kind = 7",
        "SELECT COUNT(*) FROM events WHERE kind = 7 AND val > 5",
    ]
    .iter()
    .map(|sql| match parse_one(sql)? {
        Statement::Select(s) => Ok(s),
        _ => unreachable!("workload is SELECTs"),
    })
    .collect()
}

/// Run the full E7 loop: train NEO with latency feedback for `episodes`,
/// then compare final per-workload latency against the cost-model choice.
pub fn run_experiment(episodes: usize, seed: u64) -> Result<NeoReport> {
    let db = stale_stats_db()?;
    let workload = stale_workload()?;
    let mut neo = Neo::new(seed);
    let mut cand_count = 0.0;

    // training: ε-greedy plan choice, observe measured cost, retrain
    for ep in 0..episodes {
        for sel in &workload {
            let cands = enumerate_candidates(&db, sel)?;
            cand_count += cands.len() as f64;
            let pick = neo.pick(&cands, true);
            let (_, measured) = db.run_plan_measured(&cands[pick])?;
            neo.observe(&cands[pick], measured);
        }
        neo.retrain(seed ^ ep as u64)?;
        neo.epsilon = (neo.epsilon * 0.85).max(0.05);
    }

    // evaluation: greedy NEO vs cost-model baseline
    let mut baseline_latency = 0.0;
    let mut neo_latency = 0.0;
    for sel in &workload {
        let cands = enumerate_candidates(&db, sel)?;
        let b = baseline_pick(&cands);
        let (_, bl) = db.run_plan_measured(&cands[b])?;
        baseline_latency += bl;
        let n = neo.pick(&cands, false);
        let (_, nl) = db.run_plan_measured(&cands[n])?;
        neo_latency += nl;
    }
    Ok(NeoReport {
        baseline_latency,
        neo_latency,
        episodes,
        candidates_per_query: cand_count / (episodes.max(1) * workload.len()) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_are_diverse() {
        let db = stale_stats_db().unwrap();
        let workload = stale_workload().unwrap();
        let cands = enumerate_candidates(&db, &workload[0]).unwrap();
        assert!(cands.len() >= 2, "want plan diversity, got {}", cands.len());
        // at least one indexed and one sequential variant
        let shapes: Vec<String> = cands.iter().map(|p| p.explain()).collect();
        assert!(shapes.iter().any(|s| s.contains("IndexScan")));
        assert!(shapes.iter().any(|s| s.contains("SeqScan")));
    }

    #[test]
    fn stale_stats_mislead_the_cost_model() {
        let db = stale_stats_db().unwrap();
        let workload = stale_workload().unwrap();
        let cands = enumerate_candidates(&db, &workload[1]).unwrap();
        let baseline = baseline_pick(&cands);
        // the cost model picks an index scan (stats say kind=7 is 1%)…
        assert!(cands[baseline].explain().contains("IndexScan"));
        // …but measured execution says a seq scan is at least as fast
        let (_, idx_cost) = db.run_plan_measured(&cands[baseline]).unwrap();
        let seq = cands
            .iter()
            .find(|p| p.explain().contains("SeqScan"))
            .unwrap();
        let (_, seq_cost) = db.run_plan_measured(seq).unwrap();
        assert!(
            seq_cost < idx_cost,
            "seq {seq_cost} should beat misled index {idx_cost}"
        );
    }

    #[test]
    fn neo_learns_to_beat_the_misled_cost_model() {
        let report = run_experiment(6, 42).unwrap();
        assert!(
            report.neo_latency < report.baseline_latency,
            "neo {} vs baseline {}",
            report.neo_latency,
            report.baseline_latency
        );
    }

    #[test]
    fn plans_agree_on_results() {
        let db = stale_stats_db().unwrap();
        let workload = stale_workload().unwrap();
        for sel in &workload {
            let cands = enumerate_candidates(&db, sel).unwrap();
            let (first, _) = db.run_plan_measured(&cands[0]).unwrap();
            for c in &cands[1..] {
                let (rows, _) = db.run_plan_measured(c).unwrap();
                assert_eq!(rows, first, "plan variants must return identical rows");
            }
        }
    }

    #[test]
    fn featurize_is_stable_length() {
        let db = stale_stats_db().unwrap();
        let workload = stale_workload().unwrap();
        for sel in &workload {
            for c in enumerate_candidates(&db, sel).unwrap() {
                assert_eq!(featurize(&c).len(), 9);
            }
        }
    }

    #[test]
    fn cold_start_falls_back_to_cost_model() {
        let db = stale_stats_db().unwrap();
        let workload = stale_workload().unwrap();
        let cands = enumerate_candidates(&db, &workload[0]).unwrap();
        let mut neo = Neo::new(1);
        neo.epsilon = 0.0;
        assert_eq!(neo.pick(&cands, true), baseline_pick(&cands));
    }
}
