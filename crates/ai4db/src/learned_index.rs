//! Learned indexes (E8) — the RMI of Kraska et al. and an updatable
//! delta-buffer variant in the spirit of ALEX.
//!
//! "Indexes are models": a B+tree maps a key to a page; a learned index
//! replaces the tree walk with a model predicting the key's position in
//! the sorted array, plus a bounded local search within the model's
//! worst-case error. Wins: size (two linear models per segment vs. a node
//! hierarchy) and, on learnable distributions, lookup work.
//!
//! [`Rmi`] is the classic two-stage recursive model index (linear root
//! dispatching to linear leaf models with per-leaf error bounds).
//! [`UpdatableIndex`] adds ALEX-style updates: inserts go to a sorted
//! delta buffer that merges into a rebuilt RMI when it grows past a
//! fraction of the main array.

use aimdb_common::{AimError, Result};

/// A linear model `pos ≈ slope * key + intercept`.
#[derive(Debug, Clone, Copy, Default)]
struct Linear {
    slope: f64,
    intercept: f64,
}

impl Linear {
    /// Least-squares fit of positions (0..n) against keys.
    fn fit(keys: &[i64], first_pos: usize) -> Linear {
        let n = keys.len() as f64;
        if keys.is_empty() {
            return Linear::default();
        }
        if keys.len() == 1 {
            return Linear {
                slope: 0.0,
                intercept: first_pos as f64,
            };
        }
        let mean_x = keys.iter().map(|&k| k as f64).sum::<f64>() / n;
        let mean_y = first_pos as f64 + (n - 1.0) / 2.0;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (i, &k) in keys.iter().enumerate() {
            let dx = k as f64 - mean_x;
            cov += dx * (first_pos as f64 + i as f64 - mean_y);
            var += dx * dx;
        }
        let slope = if var > 0.0 { cov / var } else { 0.0 };
        Linear {
            slope,
            intercept: mean_y - slope * mean_x,
        }
    }

    #[inline]
    fn predict(&self, key: i64) -> f64 {
        self.slope * key as f64 + self.intercept
    }
}

/// Two-stage recursive model index over a sorted `i64` key array mapping
/// each key to its position (the "page" in Kraska et al.'s formulation).
///
/// ```
/// use aimdb_ai4db::learned_index::Rmi;
///
/// let keys: Vec<i64> = (0..10_000).map(|i| i * 3).collect();
/// let rmi = Rmi::build(keys, 64).unwrap();
/// assert_eq!(rmi.get(300), Some(100));
/// assert_eq!(rmi.get(301), None);
/// assert_eq!(rmi.range(0, 29).len(), 10);
/// ```
pub struct Rmi {
    keys: Vec<i64>,
    root: Linear,
    leaves: Vec<Linear>,
    /// Per-leaf worst-case absolute prediction error.
    errors: Vec<usize>,
}

impl Rmi {
    /// Build from sorted, deduplicated keys with `n_leaves` second-stage
    /// models.
    pub fn build(keys: Vec<i64>, n_leaves: usize) -> Result<Self> {
        if keys.is_empty() {
            return Err(AimError::InvalidInput("RMI needs at least one key".into()));
        }
        if keys.windows(2).any(|w| w[0] >= w[1]) {
            return Err(AimError::InvalidInput(
                "RMI keys must be strictly ascending".into(),
            ));
        }
        let n_leaves = n_leaves.clamp(1, keys.len());
        // root model maps key → leaf index (scaled position)
        let root_fit = Linear::fit(&keys, 0);
        let scale = n_leaves as f64 / keys.len() as f64;
        let root = Linear {
            slope: root_fit.slope * scale,
            intercept: root_fit.intercept * scale,
        };
        // partition keys by root prediction, fit one linear model per leaf
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n_leaves];
        for (i, &k) in keys.iter().enumerate() {
            let leaf = (root.predict(k).floor().max(0.0) as usize).min(n_leaves - 1);
            buckets[leaf].push(i);
        }
        let mut leaves = vec![Linear::default(); n_leaves];
        let mut errors = vec![0usize; n_leaves];
        for (l, idxs) in buckets.iter().enumerate() {
            if idxs.is_empty() {
                // empty leaf: inherit the root mapping so lookups of alien
                // keys still land somewhere sane
                leaves[l] = Linear {
                    slope: root_fit.slope,
                    intercept: root_fit.intercept,
                };
                continue;
            }
            let leaf_keys: Vec<i64> = idxs.iter().map(|&i| keys[i]).collect();
            let model = Linear::fit(&leaf_keys, idxs[0]);
            let mut max_err = 0usize;
            for (j, &i) in idxs.iter().enumerate() {
                let pred = model.predict(leaf_keys[j]);
                let err = (pred - i as f64).abs().ceil() as usize;
                max_err = max_err.max(err);
            }
            leaves[l] = model;
            errors[l] = max_err;
        }
        Ok(Rmi {
            keys,
            root,
            leaves,
            errors,
        })
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Lookup: position of `key` if present, plus the number of probes
    /// spent in the bounded local search (the comparison metric vs. the
    /// B+tree's nodes-visited).
    pub fn get_with_cost(&self, key: i64) -> (Option<usize>, usize) {
        let leaf = (self.root.predict(key).floor().max(0.0) as usize).min(self.leaves.len() - 1);
        let pred = self.leaves[leaf].predict(key);
        let err = self.errors[leaf];
        let center = pred.round().max(0.0) as usize;
        let lo = center.saturating_sub(err).min(self.keys.len());
        let hi = (center + err + 1).min(self.keys.len());
        // binary search within the error window
        let window = &self.keys[lo..hi];
        let probes = (window.len().max(1) as f64).log2().ceil() as usize + 1;
        match window.binary_search(&key) {
            Ok(i) => (Some(lo + i), probes),
            Err(_) => {
                // guard against window misses for keys outside any leaf's
                // training range: fall back to full binary search
                match self.keys.binary_search(&key) {
                    Ok(i) => (
                        Some(i),
                        probes + (self.keys.len().max(2) as f64).log2().ceil() as usize,
                    ),
                    Err(_) => (None, probes),
                }
            }
        }
    }

    pub fn get(&self, key: i64) -> Option<usize> {
        self.get_with_cost(key).0
    }

    /// All positions with keys in `[lo, hi]`.
    pub fn range(&self, lo: i64, hi: i64) -> std::ops::Range<usize> {
        let start = self.keys.partition_point(|&k| k < lo);
        let end = self.keys.partition_point(|&k| k <= hi);
        start..end
    }

    /// Model size in bytes: root + leaves + error bounds (excludes the
    /// data array itself, as in the learned-index papers).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Linear>() * (1 + self.leaves.len())
            + std::mem::size_of::<usize>() * self.errors.len()
    }

    /// Mean and max error bound across leaves (search-window radii).
    pub fn error_stats(&self) -> (f64, usize) {
        let max = self.errors.iter().copied().max().unwrap_or(0);
        let mean = self.errors.iter().sum::<usize>() as f64 / self.errors.len().max(1) as f64;
        (mean, max)
    }

    pub fn keys(&self) -> &[i64] {
        &self.keys
    }
}

/// ALEX-style updatable learned index: RMI over the main array plus a
/// sorted delta buffer; merge + rebuild when the delta exceeds
/// `rebuild_fraction` of the main size.
pub struct UpdatableIndex {
    rmi: Rmi,
    delta: Vec<i64>,
    n_leaves: usize,
    rebuild_fraction: f64,
    pub rebuilds: usize,
}

impl UpdatableIndex {
    pub fn build(keys: Vec<i64>, n_leaves: usize, rebuild_fraction: f64) -> Result<Self> {
        Ok(UpdatableIndex {
            rmi: Rmi::build(keys, n_leaves)?,
            delta: Vec::new(),
            n_leaves,
            rebuild_fraction: rebuild_fraction.clamp(0.01, 1.0),
            rebuilds: 0,
        })
    }

    pub fn len(&self) -> usize {
        self.rmi.len() + self.delta.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a key (duplicates ignored).
    pub fn insert(&mut self, key: i64) -> Result<()> {
        if self.contains(key) {
            return Ok(());
        }
        match self.delta.binary_search(&key) {
            Ok(_) => return Ok(()),
            Err(pos) => self.delta.insert(pos, key),
        }
        if self.delta.len() as f64 > self.rmi.len() as f64 * self.rebuild_fraction {
            self.merge()?;
        }
        Ok(())
    }

    fn merge(&mut self) -> Result<()> {
        let mut keys = Vec::with_capacity(self.len());
        let (mut i, mut j) = (0, 0);
        let main = self.rmi.keys();
        while i < main.len() || j < self.delta.len() {
            let take_main = j >= self.delta.len() || (i < main.len() && main[i] <= self.delta[j]);
            if take_main {
                keys.push(main[i]);
                i += 1;
            } else {
                keys.push(self.delta[j]);
                j += 1;
            }
        }
        keys.dedup();
        self.rmi = Rmi::build(keys, self.n_leaves)?;
        self.delta.clear();
        self.rebuilds += 1;
        Ok(())
    }

    pub fn contains(&self, key: i64) -> bool {
        self.delta.binary_search(&key).is_ok() || self.rmi.get(key).is_some()
    }

    /// All keys in `[lo, hi]`, merged across main and delta.
    pub fn range(&self, lo: i64, hi: i64) -> Vec<i64> {
        let main = &self.rmi.keys()[self.rmi.range(lo, hi)];
        let dlo = self.delta.partition_point(|&k| k < lo);
        let dhi = self.delta.partition_point(|&k| k <= hi);
        let delta = &self.delta[dlo..dhi];
        let mut out = Vec::with_capacity(main.len() + delta.len());
        let (mut i, mut j) = (0, 0);
        while i < main.len() || j < delta.len() {
            let take_main = j >= delta.len() || (i < main.len() && main[i] <= delta[j]);
            if take_main {
                out.push(main[i]);
                i += 1;
            } else {
                out.push(delta[j]);
                j += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimdb_common::synth::{lognormal_keys, step_keys, uniform_keys};
    use aimdb_storage::BTree;

    fn check_all_lookups(keys: &[i64], rmi: &Rmi) {
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(rmi.get(k), Some(i), "key {k} at {i}");
        }
    }

    #[test]
    fn rmi_finds_every_key_on_all_distributions() {
        for keys in [
            uniform_keys(50_000, 1),
            lognormal_keys(50_000, 12.0, 1.5, 1),
            step_keys(50_000, 16, 1),
        ] {
            let rmi = Rmi::build(keys.clone(), 256).unwrap();
            check_all_lookups(&keys, &rmi);
            assert_eq!(rmi.get(i64::MIN), None);
            assert_eq!(rmi.get(i64::MAX), None);
        }
    }

    #[test]
    fn rmi_rejects_bad_input() {
        assert!(Rmi::build(vec![], 4).is_err());
        assert!(Rmi::build(vec![3, 1, 2], 4).is_err());
        assert!(Rmi::build(vec![1, 1], 4).is_err());
        // single key is fine
        let r = Rmi::build(vec![42], 4).unwrap();
        assert_eq!(r.get(42), Some(0));
    }

    #[test]
    fn rmi_much_smaller_than_btree() {
        let keys = uniform_keys(100_000, 2);
        let rmi = Rmi::build(keys.clone(), 512).unwrap();
        let btree = BTree::bulk_load(keys.iter().map(|&k| (k, ())).collect(), 64).unwrap();
        assert!(
            rmi.size_bytes() * 10 < btree.size_bytes(),
            "rmi {} vs btree {}",
            rmi.size_bytes(),
            btree.size_bytes()
        );
    }

    #[test]
    fn uniform_keys_have_small_error_windows() {
        let keys = uniform_keys(100_000, 3);
        let rmi = Rmi::build(keys, 512).unwrap();
        let (mean, _max) = rmi.error_stats();
        assert!(mean < 32.0, "mean error window {mean}");
    }

    #[test]
    fn heavy_tail_is_harder_than_uniform() {
        let uniform = Rmi::build(uniform_keys(50_000, 4), 256).unwrap();
        let lognorm = Rmi::build(lognormal_keys(50_000, 12.0, 1.8, 4), 256).unwrap();
        let (mu, _) = uniform.error_stats();
        let (ml, _) = lognorm.error_stats();
        assert!(
            ml > mu,
            "lognormal windows ({ml}) should exceed uniform ({mu})"
        );
    }

    #[test]
    fn rmi_range_matches_filter() {
        let keys = uniform_keys(10_000, 5);
        let rmi = Rmi::build(keys.clone(), 64).unwrap();
        let lo = keys[100];
        let hi = keys[250];
        let r = rmi.range(lo, hi);
        assert_eq!(r, 100..251);
        assert_eq!(rmi.range(hi, lo).len(), 0);
    }

    #[test]
    fn updatable_index_inserts_and_rebuilds() {
        let keys: Vec<i64> = (0..10_000).map(|i| i * 10).collect();
        let mut idx = UpdatableIndex::build(keys, 64, 0.05).unwrap();
        let before = idx.len();
        for i in 0..2_000 {
            idx.insert(i * 10 + 5).unwrap();
        }
        assert_eq!(idx.len(), before + 2_000);
        assert!(idx.rebuilds >= 1, "should have rebuilt at least once");
        for i in 0..2_000 {
            assert!(idx.contains(i * 10 + 5));
        }
        assert!(idx.contains(0));
        assert!(!idx.contains(3));
        // duplicate insert is a no-op
        idx.insert(5).unwrap();
        assert_eq!(idx.len(), before + 2_000);
    }

    #[test]
    fn updatable_range_is_sorted_and_complete() {
        let keys: Vec<i64> = (0..1_000).map(|i| i * 4).collect();
        let mut idx = UpdatableIndex::build(keys, 16, 0.5).unwrap();
        for i in 0..500 {
            idx.insert(i * 8 + 2).unwrap();
        }
        let r = idx.range(100, 200);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
        assert!(r.contains(&100));
        assert!(r.contains(&106)); // delta key (106 = 13*8+2)
        for &k in &r {
            assert!((100..=200).contains(&k));
        }
    }

    #[test]
    fn lookup_cost_competitive_with_btree_on_uniform() {
        let keys = uniform_keys(100_000, 6);
        let rmi = Rmi::build(keys.clone(), 1024).unwrap();
        let btree = BTree::bulk_load(keys.iter().map(|&k| (k, ())).collect(), 64).unwrap();
        let mut rmi_cost = 0usize;
        let mut bt_cost = 0usize;
        for &k in keys.iter().step_by(97) {
            rmi_cost += rmi.get_with_cost(k).1;
            bt_cost += btree.get_with_cost(&k).1;
        }
        // both are small; the RMI should not be wildly worse and is
        // typically better (windows of ≤32 keys vs 3-4 node visits of 64)
        assert!(
            rmi_cost as f64 <= bt_cost as f64 * 2.5,
            "rmi {rmi_cost} vs btree {bt_cost}"
        );
    }
}
