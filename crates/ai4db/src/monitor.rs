//! Learning-based database monitoring (E11, E12a).
//!
//! **Health monitor / root-cause diagnosis** (Ma et al.'s iSQUAD, VLDB'20):
//! "intermittent slow queries with similar key performance indicators have
//! the same root causes. They first extract slow SQLs from the failure
//! records, cluster them with KPI states, and ask DBAs to assign root
//! causes for each cluster. Next, for an incoming slow SQL, they match it
//! to a cluster based on similarity of KPI states."
//! We implement that pipeline over the engine's [`KpiSnapshot`] feature
//! space, with a threshold-rule baseline, plus the unmatched-anomaly path
//! (new cluster → ask the DBA) and P-Store-style *proactive* detection via
//! forecasting on the arrival trace.
//!
//! **Activity monitor** (Grushka-Cohen et al.): picking which database
//! activities to record under a budget is a multi-armed bandit; reward is
//! the risk score captured.

use std::collections::HashMap;

use rand::prelude::*;
use rand::rngs::StdRng;

use aimdb_common::synth::gaussian;
use aimdb_common::{AimError, Result};
use aimdb_engine::trace::{QueryTrace, Span};
use aimdb_engine::KpiSnapshot;
use aimdb_ml::bandit::{Bandit, BanditPolicy};
use aimdb_ml::cluster::KMeans;
use aimdb_ml::forecast::{Forecaster, SeasonalNaive};

/// Root causes injected into the simulated incident history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RootCause {
    CpuSpike,
    MemoryPressure,
    LockContention,
    SlowDisk,
}

impl RootCause {
    pub const ALL: [RootCause; 4] = [
        RootCause::CpuSpike,
        RootCause::MemoryPressure,
        RootCause::LockContention,
        RootCause::SlowDisk,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            RootCause::CpuSpike => "cpu-spike",
            RootCause::MemoryPressure => "memory-pressure",
            RootCause::LockContention => "lock-contention",
            RootCause::SlowDisk => "slow-disk",
        }
    }

    /// KPI signature of the incident class:
    /// [cpu, buffer_hit_rate, disk_reads, lock_waits, latency_p95].
    fn signature(&self) -> [f64; 5] {
        match self {
            RootCause::CpuSpike => [0.95, 0.9, 0.2, 0.1, 0.7],
            RootCause::MemoryPressure => [0.5, 0.25, 0.85, 0.15, 0.75],
            RootCause::LockContention => [0.3, 0.9, 0.15, 0.9, 0.85],
            RootCause::SlowDisk => [0.35, 0.85, 0.95, 0.2, 0.9],
        }
    }
}

/// One recorded slow-query incident: KPI vector (+ hidden true cause).
#[derive(Debug, Clone)]
pub struct Incident {
    pub kpis: Vec<f64>,
    pub true_cause: RootCause,
}

/// Generate an incident history with per-class KPI noise.
pub fn generate_incidents(n: usize, noise: f64, seed: u64) -> Vec<Incident> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let cause = RootCause::ALL[i % RootCause::ALL.len()];
            let kpis = cause
                .signature()
                .iter()
                .map(|&s| (s + noise * gaussian(&mut rng)).clamp(0.0, 1.0))
                .collect();
            Incident {
                kpis,
                true_cause: cause,
            }
        })
        .collect()
}

/// Baseline: hand-written threshold rules, checked in fixed order — the
/// kind of runbook a DBA writes. Deliberately brittle under noise because
/// the first matching rule wins.
pub fn rule_based_diagnosis(kpis: &[f64]) -> RootCause {
    if kpis[0] > 0.8 {
        RootCause::CpuSpike
    } else if kpis[1] < 0.4 {
        RootCause::MemoryPressure
    } else if kpis[3] > 0.6 {
        RootCause::LockContention
    } else {
        RootCause::SlowDisk
    }
}

/// Bridge a live engine [`KpiSnapshot`] into the diagnoser's 5-dim
/// incident space `[cpu, buffer_hit_rate, disk_reads, lock_waits,
/// latency_p95]`, each squashed into [0, 1] so live vectors are
/// comparable with the synthetic incident history. The latency signal
/// uses the histogram-backed p95 cost quantile the snapshot now carries.
///
/// The `lock_waits` dimension combines two live signals: the abort rate
/// (conflicts that already killed transactions) and the lock-acquire
/// share of attributed wait time (contention that is still only slowing
/// statements down). Either alone under-reports — aborts lag the onset
/// of a contention storm, while wait share misses first-updater-wins
/// kills that never blocked.
pub fn live_kpi_vector(k: &KpiSnapshot) -> Vec<f64> {
    let squash = |x: f64| x / (1.0 + x);
    let txns = (k.txns_committed + k.txns_aborted) as f64;
    let abort_rate = if txns > 0.0 {
        k.txns_aborted as f64 / txns
    } else {
        0.0
    };
    let wait_total = (k.wait_lock_ns + k.wait_wal_ns + k.wait_io_ns) as f64;
    let lock_share = if wait_total > 0.0 {
        k.wait_lock_ns as f64 / wait_total
    } else {
        0.0
    };
    vec![
        squash(k.avg_cost_per_query / 100.0),
        k.buffer_hit_rate.clamp(0.0, 1.0),
        squash(k.disk_reads as f64 / 1000.0),
        abort_rate.max(lock_share),
        squash(k.p95_cost_per_query / 1000.0),
    ]
}

/// Aggregate view over a window of completed query traces — the stream
/// the engine's tracer publishes. Phase fractions tell a monitor *where*
/// latency is going (optimizer-bound vs executor-bound workloads look
/// completely different here at identical mean latency).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceProfile {
    pub queries: usize,
    /// Fraction of total traced wall time spent in each lifecycle phase.
    pub parse_frac: f64,
    pub optimize_frac: f64,
    pub execute_frac: f64,
    pub mean_rows: f64,
    pub mean_cost: f64,
    /// Buffer miss rate across traced executions (misses / accesses).
    pub buffer_miss_rate: f64,
    /// Mean utilization of morsel workers across traced parallel
    /// executions: Σ worker-span time / (workers × execute window),
    /// summed over traces that ran parallel pipelines. 0 when the
    /// window held no parallel queries; near 1 when workers stayed
    /// busy wall-to-wall; low values flag skew — morsels starving all
    /// but one worker looks exactly like a low ratio here.
    pub worker_busy_ratio: f64,
}

impl TraceProfile {
    /// Fixed feature vector for monitors that consume the trace stream.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.queries as f64,
            self.parse_frac,
            self.optimize_frac,
            self.execute_frac,
            self.mean_rows,
            self.mean_cost,
            self.buffer_miss_rate,
            self.worker_busy_ratio,
        ]
    }
}

/// Summarize a window of query traces (accepts `&[Arc<QueryTrace>]`
/// straight from `Database::recent_traces`).
pub fn summarize_traces<T: AsRef<QueryTrace>>(traces: &[T]) -> TraceProfile {
    if traces.is_empty() {
        return TraceProfile::default();
    }
    let mut total_ns = 0u64;
    let mut phase_ns = [0u64; 3];
    let mut rows = 0u64;
    let mut cost = 0.0;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut worker_busy_ns = 0u64;
    let mut worker_window_ns = 0u64;
    for t in traces {
        let t = t.as_ref();
        total_ns += t.duration_ns();
        for (i, phase) in ["parse", "optimize", "execute"].iter().enumerate() {
            if let Some(s) = t.span(phase) {
                phase_ns[i] += s.duration_ns();
            }
        }
        rows += t.total_rows();
        cost += t.total_cost();
        for s in &t.spans {
            hits += s.buffer_hits;
            misses += s.buffer_misses;
        }
        // Parallel pipelines leave one "worker-N" child span per morsel
        // worker; utilization is their combined time over the execute
        // window they ran inside (workers × window = perfect scaling).
        let workers = t
            .spans
            .iter()
            .filter(|s| s.name.starts_with("worker-"))
            .count() as u64;
        if workers > 0 {
            worker_busy_ns += t
                .spans
                .iter()
                .filter(|s| s.name.starts_with("worker-"))
                .map(Span::duration_ns)
                .sum::<u64>();
            let window = t.span("execute").map_or(t.duration_ns(), Span::duration_ns);
            worker_window_ns += workers * window;
        }
    }
    let n = traces.len() as f64;
    let frac = |ns: u64| {
        if total_ns > 0 {
            ns as f64 / total_ns as f64
        } else {
            0.0
        }
    };
    let accesses = hits + misses;
    TraceProfile {
        queries: traces.len(),
        parse_frac: frac(phase_ns[0]),
        optimize_frac: frac(phase_ns[1]),
        execute_frac: frac(phase_ns[2]),
        mean_rows: rows as f64 / n,
        mean_cost: cost / n,
        buffer_miss_rate: if accesses > 0 {
            misses as f64 / accesses as f64
        } else {
            0.0
        },
        worker_busy_ratio: if worker_window_ns > 0 {
            (worker_busy_ns as f64 / worker_window_ns as f64).min(1.0)
        } else {
            0.0
        },
    }
}

/// The iSQUAD-style diagnoser: cluster historical incidents, label each
/// cluster by its majority cause (the "ask the DBA once per cluster"
/// step), then classify new incidents by nearest cluster — unless they're
/// farther than `novelty_threshold`, which triggers the new-cluster path.
pub struct KpiDiagnoser {
    kmeans: KMeans,
    cluster_cause: Vec<RootCause>,
    pub novelty_threshold: f64,
}

/// Diagnosis outcome for one incoming incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diagnosis {
    Known(RootCause),
    /// No cluster is close enough — escalate to the DBA, seed a cluster.
    Novel,
}

impl KpiDiagnoser {
    pub fn train(history: &[Incident], k: usize, seed: u64) -> Result<Self> {
        if history.is_empty() {
            return Err(AimError::InvalidInput("no incident history".into()));
        }
        let points: Vec<Vec<f64>> = history.iter().map(|i| i.kpis.clone()).collect();
        let kmeans = KMeans::fit(&points, k, 100, seed)?;
        // majority cause per cluster
        let mut votes: Vec<HashMap<RootCause, usize>> = vec![HashMap::new(); k];
        for (inc, &c) in history.iter().zip(&kmeans.assignments) {
            *votes[c].entry(inc.true_cause).or_default() += 1;
        }
        let cluster_cause = votes
            .into_iter()
            .map(|v| {
                v.into_iter()
                    .max_by_key(|&(_, n)| n)
                    .map(|(c, _)| c)
                    .unwrap_or(RootCause::CpuSpike)
            })
            .collect();
        // novelty threshold: generous multiple of the typical in-cluster
        // distance
        let mean_dist: f64 = points
            .iter()
            .map(|p| kmeans.distance_to_nearest(p))
            .sum::<f64>()
            / points.len() as f64;
        Ok(KpiDiagnoser {
            kmeans,
            cluster_cause,
            novelty_threshold: mean_dist * 4.0,
        })
    }

    pub fn diagnose(&self, kpis: &[f64]) -> Diagnosis {
        if self.kmeans.distance_to_nearest(kpis) > self.novelty_threshold {
            return Diagnosis::Novel;
        }
        Diagnosis::Known(self.cluster_cause[self.kmeans.assign(kpis)])
    }

    /// Diagnostic accuracy over labeled incidents (Novel counts as wrong).
    pub fn accuracy(&self, incidents: &[Incident]) -> f64 {
        let correct = incidents
            .iter()
            .filter(|i| self.diagnose(&i.kpis) == Diagnosis::Known(i.true_cause))
            .count();
        correct as f64 / incidents.len().max(1) as f64
    }
}

/// Accuracy of the rule baseline on labeled incidents.
pub fn rule_accuracy(incidents: &[Incident]) -> f64 {
    let correct = incidents
        .iter()
        .filter(|i| rule_based_diagnosis(&i.kpis) == i.true_cause)
        .count();
    correct as f64 / incidents.len().max(1) as f64
}

/// Proactive monitoring (Taft et al.'s P-Store idea): forecast the
/// arrival trace one step ahead; alert when the *forecast* crosses the
/// capacity, before the load actually arrives. Returns
/// (steps of advance warning summed, false alarms).
pub fn proactive_alerts(trace: &[f64], capacity: f64, period: usize) -> (usize, usize) {
    let mut f = SeasonalNaive::new(period);
    let mut early = 0usize;
    let mut false_alarms = 0usize;
    for (t, &y) in trace.iter().enumerate() {
        if t > period {
            let predicted = f.forecast();
            if predicted > capacity {
                // alert fired before observing y
                if y > capacity {
                    early += 1;
                } else {
                    false_alarms += 1;
                }
            }
        }
        f.observe(y);
    }
    (early, false_alarms)
}

// ---------------------------------------------------------------------
// Activity monitoring as a multi-armed bandit (E12a)
// ---------------------------------------------------------------------

/// An activity class with a hidden mean risk score in [0,1].
#[derive(Debug, Clone)]
pub struct ActivityClass {
    pub name: String,
    pub mean_risk: f64,
}

/// The monitoring episode: at each step every class emits one activity;
/// the monitor can record `budget` of them; reward is the realized risk
/// of recorded activities (risk captured).
pub struct ActivityStream {
    pub classes: Vec<ActivityClass>,
    rng: StdRng,
}

impl ActivityStream {
    pub fn new(classes: Vec<ActivityClass>, seed: u64) -> Self {
        ActivityStream {
            classes,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Typical enterprise mix: a few risky classes among mostly benign.
    pub fn typical(seed: u64) -> Self {
        let classes = vec![
            ("select-read", 0.02),
            ("batch-etl", 0.05),
            ("schema-change", 0.55),
            ("priv-escalation", 0.8),
            ("account-create", 0.45),
            ("backup", 0.03),
            ("adhoc-export", 0.6),
            ("login", 0.08),
        ]
        .into_iter()
        .map(|(n, r)| ActivityClass {
            name: n.into(),
            mean_risk: r,
        })
        .collect();
        ActivityStream::new(classes, seed)
    }

    fn realized_risk(&mut self, class: usize) -> f64 {
        let m = self.classes[class].mean_risk;
        (m + 0.15 * gaussian(&mut self.rng)).clamp(0.0, 1.0)
    }

    /// Run a recording policy for `steps`; the policy picks `budget`
    /// class indices per step and learns from their realized risks.
    /// Returns total risk captured.
    pub fn run(
        &mut self,
        steps: usize,
        budget: usize,
        mut policy: impl FnMut(&mut Self, usize) -> Vec<usize>,
    ) -> f64 {
        let mut captured = 0.0;
        for step in 0..steps {
            let picks = policy(self, step);
            for &c in picks.iter().take(budget) {
                captured += self.realized_risk(c);
            }
        }
        captured
    }
}

/// Baseline: record uniformly at random under the budget.
pub fn monitor_random(stream: &mut ActivityStream, steps: usize, budget: usize, seed: u64) -> f64 {
    let n = stream.classes.len();
    let mut rng = StdRng::seed_from_u64(seed);
    stream.run(steps, budget, move |_, _| {
        aimdb_common::synth::sample_indices(n, budget, &mut rng)
    })
}

/// Learned: Thompson-sampling bandit over activity classes (the MAB
/// formulation of Grushka-Cohen et al.); pulls the `budget` arms with the
/// highest sampled posteriors and updates on realized risk.
pub fn monitor_bandit(stream: &mut ActivityStream, steps: usize, budget: usize, seed: u64) -> f64 {
    let n = stream.classes.len();
    let mut bandit = Bandit::new(n, BanditPolicy::Thompson, seed);
    let mut captured = 0.0;
    for _ in 0..steps {
        // select `budget` distinct arms by repeated sampling; bounded
        // attempts (concentrated posteriors make a repeated argmax likely),
        // then fill with the best remaining arms by posterior mean
        let mut picks = Vec::with_capacity(budget);
        let mut attempts = 0;
        while picks.len() < budget.min(n) && attempts < 16 * n {
            attempts += 1;
            let a = bandit.select();
            if !picks.contains(&a) {
                picks.push(a);
            }
        }
        if picks.len() < budget.min(n) {
            let mut rest: Vec<usize> = (0..n).filter(|i| !picks.contains(i)).collect();
            rest.sort_by(|&a, &b| bandit.mean(b).total_cmp(&bandit.mean(a)));
            picks.extend(rest.into_iter().take(budget.min(n) - picks.len()));
        }
        for &c in &picks {
            let r = stream.realized_risk(c);
            captured += r;
            bandit.update(c, r);
        }
    }
    captured
}

/// Oracle: always record the top-`budget` classes by true mean risk.
pub fn monitor_oracle(stream: &mut ActivityStream, steps: usize, budget: usize) -> f64 {
    let mut order: Vec<usize> = (0..stream.classes.len()).collect();
    order.sort_by(|&a, &b| {
        stream.classes[b]
            .mean_risk
            .total_cmp(&stream.classes[a].mean_risk)
    });
    let top: Vec<usize> = order.into_iter().take(budget).collect();
    stream.run(steps, budget, move |_, _| top.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimdb_common::synth::seasonal_trace;

    #[test]
    fn live_kpi_vector_is_bounded_and_ordered() {
        let mut k = KpiSnapshot::default();
        let v = live_kpi_vector(&k);
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)), "{v:?}");
        // a hotter snapshot moves every dimension monotonically
        k.avg_cost_per_query = 500.0;
        k.buffer_hit_rate = 0.4;
        k.disk_reads = 5000;
        k.txns_committed = 10;
        k.txns_aborted = 30;
        k.p95_cost_per_query = 8000.0;
        let hot = live_kpi_vector(&k);
        assert!(hot.iter().all(|&x| (0.0..=1.0).contains(&x)), "{hot:?}");
        assert!(hot[0] > v[0] && hot[2] > v[2] && hot[3] > v[3] && hot[4] > v[4]);
        // measured lock-acquire waits raise the contention dimension even
        // before any transaction has aborted
        let mut w = KpiSnapshot::default();
        w.wait_lock_ns = 900;
        w.wait_wal_ns = 80;
        w.wait_io_ns = 20;
        let wv = live_kpi_vector(&w);
        assert!((0.89..=0.91).contains(&wv[3]), "{wv:?}");
        // live vectors are diagnosable by the trained pipeline
        let history = generate_incidents(200, 0.1, 9);
        let diag = KpiDiagnoser::train(&history, 4, 7).unwrap();
        let _ = diag.diagnose(&hot);
    }

    #[test]
    fn summarize_traces_profiles_the_stream() {
        use aimdb_engine::Database;
        assert_eq!(
            summarize_traces::<std::sync::Arc<QueryTrace>>(&[]).queries,
            0
        );
        let db = Database::new();
        db.execute("CREATE TABLE t (a INT)").unwrap();
        let tuples: Vec<String> = (0..200).map(|i| format!("({i})")).collect();
        db.execute(&format!("INSERT INTO t VALUES {}", tuples.join(",")))
            .unwrap();
        for _ in 0..4 {
            db.execute("SELECT COUNT(*) FROM t WHERE a < 100").unwrap();
        }
        let traces = db.recent_traces();
        assert!(!traces.is_empty());
        let p = summarize_traces(&traces);
        assert_eq!(p.queries, traces.len());
        let fracs = p.parse_frac + p.optimize_frac + p.execute_frac;
        assert!(
            (0.0..=1.0 + 1e-9).contains(&fracs),
            "phase fractions {fracs}"
        );
        assert!(p.mean_cost > 0.0);
        // serial window: no worker spans, so no utilization signal
        assert_eq!(p.worker_busy_ratio, 0.0);
        assert_eq!(p.features().len(), 8);

        // parallel window: morsel workers leave "worker-N" child spans,
        // and the profile turns them into a bounded utilization signal
        db.execute("SET exec_parallelism = 2").unwrap();
        for _ in 0..4 {
            db.execute("SELECT COUNT(*) FROM t WHERE a < 100").unwrap();
        }
        let p = summarize_traces(&db.recent_traces());
        assert!(
            p.worker_busy_ratio > 0.0 && p.worker_busy_ratio <= 1.0,
            "worker_busy_ratio {}",
            p.worker_busy_ratio
        );
    }

    #[test]
    fn diagnoser_beats_rules_under_noise() {
        let history = generate_incidents(400, 0.15, 1);
        let test = generate_incidents(200, 0.15, 2);
        let diag = KpiDiagnoser::train(&history, 4, 7).unwrap();
        let learned = diag.accuracy(&test);
        let rules = rule_accuracy(&test);
        assert!(
            learned > rules,
            "clustered diagnosis {learned} vs rules {rules}"
        );
        assert!(learned > 0.85, "learned accuracy {learned}");
    }

    #[test]
    fn rules_fine_when_clean() {
        // sanity: with no noise the runbook rules are competitive
        let clean = generate_incidents(100, 0.0, 3);
        assert!(rule_accuracy(&clean) > 0.95);
    }

    #[test]
    fn novel_incident_escalates() {
        let history = generate_incidents(200, 0.1, 4);
        let diag = KpiDiagnoser::train(&history, 4, 7).unwrap();
        // an alien KPI vector far outside the incident manifold
        let alien = vec![10.0, -5.0, 10.0, 10.0, -3.0];
        assert_eq!(diag.diagnose(&alien), Diagnosis::Novel);
        // a normal one is classified
        let normal = &history[0];
        assert!(matches!(diag.diagnose(&normal.kpis), Diagnosis::Known(_)));
    }

    #[test]
    fn proactive_forecasting_warns_before_overload() {
        // daily pattern approaching capacity at peak hours
        let trace = seasonal_trace(24 * 10, 24, 80.0, 30.0, 0.02, 1.0, None, 5);
        let (early, false_alarms) = proactive_alerts(&trace, 100.0, 24);
        assert!(early > 5, "early warnings {early}");
        assert!(
            false_alarms < early,
            "false alarms {false_alarms} vs early {early}"
        );
    }

    #[test]
    fn bandit_captures_more_risk_than_random() {
        let steps = 400;
        let budget = 2;
        let random = monitor_random(&mut ActivityStream::typical(1), steps, budget, 9);
        let bandit = monitor_bandit(&mut ActivityStream::typical(1), steps, budget, 9);
        let oracle = monitor_oracle(&mut ActivityStream::typical(1), steps, budget);
        assert!(bandit > random * 1.5, "bandit {bandit} vs random {random}");
        assert!(
            bandit <= oracle * 1.02,
            "bandit {bandit} vs oracle {oracle}"
        );
        assert!(bandit > oracle * 0.85, "bandit should approach oracle");
    }

    #[test]
    fn empty_history_rejected() {
        assert!(KpiDiagnoser::train(&[], 3, 1).is_err());
    }
}
